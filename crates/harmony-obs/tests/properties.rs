//! Property tests for the observability layer.
//!
//! * **Merge is concatenation:** a histogram assembled by merging arbitrary
//!   partitions of a sample stream is bucket-identical to one built from the
//!   whole stream, so every percentile agrees exactly — the guarantee the
//!   sharded runtime leans on when it folds per-shard series.
//! * **Registry merges fold like sketches:** counters add, gauges take the
//!   max, across any partition of the reports.
//! * **Concurrent shard reports are never lost:** counters and gauges absorb
//!   reports from many threads without dropping an increment.
//! * **Empty summaries carry no NaN:** an empty histogram summarises and
//!   renders to finite numbers, never NaN.
//!
//! Sampling is deterministic per property (the mini-proptest shim derives
//! its seed from the property name), so a failure reproduces exactly.

use harmony_obs::{LatencyHistogram, MetricsRegistry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn merged_partitions_match_concatenated_percentiles(
        samples in prop::collection::vec(0u64..2_000_000, 1..600),
        cuts in prop::collection::vec(0usize..600, 0..6),
    ) {
        // Build the ground truth from the whole stream...
        let mut concat = LatencyHistogram::new();
        for &us in &samples {
            concat.record_us(us as f64);
        }
        // ...and the same stream split at arbitrary cut points, each part
        // recorded into its own histogram (a "shard") and merged back.
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % samples.len().max(1)).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();
        let mut merged = LatencyHistogram::new();
        for pair in bounds.windows(2) {
            let mut part = LatencyHistogram::new();
            for &us in &samples[pair[0]..pair[1]] {
                part.record_us(us as f64);
            }
            merged.merge(&part);
        }
        // Bucket-identical, so every percentile agrees exactly — not just
        // within tolerance.
        prop_assert_eq!(&merged, &concat);
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile_ms(q), concat.percentile_ms(q));
        }
        prop_assert_eq!(merged.summary(), concat.summary());
    }

    #[test]
    fn registry_merge_adds_counters_and_maxes_gauges(
        counts in prop::collection::vec(0u64..10_000, 1..8),
        gauges in prop::collection::vec(0u64..1_000_000, 1..8),
    ) {
        // One registry per "shard", folded into a coordinator registry the
        // way run_sharded_experiment_with_obs does.
        let coordinator = MetricsRegistry::new();
        for (i, &n) in counts.iter().enumerate() {
            let shard = MetricsRegistry::new();
            shard.counter("ops_total").add(n);
            let g = gauges.get(i).copied().unwrap_or(0) as f64 / 1e3;
            shard.gauge("backlog_ms").set(g);
            coordinator.merge_from(&shard);
        }
        let expected_total: u64 = counts.iter().sum();
        prop_assert_eq!(coordinator.counter("ops_total").get(), expected_total);
        let expected_max = counts
            .iter()
            .enumerate()
            .map(|(i, _)| gauges.get(i).copied().unwrap_or(0))
            .max()
            .unwrap_or(0) as f64
            / 1e3;
        prop_assert_eq!(coordinator.gauge("backlog_ms").get(), expected_max);
    }

    #[test]
    fn concurrent_shard_reports_lose_nothing(
        per_thread in prop::collection::vec(1u64..500, 2..6),
    ) {
        // Shards share one registry's handles and report concurrently; the
        // snapshot must account for every increment and the gauge must land
        // on a value some shard actually set.
        let registry = MetricsRegistry::new();
        let handles: Vec<_> = per_thread
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let counter = registry.counter("harmony_shard_reports_total");
                let gauge = registry.gauge("harmony_shard_phi");
                let hist = registry.histogram("harmony_shard_latency_us");
                std::thread::spawn(move || {
                    for k in 0..n {
                        counter.inc();
                        gauge.set(i as f64);
                        hist.record_us((k % 1000) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shard thread reports cleanly");
        }
        let expected: u64 = per_thread.iter().sum();
        let snap = registry.snapshot();
        let counter = snap
            .counters
            .iter()
            .find(|c| c.name == "harmony_shard_reports_total")
            .expect("counter registered");
        prop_assert_eq!(counter.value, expected);
        let gauge = snap
            .gauges
            .iter()
            .find(|g| g.name == "harmony_shard_phi")
            .expect("gauge registered");
        prop_assert!(
            gauge.value >= 0.0 && gauge.value < per_thread.len() as f64,
            "gauge {} was never set by any shard",
            gauge.value
        );
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "harmony_shard_latency_us")
            .expect("histogram registered");
        prop_assert_eq!(hist.summary.count, expected);
    }

    #[test]
    fn empty_and_tiny_summaries_are_nan_free(
        samples in prop::collection::vec(0u64..100, 0..3),
    ) {
        let mut h = LatencyHistogram::new();
        for &us in &samples {
            h.record_us(us as f64);
        }
        let s = h.summary();
        for (label, v) in [
            ("mean", s.mean_ms),
            ("min", s.min_ms),
            ("max", s.max_ms),
            ("p50", s.p50_ms),
            ("p95", s.p95_ms),
            ("p99", s.p99_ms),
        ] {
            prop_assert!(v.is_finite(), "{} is not finite: {}", label, v);
        }
        // The registry's rendered forms stay NaN-free too, even for series
        // that were registered but never recorded.
        let registry = MetricsRegistry::new();
        registry.histogram("untouched_us");
        registry.gauge("untouched_gauge");
        let text = registry.render_prometheus();
        prop_assert!(!text.contains("NaN"), "{}", text);
        let json = serde_json::to_string(&registry.snapshot()).expect("snapshot serialises");
        prop_assert!(!json.contains("NaN") && !json.contains("null"), "{}", json);
    }
}

//! # harmony-obs
//!
//! The observability layer of the Harmony reproduction — offline and
//! shim-compatible (no real `tracing`/`prometheus` dependency):
//!
//! * [`registry`] — a metrics registry of counters, gauges and log-bucketed
//!   histograms with Prometheus-text and JSON-snapshot exposition. Layers
//!   export into it collect-on-scrape, so the simulation hot path never
//!   touches an atomic.
//! * [`hist`] — the shared [`hist::LatencyHistogram`] (moved here from
//!   `harmony-ycsb::stats`, which re-exports it for back-compat); merging is
//!   exact, so per-shard series fold like sketches.
//! * [`trace`] — sampled per-op causal traces over the typed-event protocol
//!   core, with deterministic modulo sampling (no RNG perturbation).
//! * [`recorder`] — the flight recorder: a bounded buffer of the K slowest
//!   completed ops plus every aborted op, dumpable as JSON.
//! * [`audit`] — the decision audit log linking every control decision to
//!   the estimate inputs that produced it.
//!
//! Everything defaults **off** ([`ObsConfig::default`]): with no knob
//! enabled the instrumented code paths reduce to a `None` check and the
//! golden determinism pins stay byte-identical.

pub mod audit;
pub mod hist;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use audit::DecisionAudit;
pub use hist::{LatencyHistogram, LatencySummary};
pub use recorder::FlightRecorder;
pub use registry::{series_name, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use trace::{OpTrace, OpTracer, SpanKind, TraceEvent, CLIENT_NODE};

use serde::{Deserialize, Serialize};

/// Observability knobs. Everything defaults off; [`ObsConfig::enabled`] is
/// the standard "all on at default sampling rate" preset the overhead gate
/// measures.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Trace every `trace_sample_every`-th op (0 = tracing off).
    pub trace_sample_every: u64,
    /// Flight recorder: retain this many slowest completed traces.
    pub keep_slowest: u64,
    /// Flight recorder: cap on retained aborted traces.
    pub abort_cap: u64,
    /// Record a [`DecisionAudit`] per control decision.
    pub decision_audit: bool,
    /// Export metrics into a registry at the end of the run.
    pub metrics: bool,
}

impl ObsConfig {
    /// Everything off (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Everything on at the default sampling rate: trace every 64th op,
    /// keep the 32 slowest and up to 256 aborted traces, audit every
    /// decision, export metrics.
    pub fn enabled() -> Self {
        ObsConfig {
            trace_sample_every: 64,
            keep_slowest: 32,
            abort_cap: 256,
            decision_audit: true,
            metrics: true,
        }
    }

    /// True when any knob is on.
    pub fn any_enabled(&self) -> bool {
        self.trace_sample_every > 0 || self.decision_audit || self.metrics
    }

    /// True when per-op tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.trace_sample_every > 0
    }
}

/// Everything one observed run hands back: the merged metrics registry, the
/// retained traces, and the decision audit log.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// The run's metrics registry (empty when metrics were off).
    pub registry: MetricsRegistry,
    /// The flight recorder with retained traces.
    pub recorder: FlightRecorder,
    /// The decision audit log (empty when auditing was off).
    pub audit: Vec<DecisionAudit>,
}

impl ObsReport {
    /// The registry in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        self.registry.render_prometheus()
    }

    /// All retained traces as a JSON array string.
    pub fn traces_json(&self) -> String {
        let traces: Vec<&OpTrace> = self.recorder.traces().collect();
        serde_json::to_string_pretty(&traces).unwrap_or_else(|_| "[]".to_string())
    }

    /// The decision audit log as a JSON array string.
    pub fn audit_json(&self) -> String {
        serde_json::to_string_pretty(&self.audit).unwrap_or_else(|_| "[]".to_string())
    }

    /// Retained traces that span at least one fault event.
    pub fn fault_spanning_traces(&self) -> Vec<&OpTrace> {
        self.recorder
            .traces()
            .filter(|t| t.spans_fault_epoch())
            .collect()
    }

    /// Audit records that raised the default read level.
    pub fn escalations(&self) -> Vec<&DecisionAudit> {
        self.audit.iter().filter(|a| a.escalated()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_off() {
        let c = ObsConfig::default();
        assert!(!c.any_enabled());
        assert!(!c.tracing_enabled());
        assert_eq!(c.trace_sample_every, 0);
        assert!(!c.decision_audit);
        assert!(!c.metrics);
    }

    #[test]
    fn enabled_preset_turns_everything_on() {
        let c = ObsConfig::enabled();
        assert!(c.any_enabled());
        assert!(c.tracing_enabled());
        assert_eq!(c.trace_sample_every, 64);
        assert!(c.decision_audit && c.metrics);
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let r = ObsReport::default();
        assert_eq!(r.prometheus_text(), "");
        assert_eq!(r.traces_json(), "[]");
        assert_eq!(r.audit_json(), "[]");
        assert!(r.fault_spanning_traces().is_empty());
        assert!(r.escalations().is_empty());
    }
}

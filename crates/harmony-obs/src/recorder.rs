//! The flight recorder: a bounded buffer of the most interesting finished
//! traces — the K slowest completed ops, every aborted op (up to a separate
//! cap, with a drop counter so truncation is never silent), and completed
//! ops that spanned a fault epoch (a fault fired while they were in flight —
//! exactly the traces a chaos post-mortem wants, and usually too fast to
//! survive the slowest-K ranking).

use crate::trace::OpTrace;
use serde::{Deserialize, Serialize};

/// Bounded retention of finished op traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightRecorder {
    /// Retain this many slowest completed traces.
    keep_slowest: usize,
    /// Cap on retained aborted traces (all aborted ops are offered; beyond
    /// the cap they are counted in `aborted_dropped`). Also caps the
    /// fault-spanning pool.
    abort_cap: usize,
    /// The K slowest completed traces, slowest first.
    pub slowest: Vec<OpTrace>,
    /// Aborted traces in arrival order.
    pub aborted: Vec<OpTrace>,
    /// Completed traces that spanned a fault epoch but were too fast for the
    /// slowest-K pool, in arrival order (capped at `abort_cap`).
    pub fault_spanning: Vec<OpTrace>,
    /// Aborted traces dropped once `abort_cap` was reached.
    pub aborted_dropped: u64,
    /// Completed traces offered but not retained (faster than the K-th).
    pub completed_seen: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(32, 256)
    }
}

impl FlightRecorder {
    /// A recorder keeping the `keep_slowest` slowest completed traces and up
    /// to `abort_cap` aborted traces.
    pub fn new(keep_slowest: usize, abort_cap: usize) -> Self {
        FlightRecorder {
            keep_slowest,
            abort_cap,
            slowest: Vec::new(),
            aborted: Vec::new(),
            fault_spanning: Vec::new(),
            aborted_dropped: 0,
            completed_seen: 0,
        }
    }

    /// Offers a finished trace to the recorder.
    pub fn offer(&mut self, trace: OpTrace) {
        if trace.aborted {
            if self.aborted.len() < self.abort_cap {
                self.aborted.push(trace);
            } else {
                self.aborted_dropped += 1;
            }
            return;
        }
        self.completed_seen += 1;
        if self.keep_slowest == 0 {
            return;
        }
        let lat = trace.latency_us();
        // Keep `slowest` sorted descending by latency; replace the fastest
        // retained trace once full. K is small (tens), linear insert is fine.
        let pos = self
            .slowest
            .iter()
            .position(|t| t.latency_us() < lat)
            .unwrap_or(self.slowest.len());
        if pos < self.keep_slowest {
            self.slowest.insert(pos, trace);
            while self.slowest.len() > self.keep_slowest {
                // A previously retained fault-spanning trace falls back to
                // the spanning pool instead of vanishing.
                let evicted = self.slowest.pop().expect("len > keep_slowest > 0");
                if evicted.spans_fault_epoch() && self.fault_spanning.len() < self.abort_cap {
                    self.fault_spanning.push(evicted);
                }
            }
        } else if trace.spans_fault_epoch() && self.fault_spanning.len() < self.abort_cap {
            // Too fast for the slowest-K pool, but a fault fired while it was
            // in flight — keep it for the chaos post-mortem.
            self.fault_spanning.push(trace);
        }
    }

    /// All retained traces: slowest completed first, then the fault-spanning
    /// pool, then aborted.
    pub fn traces(&self) -> impl Iterator<Item = &OpTrace> {
        self.slowest
            .iter()
            .chain(self.fault_spanning.iter())
            .chain(self.aborted.iter())
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.slowest.len() + self.fault_spanning.len() + self.aborted.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges another recorder (per-shard recorders fold into one): slowest
    /// lists re-rank together, aborted lists concatenate under the cap.
    pub fn merge_from(&mut self, other: &FlightRecorder) {
        for t in &other.slowest {
            self.offer(t.clone()); // offer() counts the retained ones
        }
        for t in &other.fault_spanning {
            self.offer(t.clone());
        }
        self.completed_seen +=
            other.completed_seen - (other.slowest.len() + other.fault_spanning.len()) as u64;
        for t in &other.aborted {
            self.offer(t.clone());
        }
        self.aborted_dropped += other.aborted_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpTracer;

    fn trace(op: u64, latency_us: u64, aborted: bool) -> OpTrace {
        let mut t = OpTracer::new(1);
        t.start(op, "read", op, 0, 0);
        t.finish(op, latency_us, "ONE", aborted, 0).unwrap()
    }

    #[test]
    fn keeps_k_slowest() {
        let mut r = FlightRecorder::new(3, 16);
        for (op, lat) in [(0, 10), (1, 50), (2, 30), (3, 40), (4, 20)] {
            r.offer(trace(op, lat, false));
        }
        let lats: Vec<u64> = r.slowest.iter().map(|t| t.latency_us()).collect();
        assert_eq!(lats, vec![50, 40, 30]);
        assert_eq!(r.completed_seen, 5);
    }

    #[test]
    fn retains_all_aborted_up_to_cap() {
        let mut r = FlightRecorder::new(2, 3);
        for op in 0..5 {
            r.offer(trace(op, 1, true));
        }
        assert_eq!(r.aborted.len(), 3);
        assert_eq!(r.aborted_dropped, 2);
        assert!(r.slowest.is_empty());
    }

    #[test]
    fn fault_spanning_traces_survive_the_slowest_k_ranking() {
        let spanning = |op: u64, lat: u64| {
            let mut t = OpTracer::new(1);
            t.start(op, "read", op, 0, 3); // epoch 3 at submit...
            t.finish(op, lat, "ONE", false, 4).unwrap() // ...4 at completion
        };
        let mut r = FlightRecorder::new(2, 8);
        // Two slow plain traces occupy the slowest-K pool.
        r.offer(trace(0, 900, false));
        r.offer(trace(1, 800, false));
        // A fast spanning trace misses the pool but is kept anyway.
        r.offer(spanning(2, 10));
        assert_eq!(r.fault_spanning.len(), 1);
        // A spanning trace evicted from the slowest pool falls back too.
        r.offer(spanning(3, 850));
        assert_eq!(r.slowest.len(), 2);
        r.offer(trace(4, 950, false));
        let spanning_kept: Vec<u64> = r.fault_spanning.iter().map(|t| t.latency_us()).collect();
        assert_eq!(spanning_kept, vec![10, 850]);
        assert!(r.traces().filter(|t| t.spans_fault_epoch()).count() >= 2);
    }

    #[test]
    fn merge_re_ranks_slowest() {
        let mut a = FlightRecorder::new(2, 8);
        let mut b = FlightRecorder::new(2, 8);
        a.offer(trace(0, 10, false));
        a.offer(trace(1, 40, false));
        b.offer(trace(2, 30, false));
        b.offer(trace(3, 20, false));
        b.offer(trace(4, 5, true));
        a.merge_from(&b);
        let lats: Vec<u64> = a.slowest.iter().map(|t| t.latency_us()).collect();
        assert_eq!(lats, vec![40, 30]);
        assert_eq!(a.aborted.len(), 1);
        assert_eq!(a.completed_seen, 4);
    }
}

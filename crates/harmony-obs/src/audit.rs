//! The decision audit log: one record per control decision capturing the
//! *inputs* that produced it — measured vs predicted wait, the repair term,
//! the fault epoch — so a specific escalation can be explained after the
//! fact without re-running the experiment.
//!
//! This is deliberately a separate opt-in log rather than extra fields on
//! the controller's `DecisionRecord`: decision timelines are pinned
//! byte-for-byte by the determinism suite, and the audit trail must never
//! perturb them.

use serde::{Deserialize, Serialize};

/// The estimate inputs and outcome of one control decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionAudit {
    /// Virtual time of the decision (seconds).
    pub at_secs: f64,
    /// Monitored read rate (ops/s) fed to the model.
    pub read_rate: f64,
    /// Monitored write rate (ops/s) fed to the model.
    pub write_rate: f64,
    /// Aggregated network latency (ms).
    pub latency_ms: f64,
    /// Measured mean mutation-stage backlog (ms).
    pub measured_backlog_ms: f64,
    /// Cross-replica backlog dispersion (ms).
    pub backlog_spread_ms: f64,
    /// M/G/1 predicted mean queue wait (ms) — the proactive signal.
    pub predicted_wait_ms: f64,
    /// Write-stage utilisation `ρ`.
    pub utilization: f64,
    /// Whether the queue was judged diverging.
    pub diverging: bool,
    /// Propagation time fed to the model (seconds), after the repair term.
    pub tp_secs: f64,
    /// Anti-entropy repair rate applied (`0` = repair term inert).
    pub repair_rate: f64,
    /// Fault epoch at decision time (counts fault events so far).
    pub fault_epoch: u64,
    /// Live nodes at decision time.
    pub live_nodes: u64,
    /// The policy's stale-read estimate (negative when the policy computes
    /// none — static baselines).
    pub estimate: f64,
    /// The policy's tolerated stale-read rate (negative when it has none).
    pub tolerance: f64,
    /// Replicas the chosen default read level involves.
    pub replicas_in_read: u64,
    /// Replicas the *previous* tick's level involved (0 on the first tick).
    pub previous_replicas: u64,
    /// Hot keys individually escalated this tick.
    pub hot_keys: u64,
}

impl DecisionAudit {
    /// True when this decision raised the default read level.
    pub fn escalated(&self) -> bool {
        self.previous_replicas > 0 && self.replicas_in_read > self.previous_replicas
    }

    /// True when this decision relaxed the default read level.
    pub fn relaxed(&self) -> bool {
        self.previous_replicas > 0 && self.replicas_in_read < self.previous_replicas
    }

    /// One-line human-readable explanation of the decision.
    pub fn explain(&self) -> String {
        let verdict = if self.escalated() {
            format!(
                "ESCALATED {}→{} replicas",
                self.previous_replicas, self.replicas_in_read
            )
        } else if self.relaxed() {
            format!(
                "relaxed {}→{} replicas",
                self.previous_replicas, self.replicas_in_read
            )
        } else {
            format!("held {} replicas", self.replicas_in_read)
        };
        format!(
            "t={:.2}s {verdict}: estimate={:.4} vs tolerance={:.2} \
             (rates r={:.0}/w={:.0} ops/s, backlog measured={:.2}ms predicted={:.2}ms, \
             rho={:.3}{}, tp={:.4}s, repair_rate={:.0}, epoch={}, live={})",
            self.at_secs,
            self.estimate,
            self.tolerance,
            self.read_rate,
            self.write_rate,
            self.measured_backlog_ms,
            self.predicted_wait_ms,
            self.utilization,
            if self.diverging { " DIVERGING" } else { "" },
            self.tp_secs,
            self.repair_rate,
            self.fault_epoch,
            self.live_nodes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(prev: u64, now: u64) -> DecisionAudit {
        DecisionAudit {
            at_secs: 2.5,
            read_rate: 1000.0,
            write_rate: 800.0,
            latency_ms: 1.0,
            measured_backlog_ms: 3.0,
            backlog_spread_ms: 1.0,
            predicted_wait_ms: 5.0,
            utilization: 0.7,
            diverging: false,
            tp_secs: 0.004,
            repair_rate: 0.0,
            fault_epoch: 2,
            live_nodes: 9,
            estimate: 0.31,
            tolerance: 0.2,
            replicas_in_read: now,
            previous_replicas: prev,
            hot_keys: 0,
        }
    }

    #[test]
    fn escalation_detection() {
        assert!(audit(1, 3).escalated());
        assert!(!audit(3, 1).escalated());
        assert!(audit(3, 1).relaxed());
        assert!(!audit(2, 2).escalated());
        // The first tick (no previous level) is never an "escalation".
        assert!(!audit(0, 3).escalated());
    }

    #[test]
    fn explanation_mentions_the_inputs() {
        let text = audit(1, 3).explain();
        assert!(text.contains("ESCALATED 1→3"), "{text}");
        assert!(text.contains("estimate=0.31"), "{text}");
        assert!(text.contains("epoch=2"), "{text}");
        assert!(text.contains("predicted=5.00ms"), "{text}");
    }

    #[test]
    fn round_trips_through_json() {
        let a = audit(1, 3);
        let json = serde_json::to_string(&a).unwrap();
        let back: DecisionAudit = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}

//! The shared log-bucketed histogram.
//!
//! One histogram type serves every layer that needs cheap percentiles over
//! millions of samples: the YCSB harness's latency statistics, the metrics
//! registry's histogram series, and the sharded runtime's per-shard series
//! (merged exactly like the hot-key sketches — bucket-wise addition).
//!
//! Logarithmic bucketing: 1 microsecond resolution at the bottom, ~1%
//! relative resolution above ([`SUB_BUCKETS`] linear sub-buckets per power
//! of two). Merging is exact — a merged histogram is bucket-identical to one
//! built from the concatenated sample streams, so percentile queries agree
//! to bucket resolution no matter how the samples were partitioned.

use harmony_sim::clock::SimTime;
use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power of two (controls relative error).
const SUB_BUCKETS: usize = 64;

/// A log-bucketed histogram over non-negative microsecond (or unit-less)
/// values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64 * SUB_BUCKETS],
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    fn bucket_index(us: f64) -> usize {
        let v = us.max(0.0) as u64;
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize; // floor(log2 v), >= 6
        let shift = exp - (SUB_BUCKETS.trailing_zeros() as usize);
        let sub = (v >> shift) as usize - SUB_BUCKETS; // 0..SUB_BUCKETS
        let idx = (shift + 1) * SUB_BUCKETS + sub;
        idx.min(64 * SUB_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> f64 {
        if index < SUB_BUCKETS {
            return index as f64;
        }
        let shift = index / SUB_BUCKETS - 1;
        let sub = index % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) << shift) as f64
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: SimTime) {
        self.record_us(latency.as_micros_f64());
    }

    /// Records one raw observation in microseconds (or any non-negative
    /// unit-less value — registry histograms use this directly).
    pub fn record_us(&mut self, us: f64) {
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values in microseconds.
    pub fn sum_us(&self) -> f64 {
        self.sum_us
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64 / 1e3
        }
    }

    /// Minimum observed latency in milliseconds.
    pub fn min_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us / 1e3
        }
    }

    /// Maximum observed latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_us / 1e3
    }

    /// The `q`-quantile (q in `[0, 1]`) in milliseconds, approximated to the
    /// histogram's bucket resolution.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i) / 1e3;
            }
        }
        self.max_ms()
    }

    /// Merges another histogram into this one. The result is bucket-identical
    /// to a histogram built from the concatenated sample streams.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        if other.count > 0 {
            self.min_us = self.min_us.min(other.min_us);
            self.max_us = self.max_us.max(other.max_us);
        }
    }

    /// Non-empty buckets as `(upper_bound_us, cumulative_count)` pairs —
    /// what Prometheus-text exposition renders as `_bucket{le=...}` lines.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c > 0 {
                cum += c;
                out.push((Self::bucket_value(i), cum));
            }
        }
        out
    }

    /// A compact summary of this histogram.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ms: self.mean_ms(),
            min_ms: self.min_ms(),
            max_ms: self.max_ms(),
            p50_ms: self.percentile_ms(0.50),
            p95_ms: self.percentile_ms(0.95),
            p99_ms: self.percentile_ms(0.99),
        }
    }
}

/// A compact latency summary (what experiment reports carry around).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Mean (ms).
    pub mean_ms: f64,
    /// Minimum (ms).
    pub min_ms: f64,
    /// Maximum (ms).
    pub max_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms) — the metric of the paper's Figure 5(a)/(b).
    pub p99_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.percentile_ms(0.99), 0.0);
        assert_eq!(h.min_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn single_observation() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_millis(5));
        assert_eq!(h.count(), 1);
        assert!((h.mean_ms() - 5.0).abs() < 1e-9);
        assert!((h.percentile_ms(0.5) - 5.0).abs() / 5.0 < 0.02);
        assert!((h.percentile_ms(0.99) - 5.0).abs() / 5.0 < 0.02);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 100)); // 0.1 .. 100 ms
        }
        let p50 = h.percentile_ms(0.50);
        let p99 = h.percentile_ms(0.99);
        assert!((p50 - 50.0).abs() / 50.0 < 0.03, "p50={p50}");
        assert!((p99 - 99.0).abs() / 99.0 < 0.03, "p99={p99}");
        assert!(h.min_ms() <= 0.11 && h.max_ms() >= 99.0);
        assert!(h.percentile_ms(1.0) >= p99);
        assert!(h.percentile_ms(0.0) <= p50);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let value_ms = 37.123;
        for _ in 0..100 {
            h.record(SimTime::from_millis_f64(value_ms));
        }
        let p = h.percentile_ms(0.5);
        assert!((p - value_ms).abs() / value_ms < 0.02, "p={p}");
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimTime::from_millis(1));
        b.record(SimTime::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_ms() >= 99.0);
        assert!(a.min_ms() <= 1.01);
        // Merging an empty histogram changes nothing.
        let before = a.summary();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.summary(), before);
    }

    #[test]
    fn merge_equals_concatenation_exactly() {
        let mut merged = LatencyHistogram::new();
        let mut concat = LatencyHistogram::new();
        let mut part = LatencyHistogram::new();
        for i in 0..500u64 {
            let us = (i * 37 + 11) as f64;
            concat.record_us(us);
            part.record_us(us);
            if i % 100 == 99 {
                merged.merge(&part);
                part = LatencyHistogram::new();
            }
        }
        merged.merge(&part);
        assert_eq!(merged, concat);
    }

    #[test]
    fn cumulative_buckets_cover_count() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(SimTime::from_millis(i));
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 100);
        let mut prev = 0u64;
        for (_, c) in &buckets {
            assert!(*c > prev);
            prev = *c;
        }
    }

    #[test]
    fn summary_is_consistent() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(SimTime::from_millis(i));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        assert!(s.min_ms <= s.p50_ms && s.p99_ms <= s.max_ms);
        assert!(s.mean_ms > 0.0);
    }

    #[test]
    fn bucket_round_trip_is_monotone() {
        let mut prev = -1.0;
        for us in [0.0, 1.0, 10.0, 63.0, 64.0, 100.0, 1000.0, 65_536.0, 1e7] {
            let idx = LatencyHistogram::bucket_index(us);
            let v = LatencyHistogram::bucket_value(idx);
            assert!(v >= prev, "us={us} v={v} prev={prev}");
            assert!(
                v <= us + 1.0,
                "bucket value {v} should not exceed input {us}"
            );
            prev = v;
        }
    }
}

//! Sampled per-op causal traces over the typed-event protocol core.
//!
//! A trace is a flat timeline of [`TraceEvent`]s in virtual time: the
//! client submit, the coordinator receipt, every replica send/serve/ack,
//! the quorum close, divergent-version reconciliation, read-repair sends,
//! retry/hedge branches, and the client reply (or abort). Node ids are plain
//! integers (`-1` = the client/driver side) so this crate stays a leaf —
//! it never needs to know what a `NodeId` is.
//!
//! Sampling is deterministic — op `i` is traced iff
//! `i % sample_every == 0` — so enabling tracing draws no randomness and
//! cannot perturb the simulation's RNG streams.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sentinel node id for events on the client/driver side of the protocol.
pub const CLIENT_NODE: i64 = -1;

/// What happened at one point of an op's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Client handed the op to the coordinator.
    Submitted,
    /// Coordinator received the op and chose the replica set.
    CoordinatorReceipt,
    /// Coordinator sent a request to a replica.
    ReplicaSend,
    /// Coordinator could not reach a replica and parked a hint instead.
    HintStashed,
    /// Replica served a read or applied a write locally.
    ReplicaApply,
    /// Replica's response/ack arrived back at the coordinator.
    ResponseReceived,
    /// The consistency quorum was satisfied.
    QuorumClose,
    /// Divergent replica versions were reconciled (newest-timestamp-wins).
    Reconcile,
    /// A read-repair mutation was pushed to a stale replica.
    ReadRepairSend,
    /// A client-side retry of an aborted attempt.
    Retry,
    /// A hedged duplicate read was raced against the slow primary.
    Hedge,
    /// The op completed and the client was answered.
    Completed,
    /// The op was aborted (crash, partition, stall timeout).
    Aborted,
}

/// One event on an op's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time in microseconds.
    pub at_us: u64,
    /// Node where the event happened (`-1` = client side).
    pub node: i64,
    /// Event kind.
    pub kind: SpanKind,
    /// Free-form detail (replica set, reconciled versions, …).
    pub detail: String,
}

/// A complete causal trace of one operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpTrace {
    /// Operation id (the cluster's sequential op counter).
    pub op: u64,
    /// `"read"` or `"write"`.
    pub op_kind: String,
    /// Key id the op targeted.
    pub key: u64,
    /// Virtual submit time (µs).
    pub submitted_at_us: u64,
    /// Virtual finish time (µs) — completion or abort.
    pub finished_at_us: u64,
    /// Consistency level the op closed at (e.g. `ONE`, `QUORUM`).
    pub consistency: String,
    /// Whether the op was aborted rather than completed.
    pub aborted: bool,
    /// Fault epoch when the op was submitted.
    pub fault_epoch_start: u64,
    /// Fault epoch when the op finished — a trace with
    /// `fault_epoch_end > fault_epoch_start` spans a fault event.
    pub fault_epoch_end: u64,
    /// The ordered event timeline.
    pub events: Vec<TraceEvent>,
}

impl OpTrace {
    /// End-to-end virtual latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.finished_at_us.saturating_sub(self.submitted_at_us)
    }

    /// True when the op's lifetime crossed at least one fault event.
    pub fn spans_fault_epoch(&self) -> bool {
        self.fault_epoch_end > self.fault_epoch_start
    }

    /// Renders the timeline human-readably, one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "op {} {} key={} level={} {} latency={:.3}ms epochs={}..{}",
            self.op,
            self.op_kind,
            self.key,
            self.consistency,
            if self.aborted { "ABORTED" } else { "ok" },
            self.latency_us() as f64 / 1e3,
            self.fault_epoch_start,
            self.fault_epoch_end,
        );
        for ev in &self.events {
            let node = if ev.node == CLIENT_NODE {
                "client".to_string()
            } else {
                format!("node{}", ev.node)
            };
            let _ = writeln!(
                out,
                "  {:>12.3}ms  {:<8} {:<17} {}",
                ev.at_us as f64 / 1e3,
                node,
                format!("{:?}", ev.kind),
                ev.detail,
            );
        }
        out
    }
}

/// The live tracer: tracks in-flight sampled ops and hands finished traces
/// to the caller. Plain owned data — cloning a tracer (the checker clones
/// whole clusters for backtracking) yields an independent copy.
#[derive(Debug, Clone, Default)]
pub struct OpTracer {
    /// Trace every `sample_every`-th op; `0` disables tracing entirely.
    sample_every: u64,
    active: HashMap<u64, OpTrace>,
}

impl OpTracer {
    /// A tracer sampling every `sample_every`-th op (0 = off).
    pub fn new(sample_every: u64) -> Self {
        OpTracer {
            sample_every,
            active: HashMap::new(),
        }
    }

    /// Whether op `op` is (or would be) sampled.
    pub fn samples(&self, op: u64) -> bool {
        self.sample_every > 0 && op.is_multiple_of(self.sample_every)
    }

    /// Number of in-flight traced ops.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Starts a trace for a sampled op. No-op when `op` is not sampled.
    pub fn start(&mut self, op: u64, op_kind: &str, key: u64, at_us: u64, fault_epoch: u64) {
        if !self.samples(op) {
            return;
        }
        self.active.insert(
            op,
            OpTrace {
                op,
                op_kind: op_kind.to_string(),
                key,
                submitted_at_us: at_us,
                finished_at_us: at_us,
                consistency: String::new(),
                aborted: false,
                fault_epoch_start: fault_epoch,
                fault_epoch_end: fault_epoch,
                events: vec![TraceEvent {
                    at_us,
                    node: CLIENT_NODE,
                    kind: SpanKind::Submitted,
                    detail: String::new(),
                }],
            },
        );
    }

    /// Appends an event to op `op`'s timeline if it is being traced.
    pub fn event(&mut self, op: u64, at_us: u64, node: i64, kind: SpanKind, detail: String) {
        if let Some(trace) = self.active.get_mut(&op) {
            trace.events.push(TraceEvent {
                at_us,
                node,
                kind,
                detail,
            });
        }
    }

    /// Finishes op `op`'s trace and returns it (None when not traced).
    pub fn finish(
        &mut self,
        op: u64,
        at_us: u64,
        consistency: &str,
        aborted: bool,
        fault_epoch: u64,
    ) -> Option<OpTrace> {
        let mut trace = self.active.remove(&op)?;
        trace.finished_at_us = at_us;
        trace.consistency = consistency.to_string();
        trace.aborted = aborted;
        trace.fault_epoch_end = fault_epoch;
        trace.events.push(TraceEvent {
            at_us,
            node: CLIENT_NODE,
            kind: if aborted {
                SpanKind::Aborted
            } else {
                SpanKind::Completed
            },
            detail: String::new(),
        });
        Some(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_modulo() {
        let t = OpTracer::new(64);
        assert!(t.samples(0));
        assert!(t.samples(64));
        assert!(!t.samples(65));
        let off = OpTracer::new(0);
        assert!(!off.samples(0));
    }

    #[test]
    fn start_event_finish_round_trip() {
        let mut t = OpTracer::new(1);
        t.start(7, "read", 42, 1000, 0);
        t.event(
            7,
            1500,
            2,
            SpanKind::CoordinatorReceipt,
            "replicas [2,3,4]".into(),
        );
        t.event(7, 2500, 3, SpanKind::ReplicaApply, String::new());
        let trace = t.finish(7, 4000, "ONE", false, 1).unwrap();
        assert_eq!(trace.latency_us(), 3000);
        assert!(trace.spans_fault_epoch());
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.events[0].kind, SpanKind::Submitted);
        assert_eq!(trace.events.last().unwrap().kind, SpanKind::Completed);
        let text = trace.render();
        assert!(text.contains("op 7 read key=42 level=ONE ok"), "{text}");
        assert!(text.contains("CoordinatorReceipt"), "{text}");
        assert!(text.contains("node3"), "{text}");
    }

    #[test]
    fn untraced_ops_are_ignored() {
        let mut t = OpTracer::new(2);
        t.start(1, "read", 0, 0, 0); // 1 % 2 != 0 → not sampled
        t.event(1, 10, 0, SpanKind::QuorumClose, String::new());
        assert!(t.finish(1, 20, "ONE", false, 0).is_none());
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn traces_serialize_to_json() {
        let mut t = OpTracer::new(1);
        t.start(0, "write", 9, 0, 0);
        let trace = t.finish(0, 100, "ALL", true, 0).unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: OpTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert!(back.aborted);
    }
}

//! The metrics registry: named counters, gauges and histograms with
//! Prometheus-text and JSON-snapshot exposition.
//!
//! The registry follows the *collect-on-scrape* pattern: the protocol core
//! keeps its existing plain counters (`ClusterTotals`, per-node counters,
//! monitor samples) and an `export_metrics(&registry)` call copies them into
//! the registry when a snapshot is wanted. Nothing on the simulation hot
//! path touches an atomic, so enabling metrics cannot perturb a run.
//!
//! Handles are cheap `Arc`s — shards clone them freely, and per-shard
//! registries merge like the hot-key sketches: counters add, gauges take the
//! worst case (max), histograms merge bucket-wise.

use crate::hist::{LatencyHistogram, LatencySummary};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the absolute total (collect-on-scrape: copy an existing counter).
    pub fn set_total(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge handle holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Mutex<LatencyHistogram>>,
}

impl Histogram {
    /// Records one observation in microseconds.
    pub fn record_us(&self, us: f64) {
        self.inner.lock().record_us(us);
    }

    /// Records one observation in milliseconds.
    pub fn record_ms(&self, ms: f64) {
        self.record_us(ms * 1e3);
    }

    /// Merges a whole pre-built histogram into this series (collect-on-scrape
    /// for layers that already keep a `LatencyHistogram`).
    pub fn merge_from(&self, other: &LatencyHistogram) {
        self.inner.lock().merge(other);
    }

    /// A snapshot of the underlying histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.inner.lock().clone()
    }
}

/// One counter in a JSON snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Full series name (may carry `{label="value"}` suffixes).
    pub name: String,
    /// Counter total.
    pub value: u64,
}

/// One gauge in a JSON snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Full series name.
    pub name: String,
    /// Gauge value.
    pub value: f64,
}

/// One histogram in a JSON snapshot (summarised; full buckets stay internal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Full series name.
    pub name: String,
    /// Percentile summary of the series.
    pub summary: LatencySummary,
}

/// A point-in-time JSON-serialisable view of the whole registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

#[derive(Default)]
struct Series {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<LatencyHistogram>>>,
}

/// The registry. Cheap to clone (all clones share the same series).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    series: Arc<Mutex<Series>>,
}

/// Builds a full series name from a base name and labels:
/// `series_name("harmony_reads", &[("level", "ONE")])` →
/// `harmony_reads{level="ONE"}`.
pub fn series_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::from(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

fn base_name(series: &str) -> &str {
    series.split('{').next().unwrap_or(series)
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter with this series name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut s = self.series.lock();
        let value = s
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { value }
    }

    /// Returns (registering on first use) the gauge with this series name.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut s = self.series.lock();
        let bits = s
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())))
            .clone();
        Gauge { bits }
    }

    /// Returns (registering on first use) the histogram with this series name.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut s = self.series.lock();
        let inner = s
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(LatencyHistogram::new())))
            .clone();
        Histogram { inner }
    }

    /// Merges another registry into this one the way shard sketches merge:
    /// counters add, gauges take the max (conservative — a merged backlog or
    /// φ gauge reports the worst shard), histograms merge bucket-wise.
    /// Series missing on either side are registered as needed.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.snapshot_raw();
        for (name, value) in theirs.0 {
            self.counter(&name).add(value);
        }
        for (name, value) in theirs.1 {
            let g = self.gauge(&name);
            g.set(g.get().max(value));
        }
        for (name, hist) in theirs.2 {
            self.histogram(&name).merge_from(&hist);
        }
    }

    #[allow(clippy::type_complexity)]
    fn snapshot_raw(
        &self,
    ) -> (
        Vec<(String, u64)>,
        Vec<(String, f64)>,
        Vec<(String, LatencyHistogram)>,
    ) {
        let s = self.series.lock();
        let counters = s
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = s
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = s
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.lock().clone()))
            .collect();
        (counters, gauges, histograms)
    }

    /// A point-in-time JSON-serialisable snapshot (sorted by series name).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (counters, gauges, histograms) = self.snapshot_raw();
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterSample { name, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, value)| GaugeSample { name, value })
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|(name, h)| HistogramSample {
                    name,
                    summary: h.summary(),
                })
                .collect(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let (counters, gauges, histograms) = self.snapshot_raw();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, value) in &counters {
            let base = base_name(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_base = base.to_string();
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_base.clear();
        for (name, value) in &gauges {
            let base = base_name(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} gauge");
                last_base = base.to_string();
            }
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &histograms {
            let base = base_name(name);
            let _ = writeln!(out, "# TYPE {base} histogram");
            for (le_us, cum) in hist.cumulative_buckets() {
                let _ = writeln!(out, "{base}_bucket{{le=\"{le_us}\"}} {cum}");
            }
            let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{base}_sum {}", hist.sum_us());
            let _ = writeln!(out, "{base}_count {}", hist.count());
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("MetricsRegistry")
            .field("counters", &snap.counters.len())
            .field("gauges", &snap.gauges.len())
            .field("histograms", &snap.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_accumulate() {
        let r = MetricsRegistry::new();
        let c = r.counter("harmony_reads_total");
        c.inc();
        c.add(4);
        // A second handle to the same series observes the same value.
        assert_eq!(r.counter("harmony_reads_total").get(), 5);
        r.counter("harmony_reads_total").set_total(42);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauges_hold_floats() {
        let r = MetricsRegistry::new();
        let g = r.gauge("harmony_backlog_ms");
        assert_eq!(g.get(), 0.0);
        g.set(12.5);
        assert_eq!(r.gauge("harmony_backlog_ms").get(), 12.5);
    }

    #[test]
    fn series_name_formats_labels() {
        assert_eq!(series_name("a", &[]), "a");
        assert_eq!(
            series_name("harmony_reads", &[("level", "ONE"), ("shard", "0")]),
            "harmony_reads{level=\"ONE\",shard=\"0\"}"
        );
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_merges_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("ops").add(3);
        b.counter("ops").add(4);
        b.counter("only_b").add(1);
        a.gauge("phi").set(1.0);
        b.gauge("phi").set(7.0);
        a.histogram("lat_us").record_us(100.0);
        b.histogram("lat_us").record_us(200.0);
        a.merge_from(&b);
        assert_eq!(a.counter("ops").get(), 7);
        assert_eq!(a.counter("only_b").get(), 1);
        assert_eq!(a.gauge("phi").get(), 7.0);
        assert_eq!(a.histogram("lat_us").snapshot().count(), 2);
    }

    #[test]
    fn prometheus_rendering_groups_types() {
        let r = MetricsRegistry::new();
        r.counter(&series_name("harmony_reads", &[("level", "ONE")]))
            .add(2);
        r.counter(&series_name("harmony_reads", &[("level", "QUORUM")]))
            .add(3);
        r.gauge("harmony_phi_max").set(0.5);
        r.histogram("harmony_read_latency_us").record_us(1000.0);
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE harmony_reads counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("harmony_reads{level=\"ONE\"} 2"));
        assert!(text.contains("harmony_reads{level=\"QUORUM\"} 3"));
        assert!(text.contains("# TYPE harmony_phi_max gauge"));
        assert!(text.contains("harmony_phi_max 0.5"));
        assert!(text.contains("# TYPE harmony_read_latency_us histogram"));
        assert!(text.contains("harmony_read_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("harmony_read_latency_us_count 1"));
    }

    #[test]
    fn snapshot_is_sorted_and_serialisable() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[1].name, "b");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}

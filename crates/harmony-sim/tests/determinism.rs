//! Same seed ⇒ identical event trace.
//!
//! Every layer above the simulator (store, runner, bench binaries) assumes
//! that rerunning an experiment with the same seed reproduces it bit for bit.
//! This test drives a self-exciting event cascade — each event draws from the
//! simulation RNG and schedules more events at random delays, mixing
//! same-instant ties and distinct times — and checks that two runs with the
//! same seed produce identical traces while a different seed does not.

use harmony_sim::clock::SimTime;
use harmony_sim::engine::Simulation;
use harmony_sim::latency::Latency;
use rand::Rng;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Spawn(u32),
    Leaf(u32),
}

/// Runs the cascade and returns the full delivery trace.
fn trace(seed: u64) -> Vec<(SimTime, Ev)> {
    let mut sim: Simulation<Ev> = Simulation::new(seed);
    let latency = Latency::lognormal_ms(0.8, 0.4);
    for i in 0..8 {
        sim.schedule_at(SimTime::from_millis(i % 3), Ev::Spawn(i as u32));
    }
    let mut out = Vec::new();
    let mut budget = 4_000u32;
    while let Some((t, ev)) = sim.next() {
        out.push((t, ev.clone()));
        if let Ev::Spawn(gen) = ev {
            if budget > 0 && gen < 12 {
                budget -= 1;
                let fanout = sim.rng().gen_range(1..4usize);
                for _ in 0..fanout {
                    let delay = latency.sample(sim.rng());
                    let next = if sim.rng().gen_bool(0.7) {
                        Ev::Spawn(gen + 1)
                    } else {
                        Ev::Leaf(gen)
                    };
                    sim.schedule_in(delay, next);
                }
            }
        }
    }
    out
}

#[test]
fn same_seed_produces_identical_event_trace() {
    let a = trace(0xDEC0DE);
    let b = trace(0xDEC0DE);
    assert!(
        a.len() > 100,
        "cascade should generate real work, got {}",
        a.len()
    );
    assert_eq!(
        a, b,
        "two runs with the same seed must match event for event"
    );
}

#[test]
fn different_seed_produces_different_trace() {
    let a = trace(1);
    let b = trace(2);
    assert_ne!(a, b, "different seeds should diverge");
}

#[test]
fn trace_times_are_monotonic() {
    let t = trace(7);
    assert!(t.windows(2).all(|w| w[0].0 <= w[1].0));
}

//! Same seed ⇒ identical event trace.
//!
//! Every layer above the simulator (store, runner, bench binaries) assumes
//! that rerunning an experiment with the same seed reproduces it bit for bit.
//! This test drives a self-exciting event cascade — each event draws from the
//! simulation RNG and schedules more events at random delays, mixing
//! same-instant ties and distinct times — and checks that two runs with the
//! same seed produce identical traces while a different seed does not.

use harmony_sim::clock::SimTime;
use harmony_sim::engine::Simulation;
use harmony_sim::latency::Latency;
use harmony_sim::service::ServiceModel;
use harmony_sim::topology::NodeId;
use rand::Rng;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Spawn(u32),
    Leaf(u32),
}

/// Runs the cascade and returns the full delivery trace.
fn trace(seed: u64) -> Vec<(SimTime, Ev)> {
    let mut sim: Simulation<Ev> = Simulation::new(seed);
    let latency = Latency::lognormal_ms(0.8, 0.4);
    for i in 0..8 {
        sim.schedule_at(SimTime::from_millis(i % 3), Ev::Spawn(i as u32));
    }
    let mut out = Vec::new();
    let mut budget = 4_000u32;
    while let Some((t, ev)) = sim.next() {
        out.push((t, ev.clone()));
        if let Ev::Spawn(gen) = ev {
            if budget > 0 && gen < 12 {
                budget -= 1;
                let fanout = sim.rng().gen_range(1..4usize);
                for _ in 0..fanout {
                    let delay = latency.sample(sim.rng());
                    let next = if sim.rng().gen_bool(0.7) {
                        Ev::Spawn(gen + 1)
                    } else {
                        Ev::Leaf(gen)
                    };
                    sim.schedule_in(delay, next);
                }
            }
        }
    }
    out
}

#[test]
fn same_seed_produces_identical_event_trace() {
    let a = trace(0xDEC0DE);
    let b = trace(0xDEC0DE);
    assert!(
        a.len() > 100,
        "cascade should generate real work, got {}",
        a.len()
    );
    assert_eq!(
        a, b,
        "two runs with the same seed must match event for event"
    );
}

#[test]
fn different_seed_produces_different_trace() {
    let a = trace(1);
    let b = trace(2);
    assert_ne!(a, b, "different seeds should diverge");
}

#[test]
fn trace_times_are_monotonic() {
    let t = trace(7);
    assert!(t.windows(2).all(|w| w[0].0 <= w[1].0));
}

/// Per-node write-stage service-time events: arrivals flow through a bounded
/// single-server queue per node whose service times come from the per-node
/// [`ServiceModel`]. The trace records, for every completed unit of work,
/// the node, the sampled service time and the queue wait it experienced —
/// the exact quantities the queueing-aware staleness model consumes.
#[derive(Debug, Clone, PartialEq)]
enum QEv {
    Arrive(u32),
    Finish(u32),
}

fn service_trace(seed: u64) -> Vec<(SimTime, u32, SimTime, SimTime)> {
    let model = ServiceModel::erlang_ms(0.8, 2).with_node_factors(vec![1.0, 2.5, 0.7]);
    let mut sim: Simulation<QEv> = Simulation::new(seed);
    let arrivals = 120u32;
    // Poisson-ish arrivals over 3 nodes, scheduled up front from the sim RNG.
    let mut t = SimTime::ZERO;
    for i in 0..arrivals {
        let gap = -(1.0 - sim.rng().gen::<f64>()).ln() * 0.25; // mean 0.25 ms
        t += SimTime::from_millis_f64(gap);
        sim.schedule_at(t, QEv::Arrive(i % 3));
    }
    // Per-node single-server FIFO queue state: (busy-until, waiting count).
    let mut busy_until = [SimTime::ZERO; 3];
    let mut out = Vec::new();
    while let Some((now, ev)) = sim.next() {
        match ev {
            QEv::Arrive(node) => {
                let start = busy_until[node as usize].max(now);
                let wait = start.saturating_sub(now);
                let service = model.sample(NodeId(node), sim.rng());
                busy_until[node as usize] = start + service;
                out.push((now, node, service, wait));
                sim.schedule_at(busy_until[node as usize], QEv::Finish(node));
            }
            QEv::Finish(_) => {}
        }
    }
    out
}

#[test]
fn same_seed_reproduces_service_times_and_queue_waits() {
    let a = service_trace(0x5EED);
    let b = service_trace(0x5EED);
    assert_eq!(a.len(), 120);
    assert_eq!(
        a, b,
        "same seed must reproduce every service-time sample and queue wait"
    );
    // The heterogeneous factors actually matter: the straggler node (factor
    // 2.5) accumulates longer waits than the fast node (factor 0.7).
    let total_wait = |trace: &[(SimTime, u32, SimTime, SimTime)], node: u32| {
        trace
            .iter()
            .filter(|(_, n, _, _)| *n == node)
            .map(|(_, _, _, w)| w.as_millis_f64())
            .sum::<f64>()
    };
    assert!(total_wait(&a, 1) > total_wait(&a, 2));
}

#[test]
fn different_seed_changes_service_samples() {
    assert_ne!(service_trace(3), service_trace(4));
}

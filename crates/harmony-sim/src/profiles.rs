//! Ready-made cluster profiles reproducing the paper's two evaluation platforms.
//!
//! * **Grid'5000** (§V.C): two clusters at the Sophia site, 84 physical nodes,
//!   Gigabit Ethernet — low and stable latency. We model it as two racks in a
//!   single datacenter with sub-millisecond LAN latencies.
//! * **Amazon EC2** (§V.C): 20 Large instances in one availability zone —
//!   the paper reports inter-node latency roughly five times higher than
//!   Grid'5000 in the normal case, with substantial variability (Figure 4b).
//!   We model it as a virtualised network with log-normal latencies and
//!   occasional multiplicative spikes.
//!
//! Both profiles default to replication factor 5 and a scaled-down node count
//! of 20 (the figure shapes depend on latency and access rates, not on the raw
//! host count; the full 84-node Grid'5000 layout is available via
//! [`grid5000_full`]).

use crate::latency::Latency;
use crate::topology::{NetworkModel, Topology};
use serde::{Deserialize, Serialize};

/// A named experimental platform: topology plus network behaviour plus the
/// replication settings the paper used on it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// Human-readable platform name.
    pub name: String,
    /// Node layout (datacenters / racks / nodes).
    pub topology: Topology,
    /// Pairwise latency behaviour.
    pub network: NetworkModel,
    /// Replication factor used by the paper on this platform (5 on both).
    pub replication_factor: usize,
    /// The two Harmony tolerated-stale-read settings the paper evaluates on
    /// this platform, as fractions (e.g. 0.20 and 0.40 for Grid'5000).
    pub harmony_settings: [f64; 2],
}

impl ClusterProfile {
    /// Number of storage nodes in the profile.
    pub fn node_count(&self) -> usize {
        self.topology.len()
    }

    /// Mean pairwise network latency in milliseconds (the `Ln` the monitor
    /// would observe in steady state).
    pub fn mean_latency_ms(&self) -> f64 {
        self.network.mean_pairwise_ms(&self.topology)
    }
}

/// The scaled Grid'5000 profile used by the experiment harness:
/// 20 nodes over two racks, Gigabit-Ethernet-class latencies.
pub fn grid5000() -> ClusterProfile {
    grid5000_with_nodes(20)
}

/// The full-size Grid'5000 Sophia deployment (84 nodes over two clusters).
pub fn grid5000_full() -> ClusterProfile {
    grid5000_with_nodes(84)
}

/// Grid'5000 profile with an explicit node count (split over two racks).
pub fn grid5000_with_nodes(nodes: usize) -> ClusterProfile {
    let per_rack = nodes.div_ceil(2).max(1) as u16;
    let topology = Topology::single_dc(2, per_rack);
    // Gigabit Ethernet LAN: ~0.15 ms in-rack, ~0.3 ms across racks, small jitter.
    let network = NetworkModel {
        same_node: Latency::constant_ms(0.02),
        same_rack: Latency::normal_ms(0.15, 0.03),
        same_dc: Latency::normal_ms(0.30, 0.06),
        cross_dc: Latency::normal_ms(0.30, 0.06),
    };
    ClusterProfile {
        name: "grid5000".to_string(),
        topology,
        network,
        replication_factor: 5,
        harmony_settings: [0.20, 0.40],
    }
}

/// The Amazon EC2 profile: 20 Large instances, virtualised network with a mean
/// roughly 5x the Grid'5000 latency, heavy-tailed with occasional spikes.
pub fn ec2() -> ClusterProfile {
    ec2_with_nodes(20)
}

/// EC2 profile with an explicit instance count.
pub fn ec2_with_nodes(nodes: usize) -> ClusterProfile {
    let topology = Topology::single_dc(1, nodes.max(1) as u16);
    // Virtualised network: log-normal body around ~1.2-1.5 ms with spikes that
    // occasionally reach tens of milliseconds (Figure 4b sweeps 0-50 ms).
    let base = Latency::lognormal_ms(1.1, 0.45);
    let network = NetworkModel {
        same_node: Latency::constant_ms(0.05),
        same_rack: base.clone().with_spikes(0.03, 25.0),
        same_dc: base.clone().with_spikes(0.03, 25.0),
        cross_dc: base.with_spikes(0.03, 25.0),
    };
    ClusterProfile {
        name: "ec2".to_string(),
        topology,
        network,
        replication_factor: 5,
        harmony_settings: [0.40, 0.60],
    }
}

/// A geo-replicated profile: two datacenters of two racks each, with WAN
/// latency between them. This is the profile that actually exercises
/// [`Topology::multi_dc`] and the [`crate::topology::Proximity::CrossDc`]
/// class of the network model — in-rack and in-DC latencies match the
/// Grid'5000 LAN, while the inter-DC links sit at tens of milliseconds with
/// jitter (a metro/regional WAN), so cross-DC propagation dominates the
/// staleness window the controller watches.
pub fn multi_dc() -> ClusterProfile {
    multi_dc_with(2, 2, 5)
}

/// [`multi_dc`] with explicit shape: `dcs` datacenters × `racks_per_dc`
/// racks × `nodes_per_rack` nodes.
pub fn multi_dc_with(dcs: u16, racks_per_dc: u16, nodes_per_rack: u16) -> ClusterProfile {
    let topology = Topology::multi_dc(dcs.max(1), racks_per_dc.max(1), nodes_per_rack.max(1));
    let network = NetworkModel {
        same_node: Latency::constant_ms(0.02),
        same_rack: Latency::normal_ms(0.15, 0.03),
        same_dc: Latency::normal_ms(0.35, 0.07),
        // Regional WAN: ~12 ms one way with visible jitter.
        cross_dc: Latency::normal_ms(12.0, 2.0),
    };
    ClusterProfile {
        name: "multi-dc".to_string(),
        topology,
        network,
        replication_factor: 5,
        // Cross-DC windows are long; the paper-style tolerances for a
        // high-latency platform (the EC2 settings) apply.
        harmony_settings: [0.40, 0.60],
    }
}

/// Looks up a profile by name (`"grid5000"`, `"grid5000-full"`, `"ec2"` or
/// `"multi-dc"`).
pub fn by_name(name: &str) -> Option<ClusterProfile> {
    match name {
        "grid5000" => Some(grid5000()),
        "grid5000-full" => Some(grid5000_full()),
        "ec2" => Some(ec2()),
        "multi-dc" => Some(multi_dc()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid5000_shape() {
        let p = grid5000();
        assert_eq!(p.node_count(), 20);
        assert_eq!(p.replication_factor, 5);
        assert_eq!(p.topology.racks().len(), 2);
        assert!(p.mean_latency_ms() < 0.5);
        assert_eq!(p.harmony_settings, [0.20, 0.40]);
    }

    #[test]
    fn grid5000_full_has_84_nodes() {
        assert_eq!(grid5000_full().node_count(), 84);
    }

    #[test]
    fn ec2_shape() {
        let p = ec2();
        assert_eq!(p.node_count(), 20);
        assert_eq!(p.replication_factor, 5);
        assert_eq!(p.harmony_settings, [0.40, 0.60]);
    }

    #[test]
    fn ec2_latency_is_about_5x_grid5000() {
        // The paper reports EC2 latency roughly 5x Grid'5000 in the normal case.
        let ratio = ec2().mean_latency_ms() / grid5000().mean_latency_ms();
        assert!(ratio > 3.0 && ratio < 10.0, "ratio = {ratio}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("grid5000").is_some());
        assert!(by_name("grid5000-full").is_some());
        assert!(by_name("ec2").is_some());
        assert!(by_name("multi-dc").is_some());
        assert!(by_name("azure").is_none());
    }

    #[test]
    fn multi_dc_profile_exercises_cross_dc_proximity() {
        use crate::topology::{NodeId, Proximity};
        let p = multi_dc();
        assert_eq!(p.node_count(), 20);
        assert_eq!(p.topology.datacenters(), vec![0, 1]);
        assert_eq!(p.topology.racks().len(), 4);
        // Node 0 (dc0) and node 10 (dc1) are CrossDc and see WAN latency.
        let far = NodeId(10);
        assert_eq!(p.topology.proximity(NodeId(0), far), Proximity::CrossDc);
        let wan = p.network.mean_ms(&p.topology, NodeId(0), far);
        let lan = p.network.mean_ms(&p.topology, NodeId(0), NodeId(1));
        assert!(wan > 20.0 * lan, "wan {wan} ms vs lan {lan} ms");
        // The pairwise mean is dominated by the cross-DC links.
        assert!(p.mean_latency_ms() > 5.0);
        assert_eq!(multi_dc_with(3, 1, 2).node_count(), 6);
    }

    #[test]
    fn custom_node_counts() {
        assert_eq!(grid5000_with_nodes(10).node_count(), 10);
        assert_eq!(ec2_with_nodes(7).node_count(), 7);
        assert_eq!(grid5000_with_nodes(0).node_count(), 2); // clamped to 1 per rack
    }
}

//! Parametric network latency models.
//!
//! The Harmony paper's central environmental variable is the update
//! propagation time `Tp`, which is driven by inter-replica network latency
//! (§IV). Grid'5000 shows low, stable LAN latencies while EC2 exhibits a mean
//! roughly five times higher with substantial variability (§V.E, Figure 4b).
//! The [`Latency`] enum captures the distribution families needed to model
//! both environments, plus combinators to shift/scale/spike a base model.

use crate::clock::SimTime;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal, Pareto};
use serde::{Deserialize, Serialize};

/// A sampleable one-way network latency model.
///
/// All parameters are expressed in milliseconds; samples are returned as
/// [`SimTime`]. Every variant clamps at a non-negative value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Latency {
    /// A fixed latency.
    Constant {
        /// Latency in milliseconds.
        ms: f64,
    },
    /// Uniformly distributed latency in `[lo_ms, hi_ms]`.
    Uniform {
        /// Lower bound (ms).
        lo_ms: f64,
        /// Upper bound (ms).
        hi_ms: f64,
    },
    /// Normally distributed latency truncated below at `min_ms`.
    Normal {
        /// Mean (ms).
        mean_ms: f64,
        /// Standard deviation (ms).
        std_ms: f64,
        /// Truncation floor (ms).
        min_ms: f64,
    },
    /// Log-normally distributed latency (natural parametrisation by the
    /// median and the multiplicative spread `sigma`).
    LogNormal {
        /// Median latency (ms).
        median_ms: f64,
        /// Log-space standard deviation (dimensionless).
        sigma: f64,
    },
    /// Pareto-tailed latency: `scale_ms * Pareto(shape)`, modelling the rare
    /// very slow packets seen on shared cloud networks.
    ParetoTail {
        /// Scale, i.e. the minimum value of the distribution (ms).
        scale_ms: f64,
        /// Tail index; smaller means heavier tail. Must be > 0.
        shape: f64,
    },
    /// A base model plus occasional multiplicative spikes: with probability
    /// `spike_prob` the sample is multiplied by `spike_factor`.
    Spiky {
        /// The base latency model.
        base: Box<Latency>,
        /// Probability of a spike on any given sample (0..=1).
        spike_prob: f64,
        /// Multiplier applied when a spike occurs.
        spike_factor: f64,
    },
    /// A base model scaled by a constant factor.
    Scaled {
        /// The base latency model.
        base: Box<Latency>,
        /// Multiplicative factor.
        factor: f64,
    },
    /// A base model shifted up by a constant number of milliseconds.
    Shifted {
        /// The base latency model.
        base: Box<Latency>,
        /// Additive offset (ms).
        offset_ms: f64,
    },
}

impl Latency {
    /// A fixed latency of `ms` milliseconds.
    pub fn constant_ms(ms: f64) -> Self {
        Latency::Constant { ms }
    }

    /// A uniform latency in `[lo_ms, hi_ms]` milliseconds.
    pub fn uniform_ms(lo_ms: f64, hi_ms: f64) -> Self {
        Latency::Uniform { lo_ms, hi_ms }
    }

    /// A truncated normal latency.
    pub fn normal_ms(mean_ms: f64, std_ms: f64) -> Self {
        Latency::Normal {
            mean_ms,
            std_ms,
            min_ms: (mean_ms - 3.0 * std_ms).max(0.01),
        }
    }

    /// A log-normal latency given its median and spread.
    pub fn lognormal_ms(median_ms: f64, sigma: f64) -> Self {
        Latency::LogNormal { median_ms, sigma }
    }

    /// Wraps `self` in a spiky model.
    pub fn with_spikes(self, spike_prob: f64, spike_factor: f64) -> Self {
        Latency::Spiky {
            base: Box::new(self),
            spike_prob,
            spike_factor,
        }
    }

    /// Wraps `self` in a scaling model.
    pub fn scaled(self, factor: f64) -> Self {
        Latency::Scaled {
            base: Box::new(self),
            factor,
        }
    }

    /// Wraps `self` in a shifting model.
    pub fn shifted_ms(self, offset_ms: f64) -> Self {
        Latency::Shifted {
            base: Box::new(self),
            offset_ms,
        }
    }

    /// Draws one latency sample in milliseconds.
    pub fn sample_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match self {
            Latency::Constant { ms } => *ms,
            Latency::Uniform { lo_ms, hi_ms } => {
                if hi_ms <= lo_ms {
                    *lo_ms
                } else {
                    rng.gen_range(*lo_ms..*hi_ms)
                }
            }
            Latency::Normal {
                mean_ms,
                std_ms,
                min_ms,
            } => {
                let d = Normal::new(*mean_ms, (*std_ms).max(1e-9)).expect("valid normal");
                d.sample(rng).max(*min_ms)
            }
            Latency::LogNormal { median_ms, sigma } => {
                let mu = median_ms.max(1e-9).ln();
                let d = LogNormal::new(mu, (*sigma).max(1e-9)).expect("valid lognormal");
                d.sample(rng)
            }
            Latency::ParetoTail { scale_ms, shape } => {
                let d =
                    Pareto::new((*scale_ms).max(1e-9), (*shape).max(1e-3)).expect("valid pareto");
                d.sample(rng)
            }
            Latency::Spiky {
                base,
                spike_prob,
                spike_factor,
            } => {
                let v = base.sample_ms(rng);
                if rng.gen_bool(spike_prob.clamp(0.0, 1.0)) {
                    v * spike_factor
                } else {
                    v
                }
            }
            Latency::Scaled { base, factor } => base.sample_ms(rng) * factor,
            Latency::Shifted { base, offset_ms } => base.sample_ms(rng) + offset_ms,
        };
        v.max(0.0)
    }

    /// Draws one latency sample as a [`SimTime`].
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        SimTime::from_millis_f64(self.sample_ms(rng))
    }

    /// The analytic (or, for spiky/heavy-tailed models, approximate) mean in
    /// milliseconds, used by the monitor-free estimation paths and tests.
    pub fn mean_ms(&self) -> f64 {
        match self {
            Latency::Constant { ms } => *ms,
            Latency::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            Latency::Normal { mean_ms, .. } => *mean_ms,
            Latency::LogNormal { median_ms, sigma } => median_ms * (sigma * sigma / 2.0).exp(),
            Latency::ParetoTail { scale_ms, shape } => {
                if *shape > 1.0 {
                    scale_ms * shape / (shape - 1.0)
                } else {
                    // Infinite-mean regime: report a large finite proxy.
                    scale_ms * 100.0
                }
            }
            Latency::Spiky {
                base,
                spike_prob,
                spike_factor,
            } => {
                let m = base.mean_ms();
                m * (1.0 - spike_prob) + m * spike_factor * spike_prob
            }
            Latency::Scaled { base, factor } => base.mean_ms() * factor,
            Latency::Shifted { base, offset_ms } => base.mean_ms() + offset_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    fn empirical_mean(l: &Latency, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| l.sample_ms(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let l = Latency::constant_ms(2.5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(l.sample_ms(&mut r), 2.5);
        }
        assert_eq!(l.mean_ms(), 2.5);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let l = Latency::uniform_ms(1.0, 3.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = l.sample_ms(&mut r);
            assert!((1.0..3.0).contains(&v));
        }
        assert!((empirical_mean(&l, 20_000) - 2.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let l = Latency::uniform_ms(2.0, 2.0);
        assert_eq!(l.sample_ms(&mut rng()), 2.0);
    }

    #[test]
    fn normal_respects_floor_and_mean() {
        let l = Latency::normal_ms(5.0, 1.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(l.sample_ms(&mut r) >= 0.01);
        }
        assert!((empirical_mean(&l, 20_000) - 5.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_mean_matches_analytic() {
        let l = Latency::lognormal_ms(2.0, 0.5);
        let analytic = l.mean_ms();
        let emp = empirical_mean(&l, 100_000);
        assert!(
            (emp - analytic).abs() / analytic < 0.05,
            "emp={emp} analytic={analytic}"
        );
    }

    #[test]
    fn pareto_is_at_least_scale() {
        let l = Latency::ParetoTail {
            scale_ms: 1.0,
            shape: 2.5,
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(l.sample_ms(&mut r) >= 1.0);
        }
        assert!(l.mean_ms() > 1.0);
    }

    #[test]
    fn spiky_raises_the_mean() {
        let base = Latency::constant_ms(1.0);
        let spiky = base.clone().with_spikes(0.5, 10.0);
        assert!(empirical_mean(&spiky, 20_000) > empirical_mean(&base, 100) + 1.0);
        assert!((spiky.mean_ms() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn scaled_and_shifted_compose() {
        let l = Latency::constant_ms(2.0).scaled(3.0).shifted_ms(1.0);
        assert_eq!(l.sample_ms(&mut rng()), 7.0);
        assert_eq!(l.mean_ms(), 7.0);
    }

    #[test]
    fn samples_are_never_negative() {
        let l = Latency::normal_ms(0.1, 5.0);
        let mut r = rng();
        for _ in 0..2000 {
            assert!(l.sample_ms(&mut r) >= 0.0);
        }
    }

    #[test]
    fn sample_to_simtime() {
        let l = Latency::constant_ms(1.5);
        assert_eq!(l.sample(&mut rng()), SimTime::from_millis_f64(1.5));
    }

    #[test]
    fn serde_round_trip() {
        let l = Latency::lognormal_ms(2.0, 0.4).with_spikes(0.01, 8.0);
        let json = serde_json::to_string(&l).unwrap();
        let back: Latency = serde_json::from_str(&json).unwrap();
        assert!((back.mean_ms() - l.mean_ms()).abs() < 1e-12);
    }
}

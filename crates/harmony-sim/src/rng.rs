//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component of the simulation (network latency, key
//! selection, workload mix, ...) draws from its own named stream derived from
//! a single experiment seed. Adding a new consumer of randomness therefore
//! never perturbs the draws seen by existing components, which keeps
//! regenerated figures stable as the code evolves.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives per-component RNG streams from one experiment seed.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given experiment seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed this factory was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a deterministic RNG for the component identified by `label`.
    ///
    /// The same `(seed, label)` pair always yields the same stream; different
    /// labels yield statistically independent streams.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, fnv1a(label.as_bytes())))
    }

    /// Returns a deterministic RNG for the component identified by `label`
    /// and an index (e.g. one stream per client session).
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix(mix(self.seed, fnv1a(label.as_bytes())), index))
    }
}

/// 64-bit FNV-1a hash; small, dependency-free and stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer used to combine seed material.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_and_label_reproduce() {
        let f = RngFactory::new(7);
        let a: Vec<u64> = {
            let mut r = f.stream("net");
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream("net");
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("net").gen();
        let b: u64 = f.stream("keys").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("net").gen();
        let b: u64 = RngFactory::new(2).stream("net").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(99);
        let a: u64 = f.stream_indexed("client", 0).gen();
        let b: u64 = f.stream_indexed("client", 1).gen();
        assert_ne!(a, b);
        let again: u64 = f.stream_indexed("client", 0).gen();
        assert_eq!(a, again);
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn mix_is_not_identity_and_spreads_bits() {
        assert_ne!(mix(1, 0), 0);
        assert_ne!(mix(0, 1), 0);
        assert_ne!(mix(1, 0), mix(0, 1));
    }
}

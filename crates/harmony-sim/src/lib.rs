//! # harmony-sim
//!
//! Deterministic discrete-event simulation (DES) substrate used by the Harmony
//! reproduction to stand in for the paper's physical testbeds (Grid'5000 and
//! Amazon EC2).
//!
//! The crate provides:
//!
//! * a virtual clock and time type ([`SimTime`], [`clock`]),
//! * a time-ordered event queue with deterministic FIFO tie-breaking
//!   ([`event::EventQueue`]),
//! * a small simulation driver bundling clock, queue and RNG
//!   ([`engine::Simulation`]),
//! * seeded, splittable random-number streams ([`rng`]),
//! * pluggable event-delivery contexts and timers-as-resources
//!   ([`context::EventCtx`], [`context::TimerTable`]) — the seam that lets
//!   the same protocol core run under the simulation driver *and* under the
//!   `harmony-check` schedule explorer,
//! * parametric network latency models ([`latency::Latency`]) including the
//!   heavy-tailed, spiky behaviour the paper observes on EC2 (Figure 4b),
//! * a datacenter / rack / node topology and pairwise latency derivation
//!   ([`topology`]),
//! * ready-made cluster profiles reproducing the paper's two experimental
//!   platforms ([`profiles::grid5000`], [`profiles::ec2`]).
//!
//! Everything is deterministic given a seed, so experiments that regenerate
//! the paper's figures are exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use harmony_sim::{SimTime, engine::Simulation, latency::Latency};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim: Simulation<Ev> = Simulation::new(42);
//! let lat = Latency::constant_ms(1.5);
//! let delay = lat.sample(sim.rng());
//! sim.schedule_in(delay, Ev::Ping(7));
//! let (t, ev) = sim.next().unwrap();
//! assert_eq!(t, SimTime::from_millis_f64(1.5));
//! assert_eq!(ev, Ev::Ping(7));
//! ```

pub mod barrier;
pub mod clock;
pub mod context;
pub mod engine;
pub mod event;
pub mod latency;
pub mod profiles;
pub mod rng;
pub mod service;
pub mod topology;

pub use clock::SimTime;
pub use context::{EventCtx, TimerId, TimerTable};
pub use engine::Simulation;
pub use event::EventQueue;
pub use latency::Latency;
pub use service::ServiceModel;
pub use topology::{NodeId, Topology};

//! Simulation driver: clock + event queue + RNG factory in one handle.
//!
//! The driver is intentionally minimal: higher layers (the store, the workload
//! runner) own their state and define their own event enums; [`Simulation`]
//! only guarantees a monotonic clock and deterministic event delivery order.

use crate::clock::{Clock, SimTime};
use crate::event::EventQueue;
use crate::rng::RngFactory;
use rand::rngs::StdRng;

/// A discrete-event simulation instance parameterised over the event type.
#[derive(Debug)]
pub struct Simulation<E> {
    clock: Clock,
    queue: EventQueue<E>,
    factory: RngFactory,
    rng: StdRng,
    processed: u64,
}

impl<E> Simulation<E> {
    /// Creates a simulation seeded with `seed`. The default RNG stream is
    /// labelled `"sim"`; additional independent streams can be derived via
    /// [`Simulation::rng_factory`].
    pub fn new(seed: u64) -> Self {
        let factory = RngFactory::new(seed);
        let rng = factory.stream("sim");
        Simulation {
            clock: Clock::new(),
            queue: EventQueue::new(),
            factory,
            rng,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Schedules an event at an absolute virtual time. Times in the past are
    /// clamped to "now" so causality is never violated.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let t = time.max(self.clock.now());
        self.queue.schedule_at(t, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        let t = self.clock.now().saturating_add(delay);
        self.queue.schedule_at(t, event);
    }

    /// Pops the next event, advancing the clock to its delivery time.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        self.clock.advance_to(t);
        self.processed += 1;
        Some((t, ev))
    }

    /// The delivery time of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// True if there is nothing left to process.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// The default RNG stream for ad-hoc draws.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The factory from which components derive their own deterministic streams.
    pub fn rng_factory(&self) -> RngFactory {
        self.factory
    }

    /// Drains and processes events through `handler` until the queue is empty
    /// or `limit` events have been processed. Returns the number processed.
    pub fn run<F>(&mut self, limit: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let mut n = 0;
        while n < limit {
            match self.next() {
                Some((t, ev)) => {
                    handler(self, t, ev);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_follows_events() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        sim.schedule_in(SimTime::from_millis(10), Ev::Tick(1));
        sim.schedule_in(SimTime::from_millis(5), Ev::Tick(2));
        assert_eq!(sim.now(), SimTime::ZERO);
        let (t, ev) = sim.next().unwrap();
        assert_eq!(t, SimTime::from_millis(5));
        assert_eq!(ev, Ev::Tick(2));
        assert_eq!(sim.now(), SimTime::from_millis(5));
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, SimTime::from_millis(10));
        assert!(sim.is_idle());
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        sim.schedule_in(SimTime::from_millis(10), Ev::Tick(1));
        sim.next().unwrap();
        sim.schedule_at(SimTime::from_millis(1), Ev::Tick(2));
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, SimTime::from_millis(10));
    }

    #[test]
    fn run_with_limit() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        for i in 0..10 {
            sim.schedule_in(SimTime::from_millis(i), Ev::Tick(i as u32));
        }
        let mut seen = Vec::new();
        let n = sim.run(4, |_, _, ev| {
            let Ev::Tick(i) = ev;
            seen.push(i);
        });
        assert_eq!(n, 4);
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(sim.pending(), 6);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        sim.schedule_in(SimTime::from_millis(1), Ev::Tick(0));
        let mut count = 0;
        sim.run(u64::MAX, |sim, _, ev| {
            let Ev::Tick(i) = ev;
            count += 1;
            if i < 5 {
                sim.schedule_in(SimTime::from_millis(1), Ev::Tick(i + 1));
            }
        });
        assert_eq!(count, 6);
        assert_eq!(sim.now(), SimTime::from_millis(6));
    }

    #[test]
    fn same_seed_same_rng_sequence() {
        use rand::Rng;
        let mut a: Simulation<Ev> = Simulation::new(7);
        let mut b: Simulation<Ev> = Simulation::new(7);
        let xa: u64 = a.rng().gen();
        let xb: u64 = b.rng().gen();
        assert_eq!(xa, xb);
    }
}

//! Deterministic cross-shard exchange for the multi-core sharded runtime.
//!
//! Each shard runs its own discrete-event loop on its own thread; the only
//! cross-shard information flow is a report/directive exchange at every
//! monitoring tick. [`ShardBarrier`] packages that exchange over crossbeam
//! channels so it is (a) lock-free on the shard's op path — a shard touches
//! the channels only at tick boundaries — and (b) *deterministic*: the
//! coordinator always collects reports in shard-index order and every worker
//! blocks until its directive arrives, so thread scheduling can reorder
//! nothing observable. A shard's behaviour is then a pure function of its
//! seed and the directive sequence, and the directive sequence is a pure
//! function of the (ordered) report sequences — run-to-run identical stats
//! by construction.
//!
//! The protocol also handles ragged shutdown: a shard that finishes its
//! workload mid-run sends one final report and drops out; the coordinator
//! keeps collecting from the remaining shards and stops once all are done.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Coordinator side: collects one report per active worker (in shard-index
/// order) and answers each with a directive.
pub struct ShardBarrier<R, D> {
    report_rx: Vec<Receiver<R>>,
    directive_tx: Vec<Sender<D>>,
    active: Vec<bool>,
}

/// Worker side: one shard's handle for the per-tick exchange.
pub struct ShardWorker<R, D> {
    index: usize,
    report_tx: Sender<R>,
    directive_rx: Receiver<D>,
}

impl<R, D> ShardBarrier<R, D> {
    /// A barrier over `shards` workers. Returns the coordinator handle plus
    /// one worker handle per shard, in shard-index order.
    pub fn new(shards: usize) -> (Self, Vec<ShardWorker<R, D>>) {
        assert!(shards > 0, "a barrier needs at least one shard");
        let mut report_rx = Vec::with_capacity(shards);
        let mut directive_tx = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for index in 0..shards {
            let (r_tx, r_rx) = unbounded();
            let (d_tx, d_rx) = unbounded();
            report_rx.push(r_rx);
            directive_tx.push(d_tx);
            workers.push(ShardWorker {
                index,
                report_tx: r_tx,
                directive_rx: d_rx,
            });
        }
        (
            ShardBarrier {
                report_rx,
                directive_tx,
                active: vec![true; shards],
            },
            workers,
        )
    }

    /// Number of workers that have not yet hung up.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Collects one report from every still-active worker, **in shard-index
    /// order**. A worker that hung up (dropped its handle) is marked
    /// inactive and contributes `None` from then on. Blocks until every
    /// active worker has reported — this is the deterministic barrier.
    pub fn collect(&mut self) -> Vec<Option<R>> {
        let mut out = Vec::with_capacity(self.report_rx.len());
        for (i, rx) in self.report_rx.iter().enumerate() {
            if !self.active[i] {
                out.push(None);
                continue;
            }
            match rx.recv() {
                Ok(report) => out.push(Some(report)),
                Err(_) => {
                    self.active[i] = false;
                    out.push(None);
                }
            }
        }
        out
    }

    /// Sends `directive(shard)` to every still-active worker. A send to a
    /// worker that hung up between collect and reply just deactivates it.
    pub fn broadcast_with(&mut self, mut directive: impl FnMut(usize) -> D) {
        for (i, tx) in self.directive_tx.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            if tx.send(directive(i)).is_err() {
                self.active[i] = false;
            }
        }
    }

    /// Marks a worker as done (it sent a final report and will not exchange
    /// again) so later rounds neither wait on it nor send to it.
    pub fn retire(&mut self, index: usize) {
        self.active[index] = false;
    }
}

impl<R, D> ShardWorker<R, D> {
    /// This worker's shard index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// One barrier round: publish `report`, block for the directive.
    /// Returns `None` if the coordinator went away (treat as shutdown).
    pub fn exchange(&self, report: R) -> Option<D> {
        self.report_tx.send(report).ok()?;
        self.directive_rx.recv().ok()
    }

    /// Publish a final report without waiting for an answer — the shard is
    /// done and the coordinator will retire it after merging this report.
    pub fn finish(&self, report: R) {
        let _ = self.report_tx.send(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn exchange_round_trips_in_shard_order() {
        let (mut barrier, workers) = ShardBarrier::<usize, usize>::new(3);
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| {
                thread::spawn(move || {
                    let d = w.exchange(w.index() * 10).expect("directive");
                    assert_eq!(d, w.index() * 10 + 1);
                })
            })
            .collect();
        let reports = barrier.collect();
        assert_eq!(
            reports,
            vec![Some(0), Some(10), Some(20)],
            "reports arrive in shard-index order regardless of thread timing"
        );
        barrier.broadcast_with(|i| i * 10 + 1);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn ragged_shutdown_retires_finished_workers() {
        let (mut barrier, mut workers) = ShardBarrier::<u32, u32>::new(2);
        let w1 = workers.pop().unwrap();
        let w0 = workers.pop().unwrap();
        // Worker 1 finishes immediately; worker 0 keeps exchanging.
        w1.finish(99);
        drop(w1);
        let t = thread::spawn(move || {
            assert_eq!(w0.exchange(7), Some(70));
        });
        let reports = barrier.collect();
        assert_eq!(reports, vec![Some(7), Some(99)]);
        barrier.retire(1);
        barrier.broadcast_with(|_| 70);
        assert_eq!(barrier.active_count(), 1);
        t.join().unwrap();
        // Next round: only worker 0 is waited on, and it hung up too.
        let reports = barrier.collect();
        assert_eq!(reports, vec![None, None]);
        assert_eq!(barrier.active_count(), 0);
    }
}

//! Pluggable event-delivery contexts and timers-as-resources.
//!
//! The protocol core of `harmony-store` is written against [`EventCtx`]
//! instead of a concrete [`Simulation`]: a state machine consumes a typed
//! event and *emits* follow-up events through the context, never touching a
//! clock or an event queue directly. That inversion is what makes the core
//! explorable — a model checker implements [`EventCtx`] with a plain pending
//! list and chooses delivery orders itself, while the production drivers keep
//! using [`Simulation`] through the blanket impl below (same code path,
//! byte-identical behaviour).
//!
//! [`TimerTable`] gives the same treatment to timeouts: a timer is an owned
//! resource (armed, superseded, cancelled), and a timer *firing event* only
//! takes effect if its id is still armed — so a cancelled or superseded timer
//! never fires even though its wake-up event may still sit in a queue.

use crate::clock::SimTime;
use crate::engine::Simulation;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The context a pure event-driven state machine runs against: a read-only
/// clock plus an `emit` sink for follow-up events. Implementations decide
/// what "emit" means — schedule on a discrete-event queue ([`Simulation`]),
/// append to an explorable pending list (the `harmony-check` checker), or
/// forward over a real network.
pub trait EventCtx<E> {
    /// Current virtual time.
    fn now(&self) -> SimTime;
    /// Emits a follow-up event to take effect `delay` after [`EventCtx::now`].
    /// The context owns delivery order; callers must not assume emitted
    /// events are observed in emission order.
    fn emit(&mut self, delay: SimTime, event: E);
}

/// Every simulation whose event type can absorb `E` is an event context for
/// `E`. This is what keeps the refactored protocol core byte-identical under
/// the existing runners: `emit` lowers to the exact `schedule_in(…, e.into())`
/// call the inline handlers used to make.
impl<E, F: From<E>> EventCtx<E> for Simulation<F> {
    fn now(&self) -> SimTime {
        Simulation::now(self)
    }

    fn emit(&mut self, delay: SimTime, event: E) {
        self.schedule_in(delay, event.into());
    }
}

/// Identifies one armed timer. Ids are never reused by a [`TimerTable`], so a
/// stale wake-up event carrying an old id is harmless: firing it finds
/// nothing armed and does nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimerId(pub u64);

/// Timers as owned resources. Arming hands out a fresh [`TimerId`]; the
/// wake-up event (scheduled by the caller through its [`EventCtx`]) carries
/// the id back, and [`TimerTable::fire`] returns the payload only if that id
/// is still armed. Cancelling or superseding removes the payload, so the
/// in-flight wake-up becomes a no-op — "cancelled timers never fire" without
/// needing the event queue to support removal.
#[derive(Debug, Clone, Default)]
pub struct TimerTable<T> {
    next: u64,
    armed: HashMap<u64, T>,
}

impl<T> TimerTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        TimerTable {
            next: 0,
            armed: HashMap::new(),
        }
    }

    /// Arms a timer, returning its id. The caller is responsible for emitting
    /// the wake-up event that will eventually [`TimerTable::fire`] this id.
    pub fn arm(&mut self, timer: T) -> TimerId {
        let id = self.next;
        self.next += 1;
        self.armed.insert(id, timer);
        TimerId(id)
    }

    /// Cancels an armed timer. Idempotent; firing a cancelled id later
    /// returns `None`.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.armed.remove(&id.0).is_some()
    }

    /// Replaces an armed timer with a new payload under a *fresh* id — the
    /// superseded id is cancelled, so a wake-up still in flight for it never
    /// fires. Returns the new id.
    pub fn supersede(&mut self, old: TimerId, timer: T) -> TimerId {
        self.cancel(old);
        self.arm(timer)
    }

    /// Consumes a wake-up: returns the payload if `id` is still armed (and
    /// disarms it), `None` if it was cancelled, superseded or already fired.
    pub fn fire(&mut self, id: TimerId) -> Option<T> {
        self.armed.remove(&id.0)
    }

    /// True if `id` is currently armed.
    pub fn is_armed(&self, id: TimerId) -> bool {
        self.armed.contains_key(&id.0)
    }

    /// Number of armed timers.
    pub fn armed_count(&self) -> usize {
        self.armed.len()
    }

    /// The armed timers in ascending id order — a deterministic view for
    /// state fingerprinting (the backing map has no stable iteration order).
    pub fn armed_entries(&self) -> Vec<(TimerId, &T)> {
        let mut entries: Vec<_> = self.armed.iter().map(|(k, t)| (TimerId(*k), t)).collect();
        entries.sort_by_key(|(id, _)| *id);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_is_an_event_ctx() {
        #[derive(Debug, PartialEq)]
        struct Wrapped(u32);
        impl From<u32> for Wrapped {
            fn from(v: u32) -> Self {
                Wrapped(v)
            }
        }
        let mut sim: Simulation<Wrapped> = Simulation::new(1);
        EventCtx::<u32>::emit(&mut sim, SimTime::from_millis(3), 7);
        assert_eq!(EventCtx::<u32>::now(&sim), SimTime::ZERO);
        let (t, ev) = sim.next().unwrap();
        assert_eq!(t, SimTime::from_millis(3));
        assert_eq!(ev, Wrapped(7));
    }

    #[test]
    fn armed_timers_fire_exactly_once() {
        let mut table: TimerTable<&'static str> = TimerTable::new();
        let id = table.arm("reaper");
        assert!(table.is_armed(id));
        assert_eq!(table.fire(id), Some("reaper"));
        assert_eq!(table.fire(id), None, "a timer fires at most once");
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut table: TimerTable<u8> = TimerTable::new();
        let id = table.arm(1);
        assert!(table.cancel(id));
        assert!(!table.cancel(id), "cancel is idempotent");
        assert_eq!(table.fire(id), None);
    }

    #[test]
    fn superseded_timers_never_fire_but_their_successor_does() {
        let mut table: TimerTable<u8> = TimerTable::new();
        let old = table.arm(1);
        let new = table.supersede(old, 2);
        assert_ne!(old, new, "supersede hands out a fresh id");
        assert_eq!(table.fire(old), None, "the superseded wake-up is inert");
        assert_eq!(table.fire(new), Some(2));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut table: TimerTable<u8> = TimerTable::new();
        let a = table.arm(1);
        table.cancel(a);
        let b = table.arm(2);
        assert_ne!(a, b);
        assert_eq!(table.armed_count(), 1);
    }
}

//! Time-ordered event queue.
//!
//! The queue is a binary heap keyed by `(time, sequence)`. The sequence number
//! is assigned at insertion, so events scheduled for the same instant are
//! delivered in the order they were scheduled (FIFO). This tie-break rule is
//! what makes the whole simulation deterministic: without it, equal-time
//! events would pop in arbitrary heap order.

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with its scheduled delivery time and insertion sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Monotonic insertion counter used to break ties deterministically.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: the BinaryHeap is a max-heap, we want the earliest
        // (time, seq) pair on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The delivery time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), "b");
        q.schedule_at(SimTime::from_millis(1), "a");
        q.schedule_at(SimTime::from_millis(9), "c");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(3);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(SimTime::from_secs(2), 1);
        q.schedule_at(SimTime::from_secs(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 10);
        q.schedule_at(SimTime::from_millis(2), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 2)));
        q.schedule_at(SimTime::from_millis(4), 4);
        q.schedule_at(SimTime::from_millis(3), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), 3)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(4), 4)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 10)));
    }
}

//! Virtual time.
//!
//! Simulated time is kept as an integer number of nanoseconds since the start
//! of the simulation. Integer ticks keep event ordering exact and make the
//! simulation bit-for-bit reproducible across platforms, which floating-point
//! timestamps would not.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, measured in nanoseconds from simulation start.
///
/// `SimTime` is also used to represent durations (the type is a plain
/// monotonic offset); [`SimTime::ZERO`] is the simulation origin.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional milliseconds (negative inputs clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 || !ms.is_finite() {
            return SimTime::ZERO;
        }
        SimTime((ms * 1e6).round() as u64)
    }

    /// Creates a time from fractional seconds (negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Difference `self - earlier`, or `None` if `earlier` is later than `self`.
    pub fn checked_sub(self, earlier: SimTime) -> Option<SimTime> {
        self.0.checked_sub(earlier.0).map(SimTime)
    }

    /// Converts to a wall-clock [`Duration`] (used by the real-threaded live cluster).
    pub fn to_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Creates a `SimTime` from a wall-clock [`Duration`].
    pub fn from_duration(d: Duration) -> Self {
        SimTime(d.as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Scales this duration by a non-negative factor, rounding to nanoseconds.
    pub fn scale(self, factor: f64) -> SimTime {
        if factor <= 0.0 || !factor.is_finite() {
            return SimTime::ZERO;
        }
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// True if this is the simulation origin / a zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock never goes backwards: [`Clock::advance_to`] with an earlier time
/// is a no-op, which protects the simulation from misordered event handling.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock starting at the origin.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `t` (no-op if `t` is in the past).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Advances the clock by `delta`.
    pub fn advance_by(&mut self, delta: SimTime) {
        self.now = self.now.saturating_add(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_millis_f64(1.5).as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((SimTime::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_float_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_millis_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_millis(6)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
    }

    #[test]
    fn scaling() {
        let a = SimTime::from_millis(10);
        assert_eq!(a.scale(0.5), SimTime::from_millis(5));
        assert_eq!(a.scale(-3.0), SimTime::ZERO);
        assert_eq!(a.scale(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_millis(5));
        c.advance_to(SimTime::from_millis(3));
        assert_eq!(c.now(), SimTime::from_millis(5));
        c.advance_by(SimTime::from_millis(2));
        assert_eq!(c.now(), SimTime::from_millis(7));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn duration_round_trip() {
        let t = SimTime::from_millis(1234);
        assert_eq!(SimTime::from_duration(t.to_duration()), t);
    }
}

//! Per-node service-time models for the replica processing stages.
//!
//! The paper's saturation behaviour (Figures 5(c)/(d)) is driven by the write
//! stage of individual replicas running out of service capacity. Reproducing
//! it in-sim needs more than a single cluster-wide mean: each node has its own
//! mean service time (heterogeneous hardware, noisy neighbours on EC2) and
//! the service-time *distribution* shape controls how bursty the queueing is
//! (the M/G/1 wait scales with `1 + c²`, the squared coefficient of
//! variation).
//!
//! [`ServiceModel`] captures both: an Erlang-`k` distribution per node —
//! `k = 1` is the exponential service the store always modelled, larger `k`
//! approaches deterministic service (`c² = 1/k`) — with optional per-node
//! mean multipliers. Sampling draws from the caller's RNG only, so the same
//! seed reproduces the same service times event for event.

use crate::clock::SimTime;
use crate::topology::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-node Erlang service-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Baseline mean service time in milliseconds.
    pub mean_ms: f64,
    /// Erlang shape `k ≥ 1`: the sample is the sum of `k` exponentials with
    /// mean `mean/k`, so the squared coefficient of variation is `1/k`.
    /// `k = 1` is exponential service.
    pub shape: u32,
    /// Per-node multiplicative factors on the mean; nodes beyond the vector's
    /// length (or an empty vector) use factor 1.0. A factor above 1 models a
    /// straggler node, below 1 a faster one.
    pub node_factors: Vec<f64>,
}

impl ServiceModel {
    /// Exponential service with the given mean (the store's historical
    /// behaviour).
    pub fn exponential_ms(mean_ms: f64) -> Self {
        ServiceModel {
            mean_ms: mean_ms.max(0.0),
            shape: 1,
            node_factors: Vec::new(),
        }
    }

    /// Erlang-`k` service: mean `mean_ms`, squared coefficient of variation
    /// `1/k`. A shape of zero is clamped to 1.
    pub fn erlang_ms(mean_ms: f64, shape: u32) -> Self {
        ServiceModel {
            mean_ms: mean_ms.max(0.0),
            shape: shape.max(1),
            node_factors: Vec::new(),
        }
    }

    /// Attaches per-node mean multipliers (negative factors are clamped to 0).
    pub fn with_node_factors(mut self, factors: Vec<f64>) -> Self {
        self.node_factors = factors.into_iter().map(|f| f.max(0.0)).collect();
        self
    }

    /// The squared coefficient of variation `c² = 1/k` of the distribution.
    pub fn scv(&self) -> f64 {
        1.0 / self.shape.max(1) as f64
    }

    /// The mean service time for a specific node (ms), after its factor.
    pub fn mean_ms_for(&self, node: NodeId) -> f64 {
        let factor = self
            .node_factors
            .get(node.index())
            .copied()
            .unwrap_or(1.0)
            .max(0.0);
        self.mean_ms * factor
    }

    /// The mean service time averaged over `nodes` nodes (ms).
    pub fn mean_ms_over(&self, nodes: usize) -> f64 {
        if nodes == 0 {
            return self.mean_ms;
        }
        (0..nodes)
            .map(|i| self.mean_ms_for(NodeId(i as u32)))
            .sum::<f64>()
            / nodes as f64
    }

    /// Samples one service time for `node`. Draws exactly `shape` uniforms
    /// from `rng` (zero when the node's mean is zero would still draw, so the
    /// event trace stays aligned across configurations with equal shapes).
    pub fn sample<R: Rng>(&self, node: NodeId, rng: &mut R) -> SimTime {
        let shape = self.shape.max(1);
        let mean = self.mean_ms_for(node);
        let stage_mean = mean / shape as f64;
        let mut total_ms = 0.0;
        for _ in 0..shape {
            let u: f64 = rng.gen();
            total_ms += -(1.0 - u).ln() * stage_mean;
        }
        if total_ms <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime::from_millis_f64(total_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_model_matches_legacy_parameters() {
        let m = ServiceModel::exponential_ms(0.4);
        assert_eq!(m.shape, 1);
        assert_eq!(m.scv(), 1.0);
        assert_eq!(m.mean_ms_for(NodeId(3)), 0.4);
        assert!((m.mean_ms_over(10) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn erlang_shape_reduces_variability() {
        assert_eq!(ServiceModel::erlang_ms(1.0, 4).scv(), 0.25);
        assert_eq!(ServiceModel::erlang_ms(1.0, 0).shape, 1);
    }

    #[test]
    fn node_factors_scale_per_node_means() {
        let m = ServiceModel::exponential_ms(1.0).with_node_factors(vec![1.0, 2.0, -3.0]);
        assert_eq!(m.mean_ms_for(NodeId(0)), 1.0);
        assert_eq!(m.mean_ms_for(NodeId(1)), 2.0);
        assert_eq!(m.mean_ms_for(NodeId(2)), 0.0); // clamped
        assert_eq!(m.mean_ms_for(NodeId(9)), 1.0); // beyond the vector
        assert!((m.mean_ms_over(2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = ServiceModel::erlang_ms(0.5, 3).with_node_factors(vec![1.0, 1.5]);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for node in [NodeId(0), NodeId(1), NodeId(0)] {
            assert_eq!(m.sample(node, &mut a), m.sample(node, &mut b));
        }
    }

    #[test]
    fn sample_means_converge() {
        let m = ServiceModel::erlang_ms(2.0, 4).with_node_factors(vec![1.0, 0.5]);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean_of = |node: NodeId, rng: &mut StdRng| {
            (0..n)
                .map(|_| m.sample(node, rng).as_millis_f64())
                .sum::<f64>()
                / n as f64
        };
        let m0 = mean_of(NodeId(0), &mut rng);
        let m1 = mean_of(NodeId(1), &mut rng);
        assert!((m0 - 2.0).abs() < 0.05, "m0={m0}");
        assert!((m1 - 1.0).abs() < 0.05, "m1={m1}");
    }

    #[test]
    fn erlang_concentrates_around_the_mean() {
        // Larger shape ⇒ smaller sample variance at the same mean.
        let mut rng = StdRng::seed_from_u64(7);
        let var_of = |shape: u32, rng: &mut StdRng| {
            let m = ServiceModel::erlang_ms(1.0, shape);
            let samples: Vec<f64> = (0..20_000)
                .map(|_| m.sample(NodeId(0), rng).as_millis_f64())
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64
        };
        let v1 = var_of(1, &mut rng);
        let v8 = var_of(8, &mut rng);
        assert!(v8 < v1 / 4.0, "v1={v1} v8={v8}");
    }

    #[test]
    fn zero_mean_yields_zero_service() {
        let m = ServiceModel::exponential_ms(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample(NodeId(0), &mut rng), SimTime::ZERO);
    }
}

//! Cluster topology: datacenters, racks, nodes, and pairwise latency classes.
//!
//! The paper deploys Cassandra with `OldNetworkTopologyStrategy`, which places
//! replicas across racks and datacenters (§V.C). Replica placement and update
//! propagation time therefore depend on *where* nodes sit relative to each
//! other. [`Topology`] describes that layout and [`NetworkModel`] assigns a
//! latency model to each pair of nodes based on their relative location.

use crate::clock::SimTime;
use crate::latency::Latency;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a storage node within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a usize, for indexing per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The physical location of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Datacenter index.
    pub dc: u16,
    /// Rack index within the datacenter.
    pub rack: u16,
}

/// Relative distance class between two nodes, used to pick a latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proximity {
    /// The same physical node (loopback).
    SameNode,
    /// Different nodes in the same rack.
    SameRack,
    /// Different racks within the same datacenter.
    SameDc,
    /// Different datacenters.
    CrossDc,
}

/// The layout of a storage cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    locations: Vec<Location>,
}

impl Topology {
    /// Builds a topology from an explicit list of node locations. Node `i`
    /// gets [`NodeId`] `i`.
    pub fn new(locations: Vec<Location>) -> Self {
        Topology { locations }
    }

    /// Builds a single-datacenter topology with `racks` racks of
    /// `nodes_per_rack` nodes each.
    pub fn single_dc(racks: u16, nodes_per_rack: u16) -> Self {
        let mut locations = Vec::new();
        for rack in 0..racks {
            for _ in 0..nodes_per_rack {
                locations.push(Location { dc: 0, rack });
            }
        }
        Topology { locations }
    }

    /// Builds a multi-datacenter topology: `dcs` datacenters, each with
    /// `racks_per_dc` racks of `nodes_per_rack` nodes.
    pub fn multi_dc(dcs: u16, racks_per_dc: u16, nodes_per_rack: u16) -> Self {
        let mut locations = Vec::new();
        for dc in 0..dcs {
            for rack in 0..racks_per_dc {
                for _ in 0..nodes_per_rack {
                    locations.push(Location { dc, rack });
                }
            }
        }
        Topology { locations }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Appends a node at `location`, returning its [`NodeId`]. Existing ids
    /// are stable — elastic membership only ever grows the id space (a
    /// decommissioned node keeps its slot), so per-node vectors indexed by
    /// `NodeId` stay valid across joins.
    pub fn push(&mut self, location: Location) -> NodeId {
        let id = NodeId(self.locations.len() as u32);
        self.locations.push(location);
        id
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// All node identifiers, in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.locations.len() as u32).map(NodeId)
    }

    /// The location of a node.
    pub fn location(&self, node: NodeId) -> Location {
        self.locations[node.index()]
    }

    /// The proximity class between two nodes.
    pub fn proximity(&self, a: NodeId, b: NodeId) -> Proximity {
        if a == b {
            return Proximity::SameNode;
        }
        let la = self.location(a);
        let lb = self.location(b);
        if la.dc != lb.dc {
            Proximity::CrossDc
        } else if la.rack != lb.rack {
            Proximity::SameDc
        } else {
            Proximity::SameRack
        }
    }

    /// Distinct datacenter indices present in the topology.
    pub fn datacenters(&self) -> Vec<u16> {
        let mut dcs: Vec<u16> = self.locations.iter().map(|l| l.dc).collect();
        dcs.sort_unstable();
        dcs.dedup();
        dcs
    }

    /// Distinct (dc, rack) pairs present in the topology.
    pub fn racks(&self) -> Vec<(u16, u16)> {
        let mut racks: Vec<(u16, u16)> = self.locations.iter().map(|l| (l.dc, l.rack)).collect();
        racks.sort_unstable();
        racks.dedup();
        racks
    }
}

/// Latency models per proximity class, forming the cluster network model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Loopback latency (coordinator reading its own replica).
    pub same_node: Latency,
    /// Latency between nodes in the same rack.
    pub same_rack: Latency,
    /// Latency between racks in the same datacenter.
    pub same_dc: Latency,
    /// Latency between datacenters.
    pub cross_dc: Latency,
}

impl NetworkModel {
    /// A uniform network where every pair sees the same latency model
    /// (loopback is 5% of it).
    pub fn uniform(model: Latency) -> Self {
        NetworkModel {
            same_node: model.clone().scaled(0.05),
            same_rack: model.clone(),
            same_dc: model.clone(),
            cross_dc: model,
        }
    }

    /// The latency model for a proximity class.
    pub fn model_for(&self, prox: Proximity) -> &Latency {
        match prox {
            Proximity::SameNode => &self.same_node,
            Proximity::SameRack => &self.same_rack,
            Proximity::SameDc => &self.same_dc,
            Proximity::CrossDc => &self.cross_dc,
        }
    }

    /// Samples a one-way latency between nodes `a` and `b` of `topology`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        topology: &Topology,
        a: NodeId,
        b: NodeId,
        rng: &mut R,
    ) -> SimTime {
        self.model_for(topology.proximity(a, b)).sample(rng)
    }

    /// The mean one-way latency between nodes `a` and `b` in milliseconds.
    pub fn mean_ms(&self, topology: &Topology, a: NodeId, b: NodeId) -> f64 {
        self.model_for(topology.proximity(a, b)).mean_ms()
    }

    /// The mean inter-node latency averaged over all ordered pairs of distinct
    /// nodes, in milliseconds. This is the quantity the paper's monitoring
    /// module approximates with `ping`.
    pub fn mean_pairwise_ms(&self, topology: &Topology) -> f64 {
        let n = topology.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for a in topology.nodes() {
            for b in topology.nodes() {
                if a != b {
                    total += self.mean_ms(topology, a, b);
                    count += 1;
                }
            }
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_dc_layout() {
        let t = Topology::single_dc(2, 3);
        assert_eq!(t.len(), 6);
        assert_eq!(t.datacenters(), vec![0]);
        assert_eq!(t.racks(), vec![(0, 0), (0, 1)]);
        assert_eq!(t.location(NodeId(0)).rack, 0);
        assert_eq!(t.location(NodeId(5)).rack, 1);
    }

    #[test]
    fn multi_dc_layout() {
        let t = Topology::multi_dc(2, 2, 2);
        assert_eq!(t.len(), 8);
        assert_eq!(t.datacenters(), vec![0, 1]);
        assert_eq!(t.racks().len(), 4);
    }

    #[test]
    fn proximity_classes() {
        let t = Topology::multi_dc(2, 2, 2);
        // nodes 0,1 same rack; 0,2 same dc; 0,4 cross dc
        assert_eq!(t.proximity(NodeId(0), NodeId(0)), Proximity::SameNode);
        assert_eq!(t.proximity(NodeId(0), NodeId(1)), Proximity::SameRack);
        assert_eq!(t.proximity(NodeId(0), NodeId(2)), Proximity::SameDc);
        assert_eq!(t.proximity(NodeId(0), NodeId(4)), Proximity::CrossDc);
    }

    #[test]
    fn network_model_selects_by_proximity() {
        let t = Topology::multi_dc(2, 2, 2);
        let net = NetworkModel {
            same_node: Latency::constant_ms(0.01),
            same_rack: Latency::constant_ms(0.2),
            same_dc: Latency::constant_ms(0.5),
            cross_dc: Latency::constant_ms(5.0),
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            net.sample(&t, NodeId(0), NodeId(1), &mut rng),
            SimTime::from_millis_f64(0.2)
        );
        assert_eq!(net.mean_ms(&t, NodeId(0), NodeId(4)), 5.0);
    }

    #[test]
    fn uniform_network_is_uniform() {
        let t = Topology::single_dc(2, 2);
        let net = NetworkModel::uniform(Latency::constant_ms(1.0));
        assert_eq!(net.mean_ms(&t, NodeId(0), NodeId(3)), 1.0);
        assert!((net.mean_pairwise_ms(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_pairwise_empty_and_singleton() {
        let net = NetworkModel::uniform(Latency::constant_ms(1.0));
        assert_eq!(net.mean_pairwise_ms(&Topology::new(vec![])), 0.0);
        assert_eq!(
            net.mean_pairwise_ms(&Topology::new(vec![Location { dc: 0, rack: 0 }])),
            0.0
        );
    }

    #[test]
    fn node_ids_enumerate_in_order() {
        let t = Topology::single_dc(1, 4);
        let ids: Vec<u32> = t.nodes().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}

//! Replica placement strategies.
//!
//! The paper configures Cassandra with `OldNetworkTopologyStrategy`, which
//! "ensures that data is replicated over all the clusters and racks" (§V.C).
//! We provide the two classic strategies:
//!
//! * [`ReplicationStrategy::Simple`] — the first `RF` distinct nodes walking
//!   the ring clockwise, ignoring topology;
//! * [`ReplicationStrategy::NetworkTopology`] — walk the ring but prefer
//!   nodes on racks (and datacenters) not yet holding a replica, falling back
//!   to already-used racks only when every rack is covered. This reproduces
//!   the rack/DC spreading of the paper's configuration.

use crate::hashring::HashRing;
use crate::keys::KeyId;
use harmony_sim::topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Upper bound on the replication factor the inline replica-set cache
/// supports. The paper's deployments use RF = 5; the bound leaves headroom
/// without bloating the per-key cache entry (8 × 4 bytes + length).
pub const MAX_RF: usize = 8;

/// A replica set stored inline (no heap allocation): up to [`MAX_RF`] node
/// ids plus a length. This is what the placement cache hands out on the hot
/// path instead of a freshly allocated `Vec<NodeId>` per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaSet {
    nodes: [NodeId; MAX_RF],
    len: u8,
}

impl ReplicaSet {
    /// An empty replica set (also the cache's "not yet computed" sentinel).
    pub const EMPTY: ReplicaSet = ReplicaSet {
        nodes: [NodeId(0); MAX_RF],
        len: 0,
    };

    /// Builds a set from a freshly computed replica list.
    ///
    /// # Panics
    /// Panics if the list exceeds [`MAX_RF`] nodes (prevented upstream by
    /// `StoreConfig::validate`).
    pub fn from_slice(nodes: &[NodeId]) -> Self {
        assert!(
            nodes.len() <= MAX_RF,
            "replica set of {} exceeds MAX_RF = {MAX_RF}",
            nodes.len()
        );
        let mut set = ReplicaSet::EMPTY;
        set.nodes[..nodes.len()].copy_from_slice(nodes);
        set.len = nodes.len() as u8;
        set
    }

    /// The replicas, primary first.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes[..self.len as usize]
    }

    /// Number of replicas.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the set holds no replicas.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one node.
    ///
    /// # Panics
    /// Panics (debug) past [`MAX_RF`] nodes.
    #[inline]
    pub fn push(&mut self, node: NodeId) {
        debug_assert!((self.len as usize) < MAX_RF, "replica set full");
        self.nodes[self.len as usize] = node;
        self.len += 1;
    }
}

/// A memoised `replicas_for` table indexed by [`KeyId`]: steady-state
/// placement lookups are one array index instead of a token-ring walk plus a
/// `Vec` allocation. Entries are computed lazily on first use and the whole
/// table is dropped by [`PlacementCache::invalidate`] whenever the ring or
/// the topology changes (node joins/departures, vnode reshuffles).
#[derive(Debug, Default, Clone)]
pub struct PlacementCache {
    sets: Vec<ReplicaSet>,
    /// Bumped on every invalidation; lets callers cheaply detect that cached
    /// data from a previous topology must not be reused.
    generation: u64,
}

impl PlacementCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlacementCache::default()
    }

    /// How many topology changes this cache has survived.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of invalidations performed — the churn property tests assert
    /// this increments exactly once per topology change. (Alias of
    /// [`PlacementCache::generation`], named for what it counts.)
    pub fn invalidations(&self) -> u64 {
        self.generation
    }

    /// Number of keys with a cached (computed) replica set.
    pub fn cached_len(&self) -> usize {
        self.sets.iter().filter(|s| !s.is_empty()).count()
    }

    /// Drops every cached entry. Must be called whenever the ring, the
    /// topology or the placement strategy changes.
    pub fn invalidate(&mut self) {
        self.sets.clear();
        self.generation += 1;
    }

    /// The cached replica set for `key`, computing (and caching) it from the
    /// ring walk on first use. A cluster-size or RF of zero is the caller's
    /// bug; an empty computed set is cached as-is and recomputed next time,
    /// which cannot happen for a non-empty topology.
    #[inline]
    pub fn replicas_for(
        &mut self,
        key: KeyId,
        name: &str,
        strategy: ReplicationStrategy,
        ring: &HashRing,
        topology: &Topology,
        rf: usize,
    ) -> ReplicaSet {
        let index = key.index();
        if index >= self.sets.len() {
            self.sets.resize(index + 1, ReplicaSet::EMPTY);
        }
        let cached = self.sets[index];
        if !cached.is_empty() {
            return cached;
        }
        let fresh = ReplicaSet::from_slice(&strategy.replicas_for(ring, topology, name, rf));
        self.sets[index] = fresh;
        fresh
    }
}

/// How the store maps a key to its `RF` replica nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationStrategy {
    /// Ring order, topology-oblivious.
    Simple,
    /// Ring order but spreading replicas across racks and datacenters first
    /// (the paper's `OldNetworkTopologyStrategy` behaviour).
    NetworkTopology,
}

impl ReplicationStrategy {
    /// Computes the replica set (in preference order, primary first) for a key.
    ///
    /// The returned list has `min(rf, cluster size)` distinct nodes.
    pub fn replicas_for(
        &self,
        ring: &HashRing,
        topology: &Topology,
        key: &str,
        rf: usize,
    ) -> Vec<NodeId> {
        let rf = rf.min(topology.len()).max(1);
        match self {
            ReplicationStrategy::Simple => ring.preference_list(key, rf),
            ReplicationStrategy::NetworkTopology => {
                let mut chosen: Vec<NodeId> = Vec::with_capacity(rf);
                let mut used_racks: HashSet<(u16, u16)> = HashSet::new();
                let mut used_dcs: HashSet<u16> = HashSet::new();
                let candidates = ring.preference_list(key, topology.len());

                // Pass 1: nodes in datacenters not yet covered.
                for &node in &candidates {
                    if chosen.len() == rf {
                        break;
                    }
                    let loc = topology.location(node);
                    if !used_dcs.contains(&loc.dc) && !chosen.contains(&node) {
                        used_dcs.insert(loc.dc);
                        used_racks.insert((loc.dc, loc.rack));
                        chosen.push(node);
                    }
                }
                // Pass 2: nodes on racks not yet covered.
                for &node in &candidates {
                    if chosen.len() == rf {
                        break;
                    }
                    let loc = topology.location(node);
                    if !used_racks.contains(&(loc.dc, loc.rack)) && !chosen.contains(&node) {
                        used_racks.insert((loc.dc, loc.rack));
                        chosen.push(node);
                    }
                }
                // Pass 3: anything left in ring order.
                for &node in &candidates {
                    if chosen.len() == rf {
                        break;
                    }
                    if !chosen.contains(&node) {
                        chosen.push(node);
                    }
                }
                chosen
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn simple_matches_ring_preference_list() {
        let ring = HashRing::new(6, 16);
        let topo = Topology::single_dc(1, 6);
        for k in 0..50 {
            let key = format!("user{k}");
            assert_eq!(
                ReplicationStrategy::Simple.replicas_for(&ring, &topo, &key, 3),
                ring.preference_list(&key, 3)
            );
        }
    }

    #[test]
    fn replica_sets_have_requested_size_and_are_distinct() {
        let ring = HashRing::new(10, 16);
        let topo = Topology::single_dc(2, 5);
        for strategy in [
            ReplicationStrategy::Simple,
            ReplicationStrategy::NetworkTopology,
        ] {
            for k in 0..100 {
                let reps = strategy.replicas_for(&ring, &topo, &format!("u{k}"), 5);
                assert_eq!(reps.len(), 5);
                let set: HashSet<_> = reps.iter().collect();
                assert_eq!(set.len(), 5);
            }
        }
    }

    #[test]
    fn rf_larger_than_cluster_is_clamped() {
        let ring = HashRing::new(3, 8);
        let topo = Topology::single_dc(1, 3);
        let reps = ReplicationStrategy::NetworkTopology.replicas_for(&ring, &topo, "k", 5);
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn network_topology_spreads_over_racks() {
        // 4 racks of 5 nodes; RF=4 must touch all 4 racks.
        let ring = HashRing::new(20, 16);
        let topo = Topology::single_dc(4, 5);
        for k in 0..100 {
            let reps = ReplicationStrategy::NetworkTopology.replicas_for(
                &ring,
                &topo,
                &format!("u{k}"),
                4,
            );
            let racks: HashSet<_> = reps.iter().map(|n| topo.location(*n).rack).collect();
            assert_eq!(racks.len(), 4, "key u{k} replicas {reps:?}");
        }
    }

    #[test]
    fn network_topology_spreads_over_datacenters() {
        // 2 DCs x 2 racks x 5 nodes; RF=2 must use both DCs.
        let ring = HashRing::new(20, 16);
        let topo = Topology::multi_dc(2, 2, 5);
        for k in 0..100 {
            let reps = ReplicationStrategy::NetworkTopology.replicas_for(
                &ring,
                &topo,
                &format!("u{k}"),
                2,
            );
            let dcs: HashSet<_> = reps.iter().map(|n| topo.location(*n).dc).collect();
            assert_eq!(dcs.len(), 2);
        }
    }

    #[test]
    fn network_topology_falls_back_when_fewer_racks_than_rf() {
        // 2 racks of 10, RF=5: both racks covered, remaining replicas reuse racks.
        let ring = HashRing::new(20, 16);
        let topo = Topology::single_dc(2, 10);
        for k in 0..50 {
            let reps = ReplicationStrategy::NetworkTopology.replicas_for(
                &ring,
                &topo,
                &format!("u{k}"),
                5,
            );
            assert_eq!(reps.len(), 5);
            let racks: HashSet<_> = reps.iter().map(|n| topo.location(*n).rack).collect();
            assert_eq!(racks.len(), 2);
        }
    }

    #[test]
    fn primary_is_first_in_both_strategies() {
        let ring = HashRing::new(12, 16);
        let topo = Topology::single_dc(3, 4);
        for k in 0..50 {
            let key = format!("user{k}");
            let simple = ReplicationStrategy::Simple.replicas_for(&ring, &topo, &key, 3);
            assert_eq!(simple[0], ring.primary_for_key(&key));
            // NetworkTopology keeps the ring's primary as well (it is the
            // first candidate and no rack/DC is used yet).
            let nts = ReplicationStrategy::NetworkTopology.replicas_for(&ring, &topo, &key, 3);
            assert_eq!(nts[0], ring.primary_for_key(&key));
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let ring = HashRing::new(10, 16);
        let topo = Topology::single_dc(2, 5);
        let a = ReplicationStrategy::NetworkTopology.replicas_for(&ring, &topo, "user42", 5);
        let b = ReplicationStrategy::NetworkTopology.replicas_for(&ring, &topo, "user42", 5);
        assert_eq!(a, b);
    }
}

//! Per-node storage engine: commit log, memtable, SSTables and compaction.
//!
//! This mirrors the write path the paper describes for Cassandra (§II.B): a
//! write is appended to the commit log and applied to the in-memory memtable
//! before it is acknowledged; memtables are periodically flushed to immutable
//! sorted tables (SSTables); reads merge the memtable and all SSTables using
//! per-column last-write-wins reconciliation.

use crate::keys::KeyId;
use crate::types::{Cell, Mutation, Row, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One durable commit-log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitLogEntry {
    /// The (interned) row key written.
    pub key: KeyId,
    /// How many columns the mutation touched.
    pub columns: usize,
    /// The timestamp of the mutation.
    pub timestamp: Timestamp,
    /// Payload size in bytes.
    pub size_bytes: usize,
}

/// An append-only commit log (sizes and counts only; payloads live in the
/// memtable/SSTables, as replaying the log is not needed inside the simulator).
#[derive(Debug, Clone, Default)]
pub struct CommitLog {
    entries: Vec<CommitLogEntry>,
    bytes: usize,
}

impl CommitLog {
    /// An empty commit log.
    pub fn new() -> Self {
        CommitLog::default()
    }

    /// Appends a record.
    pub fn append(&mut self, entry: CommitLogEntry) {
        self.bytes += entry.size_bytes;
        self.entries.push(entry);
    }

    /// Number of records since the last truncation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total logged bytes since the last truncation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Discards all records (called after a successful memtable flush).
    pub fn truncate(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }
}

/// An immutable, sorted on-"disk" table produced by flushing a memtable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsTable {
    rows: Vec<(KeyId, Arc<Row>)>,
    bytes: usize,
}

impl SsTable {
    /// Builds an SSTable from already-sorted `(key, row)` pairs.
    fn from_sorted(rows: Vec<(KeyId, Arc<Row>)>) -> Self {
        let bytes = rows
            .iter()
            .map(|(_, r)| std::mem::size_of::<KeyId>() + r.size_bytes())
            .sum();
        SsTable { rows, bytes }
    }

    /// Point lookup by key.
    pub fn get(&self, key: KeyId) -> Option<&Arc<Row>> {
        self.rows
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| &self.rows[i].1)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Configuration of a node's storage engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Flush the memtable once it holds at least this many rows.
    pub memtable_flush_rows: usize,
    /// Trigger a compaction once this many SSTables share a size class
    /// (size-tiered: only similar-sized tables merge together).
    pub compaction_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            memtable_flush_rows: 10_000,
            compaction_threshold: 4,
        }
    }
}

/// Counters describing the work an engine has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Mutations applied.
    pub writes: u64,
    /// Point reads served.
    pub reads: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

/// A single node's local storage engine.
#[derive(Debug, Clone)]
pub struct StorageEngine {
    config: EngineConfig,
    commit_log: CommitLog,
    memtable: BTreeMap<KeyId, Arc<Row>>,
    sstables: Vec<SsTable>,
    stats: EngineStats,
}

impl StorageEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        StorageEngine {
            config,
            commit_log: CommitLog::new(),
            memtable: BTreeMap::new(),
            sstables: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Creates an engine with default configuration.
    pub fn with_defaults() -> Self {
        StorageEngine::new(EngineConfig::default())
    }

    /// Applies a mutation at `timestamp`: commit-log append plus memtable
    /// upsert with per-column last-write-wins.
    pub fn apply(&mut self, key: KeyId, mutation: &Mutation, timestamp: Timestamp) {
        self.stats.writes += 1;
        self.commit_log.append(CommitLogEntry {
            key,
            columns: mutation.columns.len(),
            timestamp,
            size_bytes: mutation.size_bytes(),
        });
        // `make_mut` clones only if a read response still shares this row —
        // rare, and exactly the copy-on-write a shared store needs.
        let entry = Arc::make_mut(self.memtable.entry(key).or_default());
        for (name, value) in &mutation.columns {
            match entry.columns.get(name) {
                Some(existing) if existing.timestamp >= timestamp => {}
                _ => {
                    entry
                        .columns
                        .insert(name.clone(), Cell::new(value.clone(), timestamp));
                }
            }
        }
        if self.memtable.len() >= self.config.memtable_flush_rows {
            self.flush();
        }
    }

    /// Applies an already-reconciled row (used by read repair and replica
    /// synchronisation): every column merges by timestamp.
    pub fn apply_row(&mut self, key: KeyId, row: &Row) {
        if row.is_empty() {
            return;
        }
        self.stats.writes += 1;
        self.commit_log.append(CommitLogEntry {
            key,
            columns: row.columns.len(),
            timestamp: row.latest_timestamp(),
            size_bytes: row.size_bytes(),
        });
        let entry = Arc::make_mut(self.memtable.entry(key).or_default());
        entry.merge_from(row);
        if self.memtable.len() >= self.config.memtable_flush_rows {
            self.flush();
        }
    }

    /// Reads a row, merging the memtable and every SSTable (newest data wins
    /// per column). Returns `None` if the key has never been written on this
    /// replica. When a single source holds the key — the common case — the
    /// stored row is *shared* (`Arc` clone), not deep-copied; a merge across
    /// sources builds one fresh row.
    pub fn get(&mut self, key: KeyId) -> Option<Arc<Row>> {
        self.stats.reads += 1;
        Row::merge_shared(
            self.sstables
                .iter()
                .filter_map(|table| table.get(key))
                .chain(self.memtable.get(&key)),
        )
    }

    /// The newest timestamp stored for a key, without counting as a data read
    /// (digest reads).
    pub fn digest(&self, key: KeyId) -> Option<Timestamp> {
        let mut latest: Option<Timestamp> = None;
        for table in &self.sstables {
            if let Some(row) = table.get(key) {
                latest = latest.max(Some(row.latest_timestamp()));
            }
        }
        if let Some(row) = self.memtable.get(&key) {
            latest = latest.max(Some(row.latest_timestamp()));
        }
        latest
    }

    /// Flushes the memtable into a new SSTable and truncates the commit log.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let rows: Vec<(KeyId, Arc<Row>)> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.sstables.push(SsTable::from_sorted(rows));
        self.commit_log.truncate();
        self.stats.flushes += 1;
        self.maybe_compact();
    }

    /// Size-tiered compaction: merges a run of SSTables once
    /// `compaction_threshold` of them share a size class (`⌊log₂ rows⌋`),
    /// smallest class first. Merging only similar-sized tables keeps total
    /// compaction work O(N log N) over the engine's life; re-merging every
    /// table each few flushes is quadratic in rows and visibly stalls a
    /// multi-million-record load.
    fn maybe_compact(&mut self) {
        loop {
            let mut classes: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (i, table) in self.sstables.iter().enumerate() {
                classes
                    .entry((table.rows.len().max(1) as u64).ilog2())
                    .or_default()
                    .push(i);
            }
            let threshold = self.config.compaction_threshold.max(2);
            let Some(run) = classes.into_values().find(|run| run.len() >= threshold) else {
                return;
            };
            self.compact_run(&run);
        }
    }

    /// Merges the SSTables at `indices` (ascending), reconciling duplicate
    /// keys by timestamp, and reinserts the merged table at the oldest
    /// merged position so relative table order is preserved.
    fn compact_run(&mut self, indices: &[usize]) {
        let mut tables = Vec::with_capacity(indices.len());
        for &i in indices.iter().rev() {
            tables.push(self.sstables.remove(i));
        }
        tables.reverse(); // merge oldest-first, matching apply order
        let mut merged: BTreeMap<KeyId, Arc<Row>> = BTreeMap::new();
        for table in tables {
            for (key, row) in table.rows {
                Arc::make_mut(merged.entry(key).or_default()).merge_from(&row);
            }
        }
        self.sstables.insert(
            indices[0],
            SsTable::from_sorted(merged.into_iter().collect()),
        );
        self.stats.compactions += 1;
    }

    /// Merges all SSTables into one, reconciling duplicate keys by timestamp.
    pub fn compact(&mut self) {
        if self.sstables.len() <= 1 {
            return;
        }
        let mut merged: BTreeMap<KeyId, Arc<Row>> = BTreeMap::new();
        for table in self.sstables.drain(..) {
            for (key, row) in table.rows {
                Arc::make_mut(merged.entry(key).or_default()).merge_from(&row);
            }
        }
        self.sstables
            .push(SsTable::from_sorted(merged.into_iter().collect()));
        self.stats.compactions += 1;
    }

    /// Number of rows currently in the memtable.
    pub fn memtable_rows(&self) -> usize {
        self.memtable.len()
    }

    /// Number of SSTables on "disk".
    pub fn sstable_count(&self) -> usize {
        self.sstables.len()
    }

    /// The commit log (for inspection in tests and tools).
    pub fn commit_log(&self) -> &CommitLog {
        &self.commit_log
    }

    /// Work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Total number of distinct keys visible on this replica.
    pub fn approximate_keys(&self) -> usize {
        // Upper bound: memtable keys plus SSTable rows (duplicates across
        // tables are counted once per table; exact counting would require a
        // full merge).
        self.memtable.len() + self.sstables.iter().map(|t| t.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mutation(col: &str, val: &str) -> Mutation {
        Mutation::single(col, val.as_bytes().to_vec())
    }

    fn value_of(row: &Row, col: &str) -> String {
        String::from_utf8(row.columns[col].value.clone()).unwrap()
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(1), &mutation("field0", "hello"), Timestamp(1));
        let row = e.get(KeyId(1)).unwrap();
        assert_eq!(value_of(&row, "field0"), "hello");
        assert_eq!(row.latest_timestamp(), Timestamp(1));
        assert!(e.get(KeyId(2)).is_none());
    }

    #[test]
    fn newer_timestamp_wins_regardless_of_apply_order() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("f", "new"), Timestamp(10));
        e.apply(KeyId(0), &mutation("f", "old"), Timestamp(5));
        assert_eq!(value_of(&e.get(KeyId(0)).unwrap(), "f"), "new");

        let mut e2 = StorageEngine::with_defaults();
        e2.apply(KeyId(0), &mutation("f", "old"), Timestamp(5));
        e2.apply(KeyId(0), &mutation("f", "new"), Timestamp(10));
        assert_eq!(value_of(&e2.get(KeyId(0)).unwrap(), "f"), "new");
    }

    #[test]
    fn equal_timestamps_keep_first_applied() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("f", "first"), Timestamp(5));
        e.apply(KeyId(0), &mutation("f", "second"), Timestamp(5));
        assert_eq!(value_of(&e.get(KeyId(0)).unwrap(), "f"), "first");
    }

    #[test]
    fn columns_merge_independently() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("a", "a1"), Timestamp(1));
        e.apply(KeyId(0), &mutation("b", "b2"), Timestamp(2));
        e.apply(KeyId(0), &mutation("a", "a3"), Timestamp(3));
        let row = e.get(KeyId(0)).unwrap();
        assert_eq!(value_of(&row, "a"), "a3");
        assert_eq!(value_of(&row, "b"), "b2");
        assert_eq!(row.latest_timestamp(), Timestamp(3));
    }

    #[test]
    fn commit_log_grows_and_truncates_on_flush() {
        let mut e = StorageEngine::new(EngineConfig {
            memtable_flush_rows: 100,
            compaction_threshold: 100,
        });
        for i in 0..10 {
            e.apply(KeyId(i as u32), &mutation("f", "v"), Timestamp(i));
        }
        assert_eq!(e.commit_log().len(), 10);
        assert!(e.commit_log().bytes() > 0);
        e.flush();
        assert!(e.commit_log().is_empty());
        assert_eq!(e.sstable_count(), 1);
        assert_eq!(e.memtable_rows(), 0);
    }

    #[test]
    fn reads_merge_memtable_and_sstables() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("a", "flushed"), Timestamp(1));
        e.flush();
        e.apply(KeyId(0), &mutation("b", "fresh"), Timestamp(2));
        let row = e.get(KeyId(0)).unwrap();
        assert_eq!(value_of(&row, "a"), "flushed");
        assert_eq!(value_of(&row, "b"), "fresh");
    }

    #[test]
    fn newer_sstable_data_beats_older_memtable_data() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("f", "newer"), Timestamp(10));
        e.flush();
        // A late-arriving replica write with an older timestamp lands in the memtable.
        e.apply(KeyId(0), &mutation("f", "older"), Timestamp(3));
        assert_eq!(value_of(&e.get(KeyId(0)).unwrap(), "f"), "newer");
    }

    #[test]
    fn automatic_flush_when_memtable_full() {
        let mut e = StorageEngine::new(EngineConfig {
            memtable_flush_rows: 5,
            compaction_threshold: 100,
        });
        for i in 0..12 {
            e.apply(KeyId(i as u32), &mutation("f", "v"), Timestamp(i));
        }
        assert!(e.sstable_count() >= 2);
        assert!(e.memtable_rows() < 5);
        assert!(e.stats().flushes >= 2);
        // All keys still readable.
        for i in 0..12 {
            assert!(e.get(KeyId(i as u32)).is_some(), "k{i} missing");
        }
    }

    #[test]
    fn compaction_preserves_latest_data() {
        let mut e = StorageEngine::new(EngineConfig {
            memtable_flush_rows: 2,
            compaction_threshold: 3,
        });
        for round in 0..6u64 {
            for k in 0..2 {
                e.apply(
                    KeyId(k as u32),
                    &mutation("f", &format!("v{round}")),
                    Timestamp(round * 10 + k),
                );
            }
        }
        assert!(e.stats().compactions >= 1);
        for k in 0..2 {
            assert_eq!(value_of(&e.get(KeyId(k)).unwrap(), "f"), "v5");
        }
    }

    #[test]
    fn size_tiered_compaction_bounds_table_count_on_large_loads() {
        let mut e = StorageEngine::new(EngineConfig {
            memtable_flush_rows: 1_000,
            compaction_threshold: 4,
        });
        // 100 flushes' worth of writes: a full-merge-every-4-flushes scheme
        // would rewrite the whole store ~25 times; size-tiered work stays
        // near-linear and the table count logarithmic.
        for i in 0..100_000u64 {
            e.apply(
                KeyId((i % 50_000) as u32),
                &mutation("f", &format!("v{i}")),
                Timestamp(i + 1),
            );
        }
        e.flush();
        assert!(e.sstable_count() <= 16, "sstables: {}", e.sstable_count());
        assert!(e.stats().compactions >= 2);
        // Updates still reconcile across tiers: key 0 was written at i=0 and
        // again at i=50_000.
        assert_eq!(value_of(&e.get(KeyId(0)).unwrap(), "f"), "v50000");
    }

    #[test]
    fn digest_returns_latest_timestamp_without_counting_a_read() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("a", "x"), Timestamp(3));
        e.flush();
        e.apply(KeyId(0), &mutation("b", "y"), Timestamp(7));
        let reads_before = e.stats().reads;
        assert_eq!(e.digest(KeyId(0)), Some(Timestamp(7)));
        assert_eq!(e.digest(KeyId(9)), None);
        assert_eq!(e.stats().reads, reads_before);
    }

    #[test]
    fn apply_row_merges_for_read_repair() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("f", "local"), Timestamp(1));
        let mut repair = Row::new();
        repair
            .columns
            .insert("f".into(), Cell::new(b"repaired".to_vec(), Timestamp(9)));
        e.apply_row(KeyId(0), &repair);
        assert_eq!(value_of(&e.get(KeyId(0)).unwrap(), "f"), "repaired");
        // Empty repair rows are ignored entirely.
        let writes = e.stats().writes;
        e.apply_row(KeyId(0), &Row::new());
        assert_eq!(e.stats().writes, writes);
    }

    #[test]
    fn stats_count_operations() {
        let mut e = StorageEngine::with_defaults();
        e.apply(KeyId(0), &mutation("f", "1"), Timestamp(1));
        e.apply(KeyId(1), &mutation("f", "2"), Timestamp(2));
        e.get(KeyId(0));
        e.get(KeyId(7));
        let s = e.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 2);
    }

    #[test]
    fn sstable_lookup_is_exact() {
        let rows = vec![
            (
                KeyId(0),
                Arc::new(Mutation::single("f", vec![1]).into_row(Timestamp(1))),
            ),
            (
                KeyId(2),
                Arc::new(Mutation::single("f", vec![2]).into_row(Timestamp(2))),
            ),
        ];
        let t = SsTable::from_sorted(rows);
        assert!(t.get(KeyId(0)).is_some());
        assert!(t.get(KeyId(1)).is_none());
        assert!(t.get(KeyId(2)).is_some());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(t.bytes() > 0);
    }
}

//! Core data types of the replicated store: keys, cells, rows and mutations.
//!
//! The data model follows Cassandra's (the paper's substrate): a row is
//! identified by a key and holds named columns; every column value carries a
//! client-side timestamp used for last-write-wins reconciliation between
//! replicas. Staleness — the phenomenon Harmony controls — is precisely a
//! read returning a cell whose timestamp is older than the latest acknowledged
//! write for that key.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A row key *name*. YCSB-style workloads use keys like `"user4382"`. On
/// the operation hot path keys travel as interned [`crate::keys::KeyId`]s;
/// the `String` form exists at the API boundary (workload setup, reports).
pub type Key = String;

/// A logical timestamp attached to every written cell (nanosecond-scale,
/// coordinator-assigned, strictly monotonic per cluster).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp, older than every real write.
    pub const ZERO: Timestamp = Timestamp(0);
}

/// A single column value plus its write timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// The column payload.
    pub value: Vec<u8>,
    /// The timestamp assigned by the coordinating node at write time.
    pub timestamp: Timestamp,
}

impl Cell {
    /// Creates a cell.
    pub fn new(value: Vec<u8>, timestamp: Timestamp) -> Self {
        Cell { value, timestamp }
    }

    /// The approximate in-memory size of this cell in bytes.
    pub fn size_bytes(&self) -> usize {
        self.value.len() + std::mem::size_of::<Timestamp>()
    }
}

/// A row: a set of named columns, each carrying its own timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Row {
    /// Column name to cell.
    pub columns: BTreeMap<String, Cell>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// Merges `other` into `self`, keeping for every column the cell with the
    /// newest timestamp (Cassandra's last-write-wins reconciliation).
    pub fn merge_from(&mut self, other: &Row) {
        for (name, cell) in &other.columns {
            match self.columns.get(name) {
                Some(existing) if existing.timestamp >= cell.timestamp => {}
                _ => {
                    self.columns.insert(name.clone(), cell.clone());
                }
            }
        }
    }

    /// Reconciles a sequence of shared rows by timestamp (last-write-wins
    /// per column, earlier rows win ties), *without copying in the common
    /// case*: a single source row is returned as an `Arc` clone; only
    /// disagreeing sources build one fresh merged row. `None` for an empty
    /// sequence. Shared by the storage engine's read path and the
    /// coordinator's response reconciliation so the copy-on-write state
    /// machine cannot drift between them.
    pub fn merge_shared<'a>(
        rows: impl Iterator<Item = &'a std::sync::Arc<Row>>,
    ) -> Option<std::sync::Arc<Row>> {
        let mut merged: Option<Row> = None;
        let mut single: Option<&std::sync::Arc<Row>> = None;
        for row in rows {
            match (&mut merged, single) {
                (Some(acc), _) => acc.merge_from(row),
                (None, None) => single = Some(row),
                (None, Some(first)) => {
                    let mut acc = Row::clone(first);
                    acc.merge_from(row);
                    merged = Some(acc);
                    single = None;
                }
            }
        }
        merged
            .map(std::sync::Arc::new)
            .or_else(|| single.map(std::sync::Arc::clone))
    }

    /// The newest timestamp among all columns, or [`Timestamp::ZERO`] for an
    /// empty row. This is the value the paper's dual-read staleness check
    /// compares between a weak and a strong read.
    pub fn latest_timestamp(&self) -> Timestamp {
        self.columns
            .values()
            .map(|c| c.timestamp)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Total payload size of the row in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|(k, v)| k.len() + v.size_bytes())
            .sum()
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the row holds no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A write: the set of columns to upsert on a key. The coordinator stamps the
/// mutation with a single timestamp when it accepts the operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mutation {
    /// Column name to new value.
    pub columns: BTreeMap<String, Vec<u8>>,
}

impl Mutation {
    /// A mutation setting a single column.
    pub fn single(column: impl Into<String>, value: Vec<u8>) -> Self {
        let mut columns = BTreeMap::new();
        columns.insert(column.into(), value);
        Mutation { columns }
    }

    /// A mutation setting several columns at once.
    pub fn multi(columns: BTreeMap<String, Vec<u8>>) -> Self {
        Mutation { columns }
    }

    /// Generates a YCSB-style mutation with `fields` columns named
    /// `field0..fieldN`, each `field_size` bytes of filler.
    pub fn ycsb_row(fields: usize, field_size: usize) -> Self {
        let mut columns = BTreeMap::new();
        for i in 0..fields {
            columns.insert(format!("field{i}"), vec![b'x'; field_size]);
        }
        Mutation { columns }
    }

    /// Applies this mutation at `timestamp`, producing the cells to store.
    pub fn into_row(self, timestamp: Timestamp) -> Row {
        let mut row = Row::new();
        for (name, value) in self.columns {
            row.columns.insert(name, Cell::new(value, timestamp));
        }
        row
    }

    /// Total payload size of the mutation in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    /// Number of columns touched.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the mutation touches no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(v: &str, ts: u64) -> Cell {
        Cell::new(v.as_bytes().to_vec(), Timestamp(ts))
    }

    #[test]
    fn merge_keeps_newest_cells() {
        let mut a = Row::new();
        a.columns.insert("f0".into(), cell("old", 1));
        a.columns.insert("f1".into(), cell("keep", 9));
        let mut b = Row::new();
        b.columns.insert("f0".into(), cell("new", 5));
        b.columns.insert("f1".into(), cell("stale", 2));
        b.columns.insert("f2".into(), cell("added", 3));
        a.merge_from(&b);
        assert_eq!(a.columns["f0"], cell("new", 5));
        assert_eq!(a.columns["f1"], cell("keep", 9));
        assert_eq!(a.columns["f2"], cell("added", 3));
        assert_eq!(a.latest_timestamp(), Timestamp(9));
    }

    #[test]
    fn merge_with_equal_timestamp_keeps_existing() {
        let mut a = Row::new();
        a.columns.insert("f0".into(), cell("mine", 5));
        let mut b = Row::new();
        b.columns.insert("f0".into(), cell("theirs", 5));
        a.merge_from(&b);
        assert_eq!(a.columns["f0"], cell("mine", 5));
    }

    #[test]
    fn empty_row_has_zero_timestamp() {
        assert_eq!(Row::new().latest_timestamp(), Timestamp::ZERO);
        assert!(Row::new().is_empty());
        assert_eq!(Row::new().len(), 0);
    }

    #[test]
    fn mutation_into_row_stamps_all_columns() {
        let m = Mutation::ycsb_row(3, 10);
        assert_eq!(m.len(), 3);
        assert_eq!(m.size_bytes(), 3 * (6 + 10));
        let row = m.into_row(Timestamp(42));
        assert_eq!(row.len(), 3);
        for c in row.columns.values() {
            assert_eq!(c.timestamp, Timestamp(42));
            assert_eq!(c.value.len(), 10);
        }
        assert_eq!(row.latest_timestamp(), Timestamp(42));
    }

    #[test]
    fn single_and_multi_mutations() {
        let s = Mutation::single("field0", vec![1, 2, 3]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        let mut cols = BTreeMap::new();
        cols.insert("a".to_string(), vec![0u8; 4]);
        cols.insert("b".to_string(), vec![0u8; 6]);
        let m = Mutation::multi(cols);
        assert_eq!(m.size_bytes(), 1 + 4 + 1 + 6);
    }

    #[test]
    fn row_size_accounts_for_names_and_values() {
        let mut r = Row::new();
        r.columns.insert("ab".into(), cell("xyz", 1));
        assert_eq!(r.size_bytes(), 2 + 3 + std::mem::size_of::<Timestamp>());
    }

    #[test]
    fn timestamps_order_naturally() {
        assert!(Timestamp(2) > Timestamp(1));
        assert!(Timestamp::ZERO < Timestamp(1));
    }
}

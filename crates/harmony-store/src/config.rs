//! Cluster-level configuration of the replicated store.

use crate::engine::EngineConfig;
use crate::placement::ReplicationStrategy;
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::cluster::Cluster`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Replication factor `N` (the paper uses 5 on both testbeds).
    pub replication_factor: usize,
    /// Replica placement strategy (the paper uses the rack/DC-aware one).
    pub strategy: ReplicationStrategy,
    /// Virtual nodes per physical node on the token ring.
    pub vnodes_per_node: usize,
    /// Probability that a read additionally triggers background read repair
    /// towards the replicas that were *not* contacted (Cassandra's
    /// `read_repair_chance`).
    pub background_read_repair_chance: f64,
    /// Per-node storage engine configuration.
    pub engine: EngineConfig,
    /// Maximum concurrent replica operations per node (worker threads).
    pub node_concurrency: usize,
    /// Mean replica service time for a read, in milliseconds.
    pub read_service_ms: f64,
    /// Mean replica service time for a write, in milliseconds.
    pub write_service_ms: f64,
    /// Erlang shape `k` of the write service-time distribution: samples are
    /// the sum of `k` exponentials (squared coefficient of variation `1/k`).
    /// 1 = exponential service (the historical behaviour), larger values
    /// approach deterministic service and calmer queues.
    pub write_service_shape: u32,
    /// Per-node multipliers on the mean service times (both stages); an empty
    /// vector means every node is identical. A factor above 1 models a
    /// straggler whose write stage saturates first — the heterogeneity that
    /// makes the saturation regime of Figure 5(c)/(d) reproducible in-sim.
    pub node_service_factors: Vec<f64>,
    /// Extra one-way latency between the client and the coordinator, in
    /// milliseconds (clients run on separate machines/VMs in both testbeds).
    pub client_latency_ms: f64,
    /// Period of the background anti-entropy repair rounds, in seconds.
    /// `0.0` (the default) disables the subsystem entirely: no timer is
    /// armed, no digest is computed, no event or RNG draw happens — a
    /// disabled cluster is byte-identical to one built before the subsystem
    /// existed. Runners arm the protocol timer from this knob.
    pub anti_entropy_interval_secs: f64,
    /// Number of Merkle-style range buckets an anti-entropy digest folds the
    /// key space into. More buckets mean finer diffs (fewer key-level entries
    /// exchanged per mismatch) at the cost of a longer digest message.
    pub anti_entropy_buckets: usize,
    /// Maximum hinted mutations retained per (origin, destination) pair.
    /// When an origin exceeds the cap for one destination its *oldest* hint
    /// is evicted (counted in [`crate::cluster::ClusterTotals::hints_evicted`])
    /// — last-write-wins row semantics make the newest mutation the one worth
    /// keeping, and anti-entropy closes whatever the eviction lost. `0` (the
    /// default) means unbounded, the pre-cap behaviour.
    pub hint_cap_per_origin: usize,
    /// Enables the accrual (φ) failure detector: replica responses count as
    /// heartbeats and the coordinator deprioritises suspected replicas when
    /// choosing which to contact. Off by default; a disabled detector records
    /// nothing and changes nothing.
    pub failure_detector_enabled: bool,
    /// φ level at which a node counts as suspected (Cassandra's convention
    /// is 8 ≙ a 10⁻⁸-probability silence). Only consulted when the detector
    /// is enabled.
    pub suspicion_threshold: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            replication_factor: 5,
            strategy: ReplicationStrategy::NetworkTopology,
            vnodes_per_node: 16,
            background_read_repair_chance: 0.1,
            engine: EngineConfig::default(),
            node_concurrency: 4,
            read_service_ms: 0.35,
            write_service_ms: 0.25,
            write_service_shape: 1,
            node_service_factors: Vec::new(),
            client_latency_ms: 0.25,
            anti_entropy_interval_secs: 0.0,
            anti_entropy_buckets: 16,
            hint_cap_per_origin: 0,
            failure_detector_enabled: false,
            suspicion_threshold: 8.0,
        }
    }
}

impl StoreConfig {
    /// The quorum size for this configuration: `(RF / 2) + 1`.
    pub fn quorum(&self) -> usize {
        self.replication_factor / 2 + 1
    }

    /// Validates the configuration, returning a human-readable error for the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.replication_factor == 0 {
            return Err("replication_factor must be at least 1".into());
        }
        if self.replication_factor > crate::placement::MAX_RF {
            return Err(format!(
                "replication_factor must be at most {} (the inline replica-set bound)",
                crate::placement::MAX_RF
            ));
        }
        if self.vnodes_per_node == 0 {
            return Err("vnodes_per_node must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.background_read_repair_chance) {
            return Err("background_read_repair_chance must be within [0, 1]".into());
        }
        if self.node_concurrency == 0 {
            return Err("node_concurrency must be at least 1".into());
        }
        if self.read_service_ms < 0.0 || self.write_service_ms < 0.0 {
            return Err("service times must be non-negative".into());
        }
        if self.write_service_shape == 0 {
            return Err("write_service_shape must be at least 1".into());
        }
        if self.node_service_factors.iter().any(|f| *f < 0.0) {
            return Err("node_service_factors must be non-negative".into());
        }
        if self.client_latency_ms < 0.0 {
            return Err("client_latency_ms must be non-negative".into());
        }
        if !self.anti_entropy_interval_secs.is_finite() || self.anti_entropy_interval_secs < 0.0 {
            return Err("anti_entropy_interval_secs must be finite and non-negative".into());
        }
        if self.anti_entropy_buckets == 0 {
            return Err("anti_entropy_buckets must be at least 1".into());
        }
        if !self.suspicion_threshold.is_finite() || self.suspicion_threshold <= 0.0 {
            return Err("suspicion_threshold must be finite and positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_settings() {
        let c = StoreConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.replication_factor, 5);
        assert_eq!(c.quorum(), 3);
        assert_eq!(c.strategy, ReplicationStrategy::NetworkTopology);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = StoreConfig {
            replication_factor: 0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            vnodes_per_node: 0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            background_read_repair_chance: 1.5,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            node_concurrency: 0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            read_service_ms: -1.0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            write_service_shape: 0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            node_service_factors: vec![1.0, -0.5],
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            client_latency_ms: -0.1,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            anti_entropy_interval_secs: -1.0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            anti_entropy_interval_secs: f64::NAN,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            anti_entropy_buckets: 0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());

        let c = StoreConfig {
            suspicion_threshold: 0.0,
            ..StoreConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn self_healing_knobs_default_to_disabled() {
        let c = StoreConfig::default();
        assert_eq!(c.anti_entropy_interval_secs, 0.0);
        assert_eq!(c.hint_cap_per_origin, 0);
        assert!(!c.failure_detector_enabled);
    }

    #[test]
    fn quorum_for_various_rf() {
        let mut c = StoreConfig::default();
        for (rf, q) in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (7, 4)] {
            c.replication_factor = rf;
            assert_eq!(c.quorum(), q);
        }
    }
}

//! A single replica node: its storage engine, a bounded service capacity with
//! a FIFO queue, and the access counters the monitoring module reads.
//!
//! The bounded service capacity is what makes the cluster saturate when the
//! number of client threads exceeds what the hosts can serve concurrently —
//! the effect behind the throughput roll-off beyond 90 threads in Figure 5(c)
//! and 5(d) of the paper.

use crate::engine::{EngineConfig, StorageEngine};
use crate::keys::KeyId;
use crate::messages::Message;
use crate::types::{Mutation, Row, Timestamp};
use harmony_sim::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Cumulative per-node operation counters — the analogue of the counters the
/// paper's monitoring module collects with Cassandra's `nodetool`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCounters {
    /// Replica read operations served.
    pub reads: u64,
    /// Replica write operations applied (client writes, not repair traffic).
    pub writes: u64,
    /// Repair writes applied (read repair and async propagation).
    pub repairs: u64,
    /// Messages that had to wait in the service queue.
    pub queued: u64,
}

/// The two replica-side service stages, mirroring Cassandra's separate read
/// and mutation thread pools. Keeping them separate matters for fidelity:
/// a read is *not* serialised behind a mutation that reached the replica
/// earlier, so a replica can legitimately serve a stale value while the
/// mutation is still queued — the raw material of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The read stage.
    Read,
    /// The mutation stage (client writes, async propagation, read repair).
    Write,
}

impl Stage {
    /// The stage that processes a given message, or `None` for coordination
    /// messages that cost no replica service time.
    pub fn of(message: &Message) -> Option<Stage> {
        match message {
            Message::ReplicaRead { .. } => Some(Stage::Read),
            Message::ReplicaWrite { .. } | Message::RepairWrite { .. } => Some(Stage::Write),
            _ => None,
        }
    }
}

/// Cumulative write-stage (mutation-stage) telemetry for one node: the raw
/// material of the queueing-aware staleness model. Arrival counts, completed
/// service counts and accumulated (sampled) service times let the monitor
/// derive per-replica arrival rates, the mean service time and its variance;
/// the live queue length and busy slots give the instantaneous backlog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteStageTelemetry {
    /// Mutations (client writes, async propagation, read repair) that entered
    /// the write stage — queued or started.
    pub arrivals: u64,
    /// Mutations whose service completed.
    pub completed: u64,
    /// Sum of the sampled service times of started mutations (ms).
    pub service_ms_total: f64,
    /// Sum of squared sampled service times (ms²), for variance estimation.
    pub service_ms_sq_total: f64,
    /// Mutations currently waiting for a service slot.
    pub queued: usize,
    /// Service slots currently busy.
    pub busy: usize,
}

#[derive(Debug, Clone, Default)]
struct StageQueue {
    queue: VecDeque<Message>,
    busy: usize,
}

/// A storage node. `Clone` is deliberate: the model checker snapshots whole
/// nodes (queues, engine, telemetry) to backtrack over alternative schedules.
#[derive(Debug, Clone)]
pub struct StorageNode {
    /// This node's identifier.
    pub id: NodeId,
    engine: StorageEngine,
    counters: NodeCounters,
    read_stage: StageQueue,
    write_stage: StageQueue,
    write_telemetry: WriteStageTelemetry,
    /// Maximum concurrent operations per stage (worker threads / cores).
    concurrency: usize,
}

impl StorageNode {
    /// Creates a node with the given engine configuration and per-stage
    /// service concurrency (clamped to at least 1).
    pub fn new(id: NodeId, engine_config: EngineConfig, concurrency: usize) -> Self {
        StorageNode {
            id,
            engine: StorageEngine::new(engine_config),
            counters: NodeCounters::default(),
            read_stage: StageQueue::default(),
            write_stage: StageQueue::default(),
            write_telemetry: WriteStageTelemetry::default(),
            concurrency: concurrency.max(1),
        }
    }

    /// The node's cumulative counters.
    pub fn counters(&self) -> NodeCounters {
        self.counters
    }

    /// Read-only access to the storage engine (tests, tools).
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Mutable access to the storage engine (bulk loading).
    pub fn engine_mut(&mut self) -> &mut StorageEngine {
        &mut self.engine
    }

    fn stage_mut(&mut self, stage: Stage) -> &mut StageQueue {
        match stage {
            Stage::Read => &mut self.read_stage,
            Stage::Write => &mut self.write_stage,
        }
    }

    /// Number of messages waiting for a service slot in the given stage.
    pub fn queue_len(&self, stage: Stage) -> usize {
        match stage {
            Stage::Read => self.read_stage.queue.len(),
            Stage::Write => self.write_stage.queue.len(),
        }
    }

    /// The keys of the mutations currently waiting in the write-stage queue
    /// (client writes, async propagation and read repair alike), in queue
    /// order. The raw material of the per-key backlog probe — the per-key
    /// analogue of the aggregate mutation backlog, since a deep per-key queue
    /// means reads of that key observe stale data until it drains; callers
    /// count occurrences in one pass instead of rescanning the queue per key.
    pub fn queued_write_keys(&self) -> impl Iterator<Item = KeyId> + '_ {
        self.write_stage.queue.iter().filter_map(|m| match m {
            Message::ReplicaWrite { key, .. } | Message::RepairWrite { key, .. } => Some(*key),
            _ => None,
        })
    }

    /// The messages waiting in the given stage's queue, in queue order —
    /// read-only visibility for state fingerprinting (the model checker hashes
    /// queued-but-unstarted work as part of a node's state).
    pub fn queued_messages(&self, stage: Stage) -> impl Iterator<Item = &Message> {
        match stage {
            Stage::Read => self.read_stage.queue.iter(),
            Stage::Write => self.write_stage.queue.iter(),
        }
    }

    /// Number of busy service slots in the given stage.
    pub fn busy_slots(&self, stage: Stage) -> usize {
        match stage {
            Stage::Read => self.read_stage.busy,
            Stage::Write => self.write_stage.busy,
        }
    }

    /// The configured per-stage service concurrency.
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// The node's cumulative write-stage telemetry, with the instantaneous
    /// queue length and busy-slot count filled in.
    pub fn write_stage_telemetry(&self) -> WriteStageTelemetry {
        WriteStageTelemetry {
            queued: self.write_stage.queue.len(),
            busy: self.write_stage.busy,
            ..self.write_telemetry
        }
    }

    /// Records the sampled service time of a unit of work that is about to
    /// start on this node. Only the write stage is tracked — it is the stage
    /// whose queueing behaviour drives the staleness window.
    pub fn note_service_time(&mut self, stage: Stage, service_ms: f64) {
        if stage == Stage::Write {
            let ms = service_ms.max(0.0);
            self.write_telemetry.service_ms_total += ms;
            self.write_telemetry.service_ms_sq_total += ms * ms;
        }
    }

    /// Called when replica work arrives. Returns the message if it can start
    /// service immediately (a slot in its stage was free and is now taken);
    /// `None` if it was queued behind other work of the same stage.
    pub fn try_start_work(&mut self, message: Message) -> Option<Message> {
        let stage = Stage::of(&message).expect("replica work message");
        if stage == Stage::Write {
            self.write_telemetry.arrivals += 1;
        }
        let concurrency = self.concurrency;
        let sq = self.stage_mut(stage);
        if sq.busy < concurrency {
            sq.busy += 1;
            Some(message)
        } else {
            self.counters.queued += 1;
            self.stage_mut(stage).queue.push_back(message);
            None
        }
    }

    /// Drains both stage queues without touching the busy slots — the crash
    /// path: queued (not yet started) work is returned as
    /// `(write stage, read stage)` so the cluster can hint the mutations and
    /// fail the reads, while work already *in service* is left to complete
    /// (its `Process` event is in flight and will release the slot through
    /// [`StorageNode::finish_work`] as usual).
    pub fn drain_queues(&mut self) -> (Vec<Message>, Vec<Message>) {
        (
            self.write_stage.queue.drain(..).collect(),
            self.read_stage.queue.drain(..).collect(),
        )
    }

    /// Called when a unit of replica work of `stage` finishes service.
    /// Returns the next queued message of that stage to start (the freed slot
    /// is immediately reused), if any.
    pub fn finish_work(&mut self, stage: Stage) -> Option<Message> {
        if stage == Stage::Write {
            self.write_telemetry.completed += 1;
        }
        let sq = self.stage_mut(stage);
        match sq.queue.pop_front() {
            Some(next) => Some(next),
            None => {
                sq.busy = sq.busy.saturating_sub(1);
                None
            }
        }
    }

    /// Serves a replica read: returns this node's local copy of the row,
    /// shared (`Arc`) rather than deep-copied.
    pub fn serve_read(&mut self, key: KeyId) -> Option<std::sync::Arc<Row>> {
        self.counters.reads += 1;
        self.engine.get(key)
    }

    /// Applies a replica write.
    pub fn apply_write(&mut self, key: KeyId, mutation: &Mutation, timestamp: Timestamp) {
        self.counters.writes += 1;
        self.engine.apply(key, mutation, timestamp);
    }

    /// Applies a repair row (read repair / async propagation).
    pub fn apply_repair(&mut self, key: KeyId, row: &Row) {
        self.counters.repairs += 1;
        self.engine.apply_row(key, row);
    }

    /// The newest timestamp this node stores for a key (digest read).
    pub fn digest(&self, key: KeyId) -> Option<Timestamp> {
        self.engine.digest(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::OpId;

    const K: KeyId = KeyId(0);

    fn dummy_read(op: u64) -> Message {
        Message::ReplicaRead {
            op: OpId(op),
            key: K,
            coordinator: NodeId(0),
        }
    }

    fn dummy_write(op: u64) -> Message {
        Message::ReplicaWrite {
            op: OpId(op),
            key: K,
            mutation: std::sync::Arc::new(Mutation::single("f", b"v".to_vec())),
            timestamp: Timestamp(op),
            coordinator: NodeId(0),
        }
    }

    #[test]
    fn read_write_and_counters() {
        let mut n = StorageNode::new(NodeId(3), EngineConfig::default(), 2);
        assert!(n.serve_read(K).is_none());
        n.apply_write(K, &Mutation::single("f", b"v".to_vec()), Timestamp(1));
        let row = n.serve_read(K).unwrap();
        assert_eq!(row.latest_timestamp(), Timestamp(1));
        let c = n.counters();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.repairs, 0);
    }

    #[test]
    fn repair_merges_and_counts_separately() {
        let mut n = StorageNode::new(NodeId(0), EngineConfig::default(), 1);
        n.apply_write(K, &Mutation::single("f", b"old".to_vec()), Timestamp(1));
        let repair = Mutation::single("f", b"new".to_vec()).into_row(Timestamp(5));
        n.apply_repair(K, &repair);
        assert_eq!(n.serve_read(K).unwrap().latest_timestamp(), Timestamp(5));
        assert_eq!(n.counters().repairs, 1);
        assert_eq!(n.counters().writes, 1);
    }

    #[test]
    fn service_slots_limit_concurrency_per_stage() {
        let mut n = StorageNode::new(NodeId(0), EngineConfig::default(), 2);
        assert!(n.try_start_work(dummy_read(1)).is_some());
        assert!(n.try_start_work(dummy_read(2)).is_some());
        assert_eq!(n.busy_slots(Stage::Read), 2);
        // Third read queues.
        assert!(n.try_start_work(dummy_read(3)).is_none());
        assert_eq!(n.queue_len(Stage::Read), 1);
        assert_eq!(n.counters().queued, 1);
        // Finishing one unit of work hands the slot to the queued message.
        let next = n.finish_work(Stage::Read);
        assert_eq!(next, Some(dummy_read(3)));
        assert_eq!(n.busy_slots(Stage::Read), 2);
        assert_eq!(n.queue_len(Stage::Read), 0);
        // Finishing with an empty queue frees the slot.
        assert!(n.finish_work(Stage::Read).is_none());
        assert_eq!(n.busy_slots(Stage::Read), 1);
        assert!(n.finish_work(Stage::Read).is_none());
        assert_eq!(n.busy_slots(Stage::Read), 0);
    }

    #[test]
    fn read_and_write_stages_are_independent() {
        // A saturated mutation stage must not block reads — the property that
        // lets a replica serve stale data while a mutation is still queued.
        let mut n = StorageNode::new(NodeId(0), EngineConfig::default(), 1);
        assert!(n.try_start_work(dummy_write(1)).is_some());
        assert!(n.try_start_work(dummy_write(2)).is_none()); // queued behind write 1
        assert_eq!(n.busy_slots(Stage::Write), 1);
        assert_eq!(n.queue_len(Stage::Write), 1);
        // Reads still start immediately.
        assert!(n.try_start_work(dummy_read(3)).is_some());
        assert_eq!(n.busy_slots(Stage::Read), 1);
        assert_eq!(n.queue_len(Stage::Read), 0);
        // Finishing the read does not touch the write stage.
        assert!(n.finish_work(Stage::Read).is_none());
        assert_eq!(n.busy_slots(Stage::Write), 1);
        assert_eq!(n.finish_work(Stage::Write), Some(dummy_write(2)));
    }

    #[test]
    fn stage_classification() {
        assert_eq!(Stage::of(&dummy_read(1)), Some(Stage::Read));
        assert_eq!(Stage::of(&dummy_write(1)), Some(Stage::Write));
        assert_eq!(
            Stage::of(&Message::RepairWrite {
                key: K,
                row: std::sync::Arc::new(Row::new())
            }),
            Some(Stage::Write)
        );
        assert_eq!(
            Stage::of(&Message::ReplicaWriteAck {
                op: OpId(1),
                from: NodeId(0)
            }),
            None
        );
    }

    #[test]
    fn concurrency_clamped_to_one() {
        let n = StorageNode::new(NodeId(0), EngineConfig::default(), 0);
        assert_eq!(n.concurrency(), 1);
    }

    #[test]
    fn fifo_queue_order() {
        let mut n = StorageNode::new(NodeId(0), EngineConfig::default(), 1);
        assert!(n.try_start_work(dummy_read(1)).is_some());
        assert!(n.try_start_work(dummy_read(2)).is_none());
        assert!(n.try_start_work(dummy_read(3)).is_none());
        assert_eq!(n.finish_work(Stage::Read), Some(dummy_read(2)));
        assert_eq!(n.finish_work(Stage::Read), Some(dummy_read(3)));
        assert_eq!(n.finish_work(Stage::Read), None);
    }

    #[test]
    fn write_stage_telemetry_tracks_arrivals_service_and_queue() {
        let mut n = StorageNode::new(NodeId(0), EngineConfig::default(), 1);
        assert_eq!(n.write_stage_telemetry(), WriteStageTelemetry::default());
        // Two writes arrive: the first starts, the second queues.
        assert!(n.try_start_work(dummy_write(1)).is_some());
        n.note_service_time(Stage::Write, 0.5);
        assert!(n.try_start_work(dummy_write(2)).is_none());
        let t = n.write_stage_telemetry();
        assert_eq!(t.arrivals, 2);
        assert_eq!(t.completed, 0);
        assert_eq!(t.queued, 1);
        assert_eq!(t.busy, 1);
        assert!((t.service_ms_total - 0.5).abs() < 1e-12);
        assert!((t.service_ms_sq_total - 0.25).abs() < 1e-12);
        // Finishing the first hands the slot to the second.
        assert_eq!(n.finish_work(Stage::Write), Some(dummy_write(2)));
        n.note_service_time(Stage::Write, 1.5);
        let t = n.write_stage_telemetry();
        assert_eq!(t.completed, 1);
        assert_eq!(t.queued, 0);
        assert!((t.service_ms_total - 2.0).abs() < 1e-12);
        // Reads do not touch write-stage telemetry.
        assert!(n.try_start_work(dummy_read(3)).is_some());
        n.note_service_time(Stage::Read, 9.0);
        assert!(n.finish_work(Stage::Read).is_none());
        let t = n.write_stage_telemetry();
        assert_eq!(t.arrivals, 2);
        assert!((t.service_ms_total - 2.0).abs() < 1e-12);
        // Negative samples clamp to zero rather than corrupting the sums.
        n.note_service_time(Stage::Write, -3.0);
        assert!((n.write_stage_telemetry().service_ms_total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn digest_reflects_latest_write() {
        let mut n = StorageNode::new(NodeId(0), EngineConfig::default(), 1);
        assert_eq!(n.digest(K), None);
        n.apply_write(K, &Mutation::single("f", b"v".to_vec()), Timestamp(9));
        assert_eq!(n.digest(K), Some(Timestamp(9)));
    }
}

//! Interned row keys: a compact, copyable [`KeyId`] plus the [`KeyTable`]
//! mapping ids back to the human-readable key strings.
//!
//! Every message, pending-operation record and completion on the hot path
//! used to carry a `String` key, cloned roughly ten times per simulated
//! operation as it flowed coordinator → replicas → acknowledgements →
//! completion. Interning replaces all of that with a 4-byte `Copy` id: the
//! string is allocated exactly once (at workload setup or on a key's first
//! appearance) and everything downstream — events, queues, the heavy-hitter
//! sketch, the per-key backlog probe, the hot-set decisions — moves ids.
//!
//! Ids are dense (`0..len`), assigned in interning order, which makes them
//! directly usable as indices into flat side tables (`Vec<Timestamp>` for the
//! latest-acknowledged map, `Vec<ReplicaSet>` for the placement cache). A
//! workload that interns its record population in order gets
//! `KeyId(i) == record i`, so the YCSB runner's index → key mapping is a
//! plain array lookup with no hashing at all.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A compact interned row key: 4 bytes, `Copy`, hashable, ordered by
/// interning order (not lexicographically — resolve through the
/// [`KeyTable`] when name order matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeyId(pub u32);

impl KeyId {
    /// The id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key#{}", self.0)
    }
}

/// The bidirectional key interner: name → id and id → name.
///
/// Interning an already-known name is a single hash lookup with no
/// allocation; a new name allocates its `String` exactly once. Ids are never
/// recycled — the table only grows, bounded by the number of distinct keys
/// the workload touches (YCSB populations are fixed up front).
#[derive(Debug, Default, Clone)]
pub struct KeyTable {
    names: Vec<String>,
    ids: HashMap<String, KeyId>,
}

impl KeyTable {
    /// An empty table.
    pub fn new() -> Self {
        KeyTable::default()
    }

    /// A table pre-sized for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        KeyTable {
            names: Vec::with_capacity(capacity),
            ids: HashMap::with_capacity(capacity),
        }
    }

    /// Number of interned keys (also the exclusive upper bound of all ids).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning its (possibly freshly assigned) id.
    ///
    /// # Panics
    /// Panics if the table would exceed `u32::MAX` keys.
    pub fn intern(&mut self, name: &str) -> KeyId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = KeyId(u32::try_from(self.names.len()).expect("key table full"));
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The id of an already-interned name, if any (never interns).
    pub fn get(&self, name: &str) -> Option<KeyId> {
        self.ids.get(name).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    /// Panics if the id was not produced by this table.
    pub fn resolve(&self, id: KeyId) -> &str {
        &self.names[id.index()]
    }

    /// The name behind an id, or `None` for a foreign id.
    pub fn try_resolve(&self, id: KeyId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = KeyTable::new();
        let a = t.intern("user0");
        let b = t.intern("user1");
        assert_eq!(a, KeyId(0));
        assert_eq!(b, KeyId(1));
        // Re-interning returns the existing id.
        assert_eq!(t.intern("user0"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "user0");
        assert_eq!(t.resolve(b), "user1");
        assert_eq!(t.get("user1"), Some(b));
        assert_eq!(t.get("user2"), None);
    }

    #[test]
    fn try_resolve_handles_foreign_ids() {
        let mut t = KeyTable::new();
        let a = t.intern("k");
        assert_eq!(t.try_resolve(a), Some("k"));
        assert_eq!(t.try_resolve(KeyId(99)), None);
    }

    #[test]
    fn key_id_index_and_display() {
        assert_eq!(KeyId(7).index(), 7);
        assert_eq!(KeyId(7).to_string(), "key#7");
        // Dense ids order by interning order.
        assert!(KeyId(1) < KeyId(2));
    }

    #[test]
    fn interning_order_matches_insertion() {
        let mut t = KeyTable::with_capacity(8);
        for i in 0..8u32 {
            assert_eq!(t.intern(&format!("user{i}")), KeyId(i));
        }
        assert!(!t.is_empty());
    }
}

//! Accrual failure detection: per-node heartbeat inter-arrival history
//! yielding a continuous *suspicion level* instead of a binary dead/alive
//! verdict.
//!
//! The shape follows the φ accrual detector (Hayashibara et al.) that
//! Cassandra ships: every message observed from a peer is a heartbeat; the
//! detector keeps a sliding window of inter-arrival times and, when asked,
//! reports how implausible the current silence is under the observed arrival
//! process. With exponentially distributed inter-arrivals of mean `m`, the
//! probability that a gap exceeds `t` is `exp(-t/m)`, so
//!
//! ```text
//! φ(t) = -log10 P(gap > t) = t / (m · ln 10)
//! ```
//!
//! φ ≈ 1 means the silence had a 10% chance under normal operation, φ ≈ 8 a
//! 10⁻⁸ chance — the conventional Cassandra convict threshold. Unlike a
//! timeout, the scale adapts to each peer's own cadence: a chatty replica is
//! suspected after milliseconds of silence, a quiet one only after its usual
//! lull has long passed.
//!
//! The detector is pure bookkeeping over the injected clock — no wall-clock
//! reads, no RNG — so it is deterministic under the simulation and cheap
//! enough to consult on every coordinator decision.

use harmony_sim::clock::SimTime;
use std::collections::VecDeque;

/// Sliding-window size of retained inter-arrival samples, matching
/// Cassandra's default sample window order of magnitude while keeping the
/// state small enough to clone freely in the model checker.
const WINDOW: usize = 32;

/// Heartbeat history and suspicion computation for one peer.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatHistory {
    /// When the last heartbeat arrived, if any.
    last: Option<SimTime>,
    /// Recent inter-arrival times, seconds, oldest first.
    intervals: VecDeque<f64>,
}

impl HeartbeatHistory {
    /// A history with no observations: suspicion is zero until the peer has
    /// produced at least two heartbeats (one interval).
    pub fn new() -> Self {
        HeartbeatHistory::default()
    }

    /// Records a heartbeat at `now`. Out-of-order observations (possible when
    /// message latencies reorder deliveries) are folded in as zero-length
    /// intervals rather than negative ones.
    pub fn record(&mut self, now: SimTime) {
        if let Some(prev) = self.last {
            if now >= prev {
                let dt = now.saturating_sub(prev).as_secs_f64();
                self.intervals.push_back(dt);
                if self.intervals.len() > WINDOW {
                    self.intervals.pop_front();
                }
                self.last = Some(now);
            }
            // now < prev: a late-arriving heartbeat carries no new liveness
            // information beyond what the newer one already proved.
        } else {
            self.last = Some(now);
        }
    }

    /// Number of retained inter-arrival samples.
    pub fn samples(&self) -> usize {
        self.intervals.len()
    }

    /// When the last heartbeat was observed.
    pub fn last_heartbeat(&self) -> Option<SimTime> {
        self.last
    }

    /// The φ suspicion level at `now`: 0 while the history is too short to
    /// judge, rising with the current silence measured against the observed
    /// mean inter-arrival time.
    pub fn suspicion(&self, now: SimTime) -> f64 {
        let Some(last) = self.last else {
            return 0.0;
        };
        if self.intervals.is_empty() {
            return 0.0;
        }
        let mean = self.intervals.iter().sum::<f64>() / self.intervals.len() as f64;
        // A degenerate all-zero window (heartbeats in the same instant) gives
        // no usable scale; fall back to a conservative floor so a peer that
        // burst once and went silent still gets suspected eventually.
        let mean = mean.max(1e-6);
        let elapsed = now.saturating_sub(last).as_secs_f64();
        elapsed / (mean * std::f64::consts::LN_10)
    }

    /// Convenience predicate: `suspicion(now) >= threshold`.
    pub fn suspected(&self, now: SimTime, threshold: f64) -> bool {
        self.suspicion(now) >= threshold
    }

    /// Canonical digest fragment for state fingerprinting: last-heartbeat
    /// time plus the retained window, formatted deterministically.
    pub fn digest_fragment(&self) -> String {
        format!("{:?}|{:?}", self.last, self.intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beats(history: &mut HeartbeatHistory, times_ms: &[u64]) {
        for &t in times_ms {
            history.record(SimTime::from_millis(t));
        }
    }

    #[test]
    fn no_history_means_no_suspicion() {
        let h = HeartbeatHistory::new();
        assert_eq!(h.suspicion(SimTime::from_secs(100)), 0.0);
        assert!(!h.suspected(SimTime::from_secs(100), 0.5));
    }

    #[test]
    fn single_heartbeat_is_not_enough_to_judge() {
        let mut h = HeartbeatHistory::new();
        h.record(SimTime::from_millis(10));
        assert_eq!(h.samples(), 0);
        assert_eq!(h.suspicion(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn suspicion_grows_with_silence() {
        let mut h = HeartbeatHistory::new();
        beats(&mut h, &[0, 100, 200, 300, 400]);
        // Right at the last heartbeat: no silence, no suspicion.
        assert_eq!(h.suspicion(SimTime::from_millis(400)), 0.0);
        // One mean interval of silence: φ = 1/ln10 ≈ 0.43.
        let one = h.suspicion(SimTime::from_millis(500));
        assert!((one - 1.0 / std::f64::consts::LN_10).abs() < 1e-9);
        // Much longer silence: monotonically more suspicious.
        let long = h.suspicion(SimTime::from_millis(2_400));
        assert!(long > one * 10.0, "long={long} one={one}");
        assert!(h.suspected(SimTime::from_millis(2_400), 8.0));
    }

    #[test]
    fn scale_adapts_to_the_peer_cadence() {
        // Same absolute silence (1 s), different cadences: the chatty peer is
        // far more suspicious than the slow one.
        let mut fast = HeartbeatHistory::new();
        beats(&mut fast, &[0, 10, 20, 30, 40]);
        let mut slow = HeartbeatHistory::new();
        beats(&mut slow, &[0, 1_000, 2_000, 3_000, 4_000]);
        let at_fast = fast.suspicion(SimTime::from_millis(40 + 1_000));
        let at_slow = slow.suspicion(SimTime::from_millis(4_000 + 1_000));
        assert!(at_fast > 50.0 * at_slow, "fast={at_fast} slow={at_slow}");
    }

    #[test]
    fn out_of_order_heartbeats_do_not_corrupt_the_window() {
        let mut h = HeartbeatHistory::new();
        beats(&mut h, &[0, 100, 200]);
        // A late-arriving older heartbeat changes nothing.
        h.record(SimTime::from_millis(150));
        assert_eq!(h.last_heartbeat(), Some(SimTime::from_millis(200)));
        assert_eq!(h.samples(), 2);
        assert!(h.suspicion(SimTime::from_millis(300)).is_finite());
    }

    #[test]
    fn window_is_bounded() {
        let mut h = HeartbeatHistory::new();
        for i in 0..10_000u64 {
            h.record(SimTime::from_millis(i * 10));
        }
        assert!(h.samples() <= WINDOW);
    }

    #[test]
    fn burst_then_silence_still_gets_suspected() {
        // All heartbeats in one instant: the mean interval collapses to the
        // floor instead of zero, so suspicion still rises with silence.
        let mut h = HeartbeatHistory::new();
        beats(&mut h, &[50, 50, 50]);
        assert!(h.suspected(SimTime::from_secs(10), 8.0));
    }

    #[test]
    fn digest_fragment_is_deterministic() {
        let mut a = HeartbeatHistory::new();
        let mut b = HeartbeatHistory::new();
        beats(&mut a, &[0, 100, 250]);
        beats(&mut b, &[0, 100, 250]);
        assert_eq!(a.digest_fragment(), b.digest_fragment());
    }
}

//! The replicated cluster: coordinator logic, replica fan-out, asynchronous
//! propagation, read repair and ground-truth staleness accounting.
//!
//! The control flow reproduces Figure 1 of the paper. A client operation
//! reaches a coordinator node; the coordinator determines the replica set from
//! the token ring and the placement strategy, fans the request out, waits for
//! as many replies as the operation's consistency level requires, reconciles
//! responses by timestamp, answers the client, and asynchronously repairs
//! out-of-date replicas. Writes are always sent to *all* replicas but are
//! acknowledged to the client after the required count — the remaining
//! replicas converge asynchronously, which is exactly the propagation window
//! during which partial-quorum reads can return stale data.
//!
//! The per-operation path is allocation-free: keys are interned
//! ([`KeyId`], 4 bytes, `Copy`) so no `String` is ever cloned on the op
//! path; replica placement is memoised per key in a flat table
//! ([`PlacementCache`]) so steady-state lookups are an array index instead
//! of a ring walk; and mutation/repair payloads are `Arc`-shared across the
//! replica fan-out so an RF = 3 write bumps a refcount three times instead
//! of deep-cloning a `BTreeMap` three times.

use crate::config::StoreConfig;
use crate::consistency::ConsistencyLevel;
use crate::detector::HeartbeatHistory;
use crate::hashring::HashRing;
use crate::keys::{KeyId, KeyTable};
use crate::messages::{Message, OpId, OpKind, StoreEvent};
use crate::node::{NodeCounters, Stage, StorageNode, WriteStageTelemetry};
use crate::placement::{PlacementCache, ReplicaSet, MAX_RF};
use crate::types::{Mutation, Row, Timestamp};
use harmony_chaos::{FaultEvent, FaultState};
use harmony_obs::registry::{series_name, MetricsRegistry};
use harmony_obs::{FlightRecorder, OpTracer, SpanKind};
use harmony_sim::clock::SimTime;
use harmony_sim::context::EventCtx;
use harmony_sim::rng::RngFactory;
use harmony_sim::service::ServiceModel;
use harmony_sim::topology::{Location, NetworkModel, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Guards a backlog value computed by the store's telemetry scans: a negative
/// backlog is a sign bug upstream (queue length, service mean and fault
/// factor are all non-negative quantities), so debug builds fail loudly here
/// — at the source — while release builds clamp and keep serving, matching
/// the `stale_probability_saturating` convention.
fn non_negative_backlog(ms: f64) -> f64 {
    debug_assert!(ms >= 0.0, "negative backlog computed by the store: {ms} ms");
    ms.max(0.0)
}

/// A finished client operation, reported when its reply reaches the client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Operation id.
    pub op: OpId,
    /// Read or write.
    pub kind: OpKind,
    /// The (interned) key the operation touched.
    pub key: KeyId,
    /// When the client submitted the operation.
    pub submitted_at: SimTime,
    /// When the reply reached the client.
    pub completed_at: SimTime,
    /// The consistency level the operation ran at.
    pub consistency: ConsistencyLevel,
    /// How many replicas participated synchronously.
    pub replicas_contacted: usize,
    /// For reads: the reconciled row returned to the client (shared with
    /// any repair traffic of the same read, never deep-copied per replica).
    pub result: Option<Arc<Row>>,
    /// For reads: the newest timestamp in the returned row.
    pub returned_timestamp: Timestamp,
    /// For reads: the newest timestamp acknowledged to any client *before*
    /// this read was submitted (the freshness the read should have seen).
    pub expected_timestamp: Timestamp,
    /// For reads: ground-truth staleness (`returned < expected`).
    pub stale: bool,
    /// True if the operation failed instead of completing: no reachable
    /// replica (unavailable), its coordinator crashed, or it stalled past the
    /// chaos-mode timeout. Aborted completions carry no data and are counted
    /// separately from reads/writes. Always false on a healthy cluster.
    pub aborted: bool,
}

impl Completion {
    /// Operation latency as seen by the client.
    pub fn latency(&self) -> SimTime {
        self.completed_at.saturating_sub(self.submitted_at)
    }
}

/// Cluster-wide cumulative statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTotals {
    /// Reads submitted.
    pub reads_submitted: u64,
    /// Writes submitted.
    pub writes_submitted: u64,
    /// Reads completed (replied to the client).
    pub reads_completed: u64,
    /// Writes completed (replied to the client).
    pub writes_completed: u64,
    /// Completed reads that returned stale data (ground truth).
    pub stale_reads: u64,
    /// Repair messages issued (read repair + background repair).
    pub repairs_issued: u64,
    /// Operations aborted by faults (unavailable replica sets, coordinator
    /// crashes, chaos-mode stall timeouts). Zero on a healthy cluster.
    pub ops_aborted: u64,
    /// Messages that arrived somewhere they could not legally be handled
    /// (e.g. coordination traffic routed into a replica service slot, or a
    /// replica-work message surfacing on the coordination path after a
    /// membership change). These used to panic the whole run; under fault
    /// schedules they now degrade into a counted drop. Zero on a healthy
    /// cluster.
    pub protocol_drops: u64,
    /// Hinted mutations evicted by the per-origin hint cap
    /// ([`StoreConfig::hint_cap_per_origin`]). Zero while the cap is
    /// disabled or never exceeded.
    pub hints_evicted: u64,
    /// Anti-entropy rounds whose digest exchange was actually initiated
    /// (rounds skipped for lack of a reachable partner do not count).
    pub ae_rounds: u64,
    /// Rows streamed by anti-entropy repair (push and pull directions).
    pub ae_rows_streamed: u64,
}

/// Replica read responses collected inline (no per-read heap allocation):
/// at most [`MAX_RF`] `(replica, row)` pairs.
#[derive(Debug, Clone)]
struct ResponseSet {
    nodes: [NodeId; MAX_RF],
    rows: [Option<Arc<Row>>; MAX_RF],
    len: u8,
}

impl Default for ResponseSet {
    fn default() -> Self {
        ResponseSet {
            nodes: [NodeId(0); MAX_RF],
            rows: Default::default(),
            len: 0,
        }
    }
}

impl ResponseSet {
    fn push(&mut self, node: NodeId, row: Option<Arc<Row>>) {
        let i = self.len as usize;
        debug_assert!(i < MAX_RF, "more responses than replicas");
        self.nodes[i] = node;
        self.rows[i] = row;
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    fn iter(&self) -> impl Iterator<Item = (NodeId, Option<&Arc<Row>>)> {
        self.nodes[..self.len as usize]
            .iter()
            .zip(self.rows[..self.len as usize].iter())
            .map(|(n, r)| (*n, r.as_ref()))
    }
}

#[derive(Debug, Clone)]
struct PendingRead {
    key: KeyId,
    coordinator: NodeId,
    submitted_at: SimTime,
    consistency: ConsistencyLevel,
    required: usize,
    contacted: ReplicaSet,
    replica_set: ReplicaSet,
    responses: ResponseSet,
    expected_ts: Timestamp,
    replied: bool,
}

#[derive(Debug, Clone)]
struct PendingWrite {
    key: KeyId,
    coordinator: NodeId,
    submitted_at: SimTime,
    consistency: ConsistencyLevel,
    required: usize,
    replica_count: usize,
    acks: usize,
    timestamp: Timestamp,
    replied: bool,
}

/// The simulated replicated key-value store.
///
/// `Clone` is load-bearing: the `harmony-check` schedule explorer snapshots
/// the whole cluster (nodes, queues, pending operations, fault state) to
/// backtrack over alternative delivery orders and crash placements. Keep
/// every field cheaply and *independently* cloneable — no shared interior
/// mutability across clones.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: StoreConfig,
    topology: Topology,
    network: NetworkModel,
    ring: HashRing,
    nodes: Vec<StorageNode>,
    read_service: ServiceModel,
    write_service: ServiceModel,
    rng: StdRng,
    next_op: u64,
    last_timestamp: u64,
    /// The key interner: names in, 4-byte `Copy` ids out.
    key_table: KeyTable,
    /// Memoised per-key replica sets (flat, indexed by `KeyId`).
    placement: PlacementCache,
    pending_reads: HashMap<OpId, PendingRead>,
    pending_writes: HashMap<OpId, PendingWrite>,
    staged_completions: HashMap<OpId, Completion>,
    /// Newest acknowledged timestamp per key, indexed by `KeyId` (dense ids
    /// make this a flat array instead of a string-keyed map).
    latest_acked: Vec<Timestamp>,
    next_coordinator: usize,
    totals: ClusterTotals,
    probe_seed: u64,
    probe_count: std::cell::Cell<u64>,
    /// Keys of client writes since the last monitoring drain — the sample
    /// stream feeding the monitor's heavy-hitter sketch. Bounded so an
    /// unmonitored cluster cannot grow it without limit.
    write_key_samples: std::cell::RefCell<Vec<KeyId>>,
    /// Liveness, partition, slow-down and membership state driven by the
    /// fault schedule. A fresh state answers "healthy" everywhere, so a run
    /// that never applies a fault behaves byte-identically to one built
    /// before the chaos layer existed.
    faults: FaultState,
    /// Hinted handoff: mutations addressed to a node that was down or
    /// unreachable, stored per destination as `(origin, message)` and
    /// replayed into its write stage on restart or after a partition heals —
    /// but never *across* an active cut (a hint whose origin sits on the
    /// other side stays stored until the heal, like the coordinator-held
    /// hints it models).
    hints: Vec<Vec<(NodeId, Message)>>,
    /// `true` is the real protocol. `false` silently drops every mutation
    /// that should have been stored as a hint — an *intentionally buggy*
    /// mutant kept as a mutation-testing target for the `harmony-check`
    /// schedule explorer (see [`Cluster::set_hinted_handoff_enabled`]).
    hinted_handoff_enabled: bool,
    /// Join + decommission count at the moment the active partition was
    /// installed. The heal re-runs anti-entropy only when churn happened
    /// *during* the cut (streams that could not cross it); churn that
    /// completed before the partition already converged and must not be
    /// re-streamed at heal time — that would erase the post-heal staleness
    /// dynamics the partition scenarios measure.
    partition_churn_baseline: u64,
    /// Round-robin cursor of the periodic anti-entropy rounds: index of the
    /// node that initiates the next round, so every serving node takes turns
    /// offering its tables for repair. Never advances while the subsystem is
    /// idle (disabled runs stay byte-identical).
    ae_cursor: usize,
    /// Accrual failure detector: one heartbeat history per node slot. Empty
    /// histories cost nothing; they only accumulate state while
    /// [`StoreConfig::failure_detector_enabled`] is set.
    detectors: Vec<HeartbeatHistory>,
    /// Per-op tracing + flight recorder ([`harmony-obs`]). `None` (the
    /// default) reduces every hook to one branch, and the golden pins stay
    /// byte-identical. Boxed plain data, no `Arc` — a cloned cluster gets an
    /// independent copy, so checker backtracking stays sound.
    obs: Option<Box<ClusterObs>>,
}

/// The cluster-side tracing state: the live tracer plus the flight recorder
/// finished traces land in.
#[derive(Debug, Clone)]
pub struct ClusterObs {
    /// The sampled per-op tracer.
    pub tracer: OpTracer,
    /// Retained slowest/aborted traces.
    pub recorder: FlightRecorder,
}

/// Upper bound on buffered write-key samples between monitoring sweeps.
/// Shared by every backend feeding the monitor's heavy-hitter sketch (the
/// real-threaded live cluster imports it too) so the sampling policy cannot
/// drift between them.
pub const WRITE_KEY_SAMPLE_CAP: usize = 1 << 16;

impl Cluster {
    /// Builds a cluster over `topology` with the given network behaviour.
    ///
    /// # Panics
    /// Panics if the topology is empty or the configuration is invalid.
    pub fn new(
        config: StoreConfig,
        topology: Topology,
        network: NetworkModel,
        rng_factory: RngFactory,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid store configuration: {e}"));
        assert!(!topology.is_empty(), "cluster needs at least one node");
        let ring = HashRing::new(topology.len(), config.vnodes_per_node);
        let nodes = topology
            .nodes()
            .map(|id| StorageNode::new(id, config.engine, config.node_concurrency))
            .collect();
        let read_service = ServiceModel::exponential_ms(config.read_service_ms)
            .with_node_factors(config.node_service_factors.clone());
        let write_service =
            ServiceModel::erlang_ms(config.write_service_ms, config.write_service_shape)
                .with_node_factors(config.node_service_factors.clone());
        let node_count = topology.len();
        Cluster {
            rng: rng_factory.stream("store-cluster"),
            config,
            topology,
            network,
            ring,
            nodes,
            faults: FaultState::new(node_count),
            hints: vec![Vec::new(); node_count],
            hinted_handoff_enabled: true,
            partition_churn_baseline: 0,
            ae_cursor: 0,
            detectors: vec![HeartbeatHistory::new(); node_count],
            read_service,
            write_service,
            next_op: 0,
            last_timestamp: 0,
            key_table: KeyTable::new(),
            placement: PlacementCache::new(),
            pending_reads: HashMap::new(),
            pending_writes: HashMap::new(),
            staged_completions: HashMap::new(),
            latest_acked: Vec::new(),
            next_coordinator: 0,
            totals: ClusterTotals::default(),
            probe_seed: harmony_sim::rng::mix(rng_factory.seed(), 0x70726f6265), // "probe"
            probe_count: std::cell::Cell::new(0),
            write_key_samples: std::cell::RefCell::new(Vec::new()),
            obs: None,
        }
    }

    // ---- observability ----------------------------------------------------

    /// Enables sampled per-op tracing: every `sample_every`-th op gets a full
    /// causal timeline, and the flight recorder retains the `keep_slowest`
    /// slowest completed plus up to `abort_cap` aborted traces. Sampling is
    /// a deterministic op-id modulo — no RNG draw — so an enabled tracer
    /// never perturbs the simulation's random streams.
    pub fn enable_tracing(&mut self, sample_every: u64, keep_slowest: usize, abort_cap: usize) {
        self.obs = Some(Box::new(ClusterObs {
            tracer: OpTracer::new(sample_every),
            recorder: FlightRecorder::new(keep_slowest, abort_cap),
        }));
    }

    /// The tracing state, if tracing is enabled.
    pub fn obs(&self) -> Option<&ClusterObs> {
        self.obs.as_deref()
    }

    /// Detaches and returns the tracing state (tracing stops).
    pub fn take_obs(&mut self) -> Option<Box<ClusterObs>> {
        self.obs.take()
    }

    /// The current fault epoch: how many fault events have been applied.
    pub fn fault_epoch(&self) -> u64 {
        self.faults.counters().total()
    }

    /// Appends a client-side annotation (retry/hedge branch) to an op's
    /// trace. No-op unless tracing is enabled and the op is sampled — the
    /// experiment runner calls this for the protocol branches it drives.
    pub fn trace_note(
        &mut self,
        op: OpId,
        now: SimTime,
        kind: SpanKind,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(obs) = self.obs.as_mut() {
            if obs.tracer.samples(op.0) {
                obs.tracer.event(
                    op.0,
                    now.0 / 1_000,
                    harmony_obs::CLIENT_NODE,
                    kind,
                    detail(),
                );
            }
        }
    }

    /// Exports the cluster's protocol counters into a metrics registry
    /// (collect-on-scrape: nothing here runs during the simulation).
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let t = &self.totals;
        for (name, value) in [
            ("harmony_reads_submitted_total", t.reads_submitted),
            ("harmony_reads_completed_total", t.reads_completed),
            ("harmony_writes_submitted_total", t.writes_submitted),
            ("harmony_writes_completed_total", t.writes_completed),
            ("harmony_stale_reads_total", t.stale_reads),
            ("harmony_repairs_issued_total", t.repairs_issued),
            ("harmony_ops_aborted_total", t.ops_aborted),
            ("harmony_protocol_drops_total", t.protocol_drops),
            ("harmony_hints_evicted_total", t.hints_evicted),
            ("harmony_ae_rounds_total", t.ae_rounds),
            ("harmony_ae_rows_streamed_total", t.ae_rows_streamed),
        ] {
            registry.counter(name).add(value);
        }
        registry
            .counter("harmony_fault_epoch")
            .add(self.fault_epoch());
        registry
            .gauge("harmony_live_nodes")
            .set(self.live_node_count() as f64);
        let hinted: usize = self.hints.iter().map(Vec::len).sum();
        registry
            .gauge("harmony_hinted_mutations_pending")
            .set(hinted as f64);
        for (node, counters) in self.node_counters().into_iter().enumerate() {
            let label = node.to_string();
            for (name, value) in [
                ("harmony_node_reads_served_total", counters.reads),
                ("harmony_node_writes_applied_total", counters.writes),
                ("harmony_node_repairs_applied_total", counters.repairs),
                ("harmony_node_messages_queued_total", counters.queued),
            ] {
                registry
                    .counter(&series_name(name, &[("node", &label)]))
                    .add(value);
            }
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The network model in effect.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Number of storage nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cumulative totals (reads, writes, stale reads, repairs).
    pub fn totals(&self) -> ClusterTotals {
        self.totals
    }

    /// The current fault/membership state (liveness, partitions, slow
    /// factors, join/decommission counters).
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// Number of nodes currently serving traffic (alive ring members).
    pub fn live_node_count(&self) -> usize {
        self.faults.serving_count()
    }

    /// Number of hinted mutations waiting for `node` to come back.
    pub fn hinted_mutations(&self, node: NodeId) -> usize {
        self.hints.get(node.index()).map(Vec::len).unwrap_or(0)
    }

    /// Interns a key name, returning its compact id. Idempotent; the id is
    /// stable for the cluster's lifetime. Workloads intern their record
    /// population up front and move only ids afterwards.
    pub fn intern_key(&mut self, name: &str) -> KeyId {
        let id = self.key_table.intern(name);
        if self.latest_acked.len() <= id.index() {
            self.latest_acked.resize(id.index() + 1, Timestamp::ZERO);
        }
        id
    }

    /// The id of an already-interned key name, if any.
    pub fn key_id(&self, name: &str) -> Option<KeyId> {
        self.key_table.get(name)
    }

    /// The name behind an interned key id.
    pub fn key_name(&self, id: KeyId) -> &str {
        self.key_table.resolve(id)
    }

    /// Number of distinct keys interned so far.
    pub fn key_count(&self) -> usize {
        self.key_table.len()
    }

    /// Per-node counters, indexed by node id — what the monitoring module
    /// collects ("nodetool" analogue).
    pub fn node_counters(&self) -> Vec<NodeCounters> {
        self.nodes.iter().map(|n| n.counters()).collect()
    }

    /// Mean pairwise network latency in milliseconds, from the analytic model
    /// (the long-run average a perfect monitor would converge to).
    pub fn mean_network_latency_ms(&self) -> f64 {
        self.network.mean_pairwise_ms(&self.topology)
    }

    /// One "ping sweep": samples the latency of a handful of random node
    /// pairs and returns their mean, the way the paper's monitoring module
    /// measures `Ln`. Unlike [`Cluster::mean_network_latency_ms`] this
    /// fluctuates from sweep to sweep, so latency spikes (the EC2 behaviour
    /// of Figure 4b) are visible to the controller.
    pub fn probe_network_latency_ms(&self, pairs: usize) -> f64 {
        let n = self.topology.len();
        if n < 2 || pairs == 0 {
            return self.mean_network_latency_ms();
        }
        let count = self.probe_count.get();
        self.probe_count.set(count + 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(harmony_sim::rng::mix(
            self.probe_seed,
            count.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        let mut total = 0.0;
        for _ in 0..pairs {
            let a = NodeId(rng.gen_range(0..n as u32));
            let mut b = NodeId(rng.gen_range(0..n as u32));
            if a == b {
                b = NodeId((b.0 + 1) % n as u32);
            }
            total += self
                .network
                .sample(&self.topology, a, b, &mut rng)
                .as_millis_f64();
        }
        total / pairs as f64
    }

    /// Per-node mutation-stage backlog: the expected extra delay
    /// (milliseconds) a newly arriving replica write waits on each node before
    /// being applied — the `nodetool tpstats` "pending MutationStage tasks"
    /// analogue, one entry per *serving* node. Crashed and decommissioned
    /// nodes are skipped entirely (no telemetry is not a 0 ms backlog: a
    /// dead replica's zero would drag the mean and the dispersion down and
    /// blind the controller exactly when replicas are lost); the *dispersion*
    /// of the surviving values across replicas is what widens the staleness
    /// window under saturation.
    pub fn replica_backlog_ms(&self) -> Vec<f64> {
        let concurrency = self.config.node_concurrency.max(1) as f64;
        self.nodes
            .iter()
            .filter(|n| self.faults.is_serving(n.id))
            .map(|n| {
                let mean_ms =
                    self.write_service.mean_ms_for(n.id) * self.faults.service_factor(n.id);
                if mean_ms <= 0.0 {
                    0.0
                } else {
                    non_negative_backlog(n.queue_len(Stage::Write) as f64 / concurrency * mean_ms)
                }
            })
            .collect()
    }

    /// Mean per-node mutation-stage backlog (milliseconds) over the serving
    /// nodes; see [`Cluster::replica_backlog_ms`].
    pub fn mutation_backlog_ms(&self) -> f64 {
        let backlogs = self.replica_backlog_ms();
        if backlogs.is_empty() {
            return 0.0;
        }
        backlogs.iter().sum::<f64>() / backlogs.len() as f64
    }

    /// Cumulative write-stage telemetry per node: arrival and completion
    /// counts plus accumulated sampled service times, the raw input of the
    /// M/G/1 write-stage model. The per-replica arrival rate and the measured
    /// service-time mean/variance are derived from deltas of these counters by
    /// the monitoring module.
    pub fn write_stage_telemetry(&self) -> Vec<WriteStageTelemetry> {
        self.nodes
            .iter()
            .map(|n| n.write_stage_telemetry())
            .collect()
    }

    /// Drains the buffered keys of client writes since the previous call —
    /// the observation stream of the monitor's heavy-hitter sketch. The
    /// buffer is bounded ([`WRITE_KEY_SAMPLE_CAP`]); under an absent or
    /// stalled monitor the overflow is dropped rather than accumulated.
    pub fn drain_write_key_samples(&self) -> Vec<KeyId> {
        std::mem::take(&mut *self.write_key_samples.borrow_mut())
    }

    /// Per-key mutation backlog for the given keys: for each key, the
    /// *deepest* per-replica pending-mutation backlog (milliseconds), i.e.
    /// the expected extra delay before the laggard replica of that key has
    /// applied everything queued for it. The laggard is what a partial read
    /// can hit, so it — not the mean — bounds the key's staleness window.
    /// One pass over each node's queue with direct `KeyId` indexing into a
    /// flat slot table (`O(nodes · queue + keys)`, no hashing), so a
    /// monitoring sweep stays cheap even with deep saturated queues and a
    /// large tracked set.
    pub fn per_key_backlog_ms(&self, keys: &[KeyId]) -> Vec<f64> {
        let concurrency = self.config.node_concurrency.max(1) as f64;
        // Flat KeyId -> requested-slot mapping; `u32::MAX` = not requested.
        let mut slot = vec![u32::MAX; self.key_table.len()];
        for (i, k) in keys.iter().enumerate() {
            if k.index() < slot.len() {
                slot[k.index()] = i as u32;
            }
        }
        let mut deepest = vec![0.0f64; keys.len()];
        let mut counts = vec![0usize; keys.len()];
        for node in &self.nodes {
            // A dead replica's queue moved to hints and cannot be read from
            // anyway — only serving replicas bound a key's staleness window.
            if !self.faults.is_serving(node.id) {
                continue;
            }
            for c in counts.iter_mut() {
                *c = 0;
            }
            for key in node.queued_write_keys() {
                if let Some(&s) = slot.get(key.index()) {
                    if s != u32::MAX {
                        counts[s as usize] += 1;
                    }
                }
            }
            let mean_ms =
                self.write_service.mean_ms_for(node.id) * self.faults.service_factor(node.id);
            for (i, &count) in counts.iter().enumerate() {
                deepest[i] =
                    deepest[i].max(non_negative_backlog(count as f64 * mean_ms / concurrency));
            }
        }
        deepest
    }

    /// The replica set (primary first) for a key under the configured
    /// placement strategy — the *uncached* reference walk. The op path uses
    /// [`Cluster::replicas_for_id`]; this entry point exists for tests,
    /// tools and cache-consistency checks.
    pub fn replicas_for(&self, key: &str) -> Vec<NodeId> {
        self.config.strategy.replicas_for(
            &self.ring,
            &self.topology,
            key,
            self.config.replication_factor,
        )
    }

    /// The memoised replica set for an interned key: an array lookup in
    /// steady state, one ring walk on a key's first operation.
    pub fn replicas_for_id(&mut self, key: KeyId) -> ReplicaSet {
        self.placement.replicas_for(
            key,
            self.key_table.resolve(key),
            self.config.strategy,
            &self.ring,
            &self.topology,
            self.config.replication_factor,
        )
    }

    /// Drops every memoised replica set. Called automatically by the elastic
    /// membership paths (join/decommission rebuild the ring and invalidate);
    /// public so tools mutating ring parameters out of band can do the same.
    pub fn invalidate_placement(&mut self) {
        self.placement.invalidate();
    }

    /// How many times the placement cache has been invalidated — exactly
    /// once per topology change (see the churn property tests).
    pub fn placement_invalidations(&self) -> u64 {
        self.placement.invalidations()
    }

    /// Direct access to a node (tests and tools).
    pub fn node(&self, id: NodeId) -> &StorageNode {
        &self.nodes[id.index()]
    }

    /// Bulk-loads a row onto every replica without going through the message
    /// layer. Used for the workload load phase, mirroring a YCSB `load` run
    /// that completes before the measured transaction phase starts.
    pub fn load_direct(&mut self, key: &str, mutation: &Mutation, timestamp: Timestamp) {
        let id = self.intern_key(key);
        let replicas = self.replicas_for_id(id);
        for node in replicas.as_slice() {
            self.nodes[node.index()]
                .engine_mut()
                .apply(id, mutation, timestamp);
        }
        let entry = &mut self.latest_acked[id.index()];
        if timestamp > *entry {
            *entry = timestamp;
        }
        self.last_timestamp = self.last_timestamp.max(timestamp.0);
    }

    /// Applies a mutation directly to one node's engine, bypassing the
    /// message layer — divergence-injection scaffolding for repair scenarios
    /// (tests and the checker build a known-stale replica with it, then
    /// prove anti-entropy closes the gap). Never part of the protocol.
    pub fn node_engine_apply(
        &mut self,
        node: NodeId,
        key: KeyId,
        mutation: &Mutation,
        timestamp: Timestamp,
    ) {
        self.nodes[node.index()]
            .engine_mut()
            .apply(key, mutation, timestamp);
        self.last_timestamp = self.last_timestamp.max(timestamp.0);
    }

    /// Raises the recorded client-acknowledged timestamp of `key` — the
    /// companion of [`Cluster::node_engine_apply`] for scenarios that
    /// declare an injected row "acknowledged" so the convergence predicates
    /// ([`Cluster::all_replicas_converged`], the checker's durability
    /// invariant) hold it against every replica.
    pub fn force_acked_ts(&mut self, key: KeyId, timestamp: Timestamp) {
        let entry = &mut self.latest_acked[key.index()];
        if timestamp > *entry {
            *entry = timestamp;
        }
    }

    fn alloc_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    fn alloc_timestamp(&mut self, now: SimTime) -> Timestamp {
        let candidate = now.as_nanos().max(self.last_timestamp + 1);
        self.last_timestamp = candidate;
        Timestamp(candidate)
    }

    fn pick_coordinator(&mut self) -> NodeId {
        // Clients connect to serving nodes only (their drivers track node
        // health); on a healthy cluster this is the round-robin it always
        // was. With every node down, any node is as good as any other — the
        // operation will be aborted as unavailable.
        let n = self.nodes.len();
        for _ in 0..n {
            let id = NodeId((self.next_coordinator % n) as u32);
            self.next_coordinator += 1;
            if self.faults.is_serving(id) {
                return id;
            }
        }
        NodeId((self.next_coordinator % n) as u32)
    }

    fn client_latency(&self) -> SimTime {
        SimTime::from_millis_f64(self.config.client_latency_ms)
    }

    fn link_latency(&mut self, from: NodeId, to: NodeId) -> SimTime {
        self.network.sample(&self.topology, from, to, &mut self.rng)
    }

    /// Samples the service time of `message` on `node` from the per-node
    /// service model, and threads the sampled duration into the node's
    /// write-stage telemetry (the monitoring module derives the measured
    /// service-time mean and variance from it).
    fn service_time(&mut self, node: NodeId, message: &Message) -> SimTime {
        let Some(stage) = Stage::of(message) else {
            return SimTime::ZERO;
        };
        let model = match stage {
            Stage::Read => &self.read_service,
            Stage::Write => &self.write_service,
        };
        // No zero-mean short-circuit: `sample` returns ZERO itself while
        // still drawing its RNG inputs, keeping the event trace aligned
        // across configurations that differ only in a zeroed service time.
        let mut service = model.sample(node, &mut self.rng);
        let factor = self.faults.service_factor(node);
        if factor != 1.0 {
            service = service.scale(factor);
        }
        self.nodes[node.index()].note_service_time(stage, service.as_millis_f64());
        service
    }

    /// Sends replica work across the node network, or stores it as a hint
    /// when the destination is down or unreachable from `from` — the single
    /// choke point that keeps mutations durable across crashes and
    /// partitions. Returns true if the message was actually sent (false =
    /// hinted), so callers count live deliveries without re-deriving the
    /// reachability predicate.
    fn send_replica_work<C: EventCtx<StoreEvent>>(
        &mut self,
        from: NodeId,
        dest: NodeId,
        message: Message,
        ctx: &mut C,
    ) -> bool {
        if self.faults.reachable(from, dest) {
            let latency = self.link_latency(from, dest);
            ctx.emit(latency, StoreEvent::Deliver { dest, message });
            true
        } else {
            self.store_hint(dest, from, message);
            false
        }
    }

    /// Stores `message` as a hint for `dest` attributed to `origin` — the
    /// single hint sink shared by the unreachable-send, in-flight-death and
    /// crash-drain paths. Honours the mutant switch and the per-origin cap
    /// ([`StoreConfig::hint_cap_per_origin`]): at the cap, the *oldest* hint
    /// of the same origin is evicted to make room (last-write-wins row
    /// semantics make the newest mutation the one worth keeping) and counted
    /// in [`ClusterTotals::hints_evicted`] — the divergence that eviction can
    /// leave behind is exactly what anti-entropy exists to close.
    fn store_hint(&mut self, dest: NodeId, origin: NodeId, message: Message) {
        if !self.hinted_handoff_enabled {
            // Mutant: the hint is silently forgotten. The schedule
            // explorer must observe the resulting convergence violation.
            return;
        }
        let cap = self.config.hint_cap_per_origin;
        let Some(slot) = self.hints.get_mut(dest.index()) else {
            // Destination slot vanished under us (post-decommission
            // index): best-effort hinting degrades to a counted drop.
            self.totals.protocol_drops += 1;
            return;
        };
        if cap > 0 && slot.iter().filter(|(o, _)| *o == origin).count() >= cap {
            if let Some(oldest) = slot.iter().position(|(o, _)| *o == origin) {
                slot.remove(oldest);
                self.totals.hints_evicted += 1;
            }
        }
        slot.push((origin, message));
    }

    /// True if a hint stored by `origin` may replay to `dest` right now:
    /// always outside a partition, and only within one connectivity group
    /// during one. Liveness of the origin is irrelevant — the hint is
    /// durable data, not a live message.
    fn hint_replayable(&self, origin: NodeId, dest: NodeId) -> bool {
        self.faults.partition_group(origin) == self.faults.partition_group(dest)
    }

    /// Submits a client read by key name, interning the key if it has never
    /// been seen. The completion is returned by [`Cluster::handle`] when the
    /// corresponding [`StoreEvent::ClientReply`] fires.
    pub fn submit_read<C: EventCtx<StoreEvent>>(
        &mut self,
        key: &str,
        consistency: ConsistencyLevel,
        ctx: &mut C,
    ) -> OpId {
        let id = self.intern_key(key);
        self.submit_read_id(id, consistency, ctx)
    }

    /// Submits a client read for an already-interned key — the
    /// allocation-free hot path.
    pub fn submit_read_id<C: EventCtx<StoreEvent>>(
        &mut self,
        key: KeyId,
        consistency: ConsistencyLevel,
        ctx: &mut C,
    ) -> OpId {
        assert!(
            key.index() < self.key_table.len(),
            "{key} was not interned through this cluster"
        );
        let op = self.alloc_op();
        let coordinator = self.pick_coordinator();
        let expected_ts = self
            .latest_acked
            .get(key.index())
            .copied()
            .unwrap_or(Timestamp::ZERO);
        self.totals.reads_submitted += 1;
        if let Some(obs) = self.obs.as_mut() {
            let epoch = self.faults.counters().total();
            obs.tracer
                .start(op.0, "read", key.index() as u64, ctx.now().0 / 1_000, epoch);
        }
        self.pending_reads.insert(
            op,
            PendingRead {
                key,
                coordinator,
                submitted_at: ctx.now(),
                consistency,
                required: consistency.required_acks(self.config.replication_factor),
                contacted: ReplicaSet::EMPTY,
                replica_set: ReplicaSet::EMPTY,
                responses: ResponseSet::default(),
                expected_ts,
                replied: false,
            },
        );
        let delay = self.client_latency();
        ctx.emit(
            delay,
            StoreEvent::Deliver {
                dest: coordinator,
                message: Message::ClientRead {
                    op,
                    key,
                    consistency,
                },
            },
        );
        op
    }

    /// Submits a client write by key name at the given consistency level.
    /// The mutation payload is `Arc`-shared across the replica fan-out;
    /// plain `Mutation` values are accepted and wrapped once.
    pub fn submit_write<C: EventCtx<StoreEvent>>(
        &mut self,
        key: &str,
        mutation: impl Into<Arc<Mutation>>,
        consistency: ConsistencyLevel,
        ctx: &mut C,
    ) -> OpId {
        let id = self.intern_key(key);
        self.submit_write_id(id, mutation.into(), consistency, ctx)
    }

    /// Submits a client write for an already-interned key — the
    /// allocation-free hot path.
    pub fn submit_write_id<C: EventCtx<StoreEvent>>(
        &mut self,
        key: KeyId,
        mutation: Arc<Mutation>,
        consistency: ConsistencyLevel,
        ctx: &mut C,
    ) -> OpId {
        // Fail fast on a foreign id: the alternative is an out-of-bounds
        // panic at ClientReply time, far from the erroneous call.
        assert!(
            key.index() < self.key_table.len(),
            "{key} was not interned through this cluster"
        );
        let op = self.alloc_op();
        let coordinator = self.pick_coordinator();
        self.totals.writes_submitted += 1;
        if let Some(obs) = self.obs.as_mut() {
            let epoch = self.faults.counters().total();
            obs.tracer.start(
                op.0,
                "write",
                key.index() as u64,
                ctx.now().0 / 1_000,
                epoch,
            );
        }
        self.pending_writes.insert(
            op,
            PendingWrite {
                key,
                coordinator,
                submitted_at: ctx.now(),
                consistency,
                required: consistency.required_acks(self.config.replication_factor),
                replica_count: 0,
                acks: 0,
                timestamp: Timestamp::ZERO,
                replied: false,
            },
        );
        let delay = self.client_latency();
        ctx.emit(
            delay,
            StoreEvent::Deliver {
                dest: coordinator,
                message: Message::ClientWrite {
                    op,
                    key,
                    mutation,
                    consistency,
                },
            },
        );
        op
    }

    /// Handles one store event, possibly scheduling follow-up events on `ctx`.
    /// Returns a [`Completion`] when a client operation finishes.
    pub fn handle<C: EventCtx<StoreEvent>>(
        &mut self,
        event: StoreEvent,
        ctx: &mut C,
    ) -> Option<Completion> {
        match event {
            StoreEvent::Deliver { dest, message } => {
                self.on_deliver(dest, message, ctx);
                None
            }
            StoreEvent::Process { node, message } => {
                self.on_process(node, message, ctx);
                None
            }
            StoreEvent::ClientReply { op } => self.on_client_reply(op, ctx.now()),
        }
    }

    fn on_deliver<C: EventCtx<StoreEvent>>(&mut self, dest: NodeId, message: Message, ctx: &mut C) {
        if !self.faults.is_serving(dest) {
            // The destination died (or left) while this message was in
            // flight — the race the schedule-time reachability checks cannot
            // close. Mutations become hints; reads are answered with a miss
            // by the failure detector so the coordinator makes progress;
            // client operations reaching a dead coordinator abort (the
            // client driver's connection error — this also covers the
            // all-nodes-down case, where any coordinator pick is dead);
            // other coordination traffic is simply lost (its pending
            // operations were aborted when the coordinator crashed).
            match message {
                Message::ReplicaWrite {
                    op,
                    key,
                    mutation,
                    timestamp,
                    coordinator,
                } => {
                    // Direct destructure-and-rebuild: the hint's replay origin
                    // is the coordinator carried inside the mutation itself,
                    // with no fallible re-match on the moved value.
                    self.store_hint(
                        dest,
                        coordinator,
                        Message::ReplicaWrite {
                            op,
                            key,
                            mutation,
                            timestamp,
                            coordinator,
                        },
                    );
                }
                // An in-flight repair row to a node that just died is simply
                // lost: repair traffic is redundant by construction (the
                // next read of a divergent key issues a fresh one), and a
                // repair carries no sender to gate its replay against an
                // active partition — hinting it under the destination's own
                // name would let it smuggle data across a later cut.
                Message::RepairWrite { .. } => {}
                // The failure-detector miss is local information: it reaches
                // the coordinator only on its own side of any active cut (a
                // replica that is merely partitioned away strands the read
                // instead, and the chaos reaper aborts it).
                Message::ReplicaRead {
                    op, coordinator, ..
                } if self.faults.is_serving(coordinator)
                    && self.faults.partition_group(dest)
                        == self.faults.partition_group(coordinator) =>
                {
                    let latency = self.link_latency(dest, coordinator);
                    ctx.emit(
                        latency,
                        StoreEvent::Deliver {
                            dest: coordinator,
                            message: Message::ReplicaReadResponse {
                                op,
                                from: dest,
                                row: None,
                            },
                        },
                    );
                }
                Message::ClientRead { op, .. } | Message::ClientWrite { op, .. } => {
                    self.stage_abort(op, ctx);
                }
                _ => {}
            }
            return;
        }
        if message.is_replica_work() {
            // Replica-side work competes for the node's service slots.
            let start_now = self.nodes[dest.index()].try_start_work(message);
            if let Some(msg) = start_now {
                let service = self.service_time(dest, &msg);
                ctx.emit(
                    service,
                    StoreEvent::Process {
                        node: dest,
                        message: msg,
                    },
                );
            }
            return;
        }
        match message {
            Message::ClientRead {
                op,
                key,
                consistency,
            } => self.coordinate_read(dest, op, key, consistency, ctx),
            Message::ClientWrite {
                op,
                key,
                mutation,
                consistency,
            } => self.coordinate_write(dest, op, key, mutation, consistency, ctx),
            Message::ReplicaReadResponse { op, from, row } => {
                self.note_heartbeat(from, ctx.now());
                self.on_read_response(op, from, row, ctx)
            }
            Message::ReplicaWriteAck { op, from } => {
                self.note_heartbeat(from, ctx.now());
                self.on_write_ack(op, from, ctx)
            }
            Message::AeDigest { from, buckets } => self.on_ae_digest(dest, from, &buckets, ctx),
            Message::AeKeys {
                from,
                buckets,
                entries,
            } => self.on_ae_keys(dest, from, &buckets, &entries, ctx),
            Message::AePull { from, keys } => self.on_ae_pull(dest, from, &keys, ctx),
            // Replica work is dispatched through the service slots above; a
            // replica-work message surfacing here means a routing anomaly
            // (possible only under injected fault/membership races, never on
            // a healthy cluster). Dropping it costs at most one redundant
            // replica copy; panicking costs the whole run.
            Message::ReplicaRead { .. }
            | Message::ReplicaWrite { .. }
            | Message::RepairWrite { .. } => {
                self.totals.protocol_drops += 1;
            }
        }
    }

    fn coordinate_read<C: EventCtx<StoreEvent>>(
        &mut self,
        coordinator: NodeId,
        op: OpId,
        key: KeyId,
        _consistency: ConsistencyLevel,
        ctx: &mut C,
    ) {
        let replica_set = self.replicas_for_id(key);
        // Fault-aware availability: only replicas the coordinator can reach
        // may be contacted (on a healthy cluster this is the full set, in
        // ring order). An empty intersection fails the read fast instead of
        // waiting on replies that can never arrive.
        let mut available = ReplicaSet::EMPTY;
        for &r in replica_set.as_slice() {
            if self.faults.reachable(coordinator, r) {
                available.push(r);
            }
        }
        if available.is_empty() {
            self.stage_abort(op, ctx);
            return;
        }
        let required = match self.pending_reads.get(&op) {
            Some(p) => p.required.min(available.len()),
            None => return,
        };
        // Contact the `required` replicas closest to the coordinator (snitch
        // behaviour); the rest may receive background read repair afterwards.
        // Sorted on the stack (stable insertion sort — ties keep ring order),
        // no allocation.
        let mut by_distance = [NodeId(0); MAX_RF];
        by_distance[..available.len()].copy_from_slice(available.as_slice());
        let slice = &mut by_distance[..available.len()];
        for i in 1..slice.len() {
            let mut j = i;
            while j > 0 {
                let dj = self.network.mean_ms(&self.topology, coordinator, slice[j]);
                let dprev = self
                    .network
                    .mean_ms(&self.topology, coordinator, slice[j - 1]);
                if dj < dprev {
                    slice.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        // With the accrual detector on, deprioritise suspected replicas: a
        // stable partition of the distance-sorted slice, so an unsuspected
        // farther replica is preferred over a suspected closer one while
        // ties keep the snitch order. Without heartbeat history (or with the
        // detector off) nothing moves.
        if self.config.failure_detector_enabled {
            let now = ctx.now();
            let threshold = self.config.suspicion_threshold;
            let mut reordered = [NodeId(0); MAX_RF];
            let mut len = 0usize;
            for pass in 0..2 {
                for &r in slice.iter() {
                    let suspected = self.suspicion_of(r, now) >= threshold;
                    if suspected == (pass == 1) {
                        reordered[len] = r;
                        len += 1;
                    }
                }
            }
            slice.copy_from_slice(&reordered[..slice.len()]);
        }
        let contacted = ReplicaSet::from_slice(&by_distance[..required.min(available.len())]);
        if let Some(p) = self.pending_reads.get_mut(&op) {
            p.replica_set = replica_set;
            p.contacted = contacted;
            p.required = required;
        }
        if let Some(obs) = self.obs.as_mut() {
            if obs.tracer.samples(op.0) {
                let now_us = ctx.now().0 / 1_000;
                obs.tracer.event(
                    op.0,
                    now_us,
                    coordinator.0 as i64,
                    SpanKind::CoordinatorReceipt,
                    format!(
                        "contacting {:?} of {:?}",
                        contacted.as_slice(),
                        replica_set.as_slice()
                    ),
                );
                for &replica in contacted.as_slice() {
                    obs.tracer.event(
                        op.0,
                        now_us,
                        coordinator.0 as i64,
                        SpanKind::ReplicaSend,
                        format!("read request to node{}", replica.0),
                    );
                }
            }
        }
        for i in 0..contacted.len() {
            let replica = contacted.as_slice()[i];
            let latency = self.link_latency(coordinator, replica);
            ctx.emit(
                latency,
                StoreEvent::Deliver {
                    dest: replica,
                    message: Message::ReplicaRead {
                        op,
                        key,
                        coordinator,
                    },
                },
            );
        }
    }

    fn coordinate_write<C: EventCtx<StoreEvent>>(
        &mut self,
        coordinator: NodeId,
        op: OpId,
        key: KeyId,
        mutation: Arc<Mutation>,
        _consistency: ConsistencyLevel,
        ctx: &mut C,
    ) {
        let replica_set = self.replicas_for_id(key);
        let timestamp = self.alloc_timestamp(ctx.now());
        {
            // Feed the monitor's heavy-hitter stream: one sample per client
            // write (not per replica copy), so key shares match the client
            // write distribution.
            let mut samples = self.write_key_samples.borrow_mut();
            if samples.len() < WRITE_KEY_SAMPLE_CAP {
                samples.push(key);
            }
        }
        if !self.pending_writes.contains_key(&op) {
            return;
        }
        // Writes always go to every replica; the consistency level only
        // decides how many acknowledgements the client waits for. The
        // payload is shared: each fan-out copy is a refcount bump. Replicas
        // the coordinator cannot reach get a durable hint instead — the
        // hinted-handoff mutation replays into their write stage on
        // restart/heal, so a crash never loses queued propagation.
        let traced = self.obs.as_ref().is_some_and(|o| o.tracer.samples(op.0));
        if traced {
            if let Some(obs) = self.obs.as_mut() {
                obs.tracer.event(
                    op.0,
                    ctx.now().0 / 1_000,
                    coordinator.0 as i64,
                    SpanKind::CoordinatorReceipt,
                    format!("fan-out to {:?} ts={timestamp:?}", replica_set.as_slice()),
                );
            }
        }
        let mut sent = 0usize;
        for i in 0..replica_set.len() {
            let replica = replica_set.as_slice()[i];
            let message = Message::ReplicaWrite {
                op,
                key,
                mutation: Arc::clone(&mutation),
                timestamp,
                coordinator,
            };
            let delivered = self.send_replica_work(coordinator, replica, message, ctx);
            if delivered {
                sent += 1;
            }
            if traced {
                if let Some(obs) = self.obs.as_mut() {
                    obs.tracer.event(
                        op.0,
                        ctx.now().0 / 1_000,
                        coordinator.0 as i64,
                        if delivered {
                            SpanKind::ReplicaSend
                        } else {
                            SpanKind::HintStashed
                        },
                        format!("write to node{}", replica.0),
                    );
                }
            }
        }
        if let Some(p) = self.pending_writes.get_mut(&op) {
            // Only live sends can acknowledge; hinted copies apply later,
            // long after the client stopped waiting.
            p.replica_count = sent;
            p.required = p.required.min(sent.max(1));
            p.timestamp = timestamp;
        }
        if sent == 0 {
            // Every replica is down or cut off: the write is hinted
            // everywhere but the client sees an unavailability failure.
            self.stage_abort(op, ctx);
        }
    }

    fn on_process<C: EventCtx<StoreEvent>>(&mut self, node: NodeId, message: Message, ctx: &mut C) {
        // Only replica work owns a service stage. Anything else reaching a
        // service slot is a protocol anomaly (a coordination message enqueued
        // into a node's work queue by an injected fault): count it and drop
        // it rather than poisoning the run with a panic.
        let Some(stage) = Stage::of(&message) else {
            self.totals.protocol_drops += 1;
            return;
        };
        match message {
            Message::ReplicaRead {
                op,
                key,
                coordinator,
            } => {
                let row = self.nodes[node.index()].serve_read(key);
                if let Some(obs) = self.obs.as_mut() {
                    if obs.tracer.samples(op.0) {
                        obs.tracer.event(
                            op.0,
                            ctx.now().0 / 1_000,
                            node.0 as i64,
                            SpanKind::ReplicaApply,
                            format!(
                                "served read, local ts={:?}",
                                row.as_ref().map(|r| r.latest_timestamp())
                            ),
                        );
                    }
                }
                // Work in service when a node crashes still completes (the
                // power fails after the in-flight operation, not during it)
                // but a dead or cut-off node sends nothing back.
                if self.faults.reachable(node, coordinator) {
                    let latency = self.link_latency(node, coordinator);
                    ctx.emit(
                        latency,
                        StoreEvent::Deliver {
                            dest: coordinator,
                            message: Message::ReplicaReadResponse {
                                op,
                                from: node,
                                row,
                            },
                        },
                    );
                }
            }
            Message::ReplicaWrite {
                op,
                key,
                mutation,
                timestamp,
                coordinator,
            } => {
                self.nodes[node.index()].apply_write(key, &mutation, timestamp);
                if let Some(obs) = self.obs.as_mut() {
                    if obs.tracer.samples(op.0) {
                        obs.tracer.event(
                            op.0,
                            ctx.now().0 / 1_000,
                            node.0 as i64,
                            SpanKind::ReplicaApply,
                            format!("applied write ts={timestamp:?}"),
                        );
                    }
                }
                if self.faults.reachable(node, coordinator) {
                    let latency = self.link_latency(node, coordinator);
                    ctx.emit(
                        latency,
                        StoreEvent::Deliver {
                            dest: coordinator,
                            message: Message::ReplicaWriteAck { op, from: node },
                        },
                    );
                }
            }
            Message::RepairWrite { key, row } => {
                self.nodes[node.index()].apply_repair(key, row.as_ref());
            }
            // `Stage::of` returned `Some` above, so only the three
            // replica-work variants reach this match; the residual arm is
            // structurally dead but kept benign instead of panicking.
            _ => {}
        }
        // Hand the freed slot to the next queued message of the same stage.
        if let Some(next) = self.nodes[node.index()].finish_work(stage) {
            let service = self.service_time(node, &next);
            ctx.emit(
                service,
                StoreEvent::Process {
                    node,
                    message: next,
                },
            );
        }
    }

    fn on_read_response<C: EventCtx<StoreEvent>>(
        &mut self,
        op: OpId,
        from: NodeId,
        row: Option<Arc<Row>>,
        ctx: &mut C,
    ) {
        let Some(pending) = self.pending_reads.get_mut(&op) else {
            return;
        };
        pending.responses.push(from, row);
        if let Some(obs) = self.obs.as_mut() {
            if obs.tracer.samples(op.0) {
                obs.tracer.event(
                    op.0,
                    ctx.now().0 / 1_000,
                    pending.coordinator.0 as i64,
                    SpanKind::ResponseReceived,
                    format!(
                        "from node{} ({}/{} required)",
                        from.0,
                        pending.responses.len(),
                        pending.required
                    ),
                );
            }
        }
        if pending.replied || pending.responses.len() < pending.required {
            // Either still waiting, or this was a straggler; nothing to do
            // until all contacted replicas answered (handled below).
            if pending.responses.len() == pending.contacted.len() && pending.replied {
                self.pending_reads.remove(&op);
            }
            return;
        }
        // Enough replies: reconcile by timestamp (newest column values win).
        // With a single responding row — the common eventual-consistency
        // case — the replica's shared row IS the winner (no copy at all);
        // only disagreeing responses build one fresh merged row.
        let winner: Arc<Row> = Row::merge_shared(pending.responses.iter().filter_map(|(_, r)| r))
            .unwrap_or_else(|| Arc::new(Row::new()));
        let returned_ts = winner.latest_timestamp();
        let result = if winner.is_empty() {
            None
        } else {
            Some(Arc::clone(&winner))
        };
        pending.replied = true;

        let completion = Completion {
            op,
            kind: OpKind::Read,
            key: pending.key,
            submitted_at: pending.submitted_at,
            completed_at: SimTime::ZERO, // filled at ClientReply time
            consistency: pending.consistency,
            replicas_contacted: pending.contacted.len(),
            result,
            returned_timestamp: returned_ts,
            expected_timestamp: pending.expected_ts,
            stale: false, // decided at ClientReply time
            aborted: false,
        };
        let coordinator = pending.coordinator;
        let key = pending.key;
        // Read repair towards contacted replicas that returned older data.
        let mut stale_responders = ReplicaSet::EMPTY;
        for (n, r) in pending.responses.iter() {
            let ts = r.map(|r| r.latest_timestamp()).unwrap_or(Timestamp::ZERO);
            if ts < returned_ts {
                stale_responders.push(n);
            }
        }
        // Background read repair towards replicas that were not contacted.
        let mut uncontacted = ReplicaSet::EMPTY;
        for &n in pending.replica_set.as_slice() {
            if !pending.contacted.as_slice().contains(&n) {
                uncontacted.push(n);
            }
        }
        let fully_answered = pending.responses.len() == pending.contacted.len();
        let reads_all_replicas = pending.required >= pending.replica_set.len();

        if let Some(obs) = self.obs.as_mut() {
            if obs.tracer.samples(op.0) {
                let now_us = ctx.now().0 / 1_000;
                obs.tracer.event(
                    op.0,
                    now_us,
                    coordinator.0 as i64,
                    SpanKind::QuorumClose,
                    format!("quorum met, winner ts={returned_ts:?}"),
                );
                if !stale_responders.is_empty() {
                    obs.tracer.event(
                        op.0,
                        now_us,
                        coordinator.0 as i64,
                        SpanKind::Reconcile,
                        format!(
                            "divergent replicas {:?} behind ts={returned_ts:?}",
                            stale_responders.as_slice()
                        ),
                    );
                }
            }
        }
        self.staged_completions.insert(op, completion);
        let mut client_delay = self.client_latency();
        // Strong consistency (level ALL) in the paper's Figure 1: if the
        // replicas disagree, the coordinator repairs the out-of-date replicas
        // and only then answers the client — an extra round trip that is the
        // main reason ALL gets slower as update load (and thus divergence)
        // grows.
        if reads_all_replicas && !stale_responders.is_empty() {
            let mut repair_wait = SimTime::ZERO;
            for &target in stale_responders.as_slice() {
                let rtt = self
                    .link_latency(coordinator, target)
                    .saturating_add(self.link_latency(target, coordinator))
                    .saturating_add(SimTime::from_millis_f64(self.config.write_service_ms));
                repair_wait = repair_wait.max(rtt);
            }
            client_delay = client_delay.saturating_add(repair_wait);
        }
        ctx.emit(client_delay, StoreEvent::ClientReply { op });

        if returned_ts > Timestamp::ZERO {
            // One shared repair payload for every target of this read.
            let repair_row = winner;
            if !repair_row.is_empty() {
                for &target in stale_responders.as_slice() {
                    self.totals.repairs_issued += 1;
                    self.send_replica_work(
                        coordinator,
                        target,
                        Message::RepairWrite {
                            key,
                            row: Arc::clone(&repair_row),
                        },
                        ctx,
                    );
                    if let Some(obs) = self.obs.as_mut() {
                        if obs.tracer.samples(op.0) {
                            obs.tracer.event(
                                op.0,
                                ctx.now().0 / 1_000,
                                coordinator.0 as i64,
                                SpanKind::ReadRepairSend,
                                format!("repair to node{}", target.0),
                            );
                        }
                    }
                }
                if !uncontacted.is_empty()
                    && self
                        .rng
                        .gen_bool(self.config.background_read_repair_chance.clamp(0.0, 1.0))
                {
                    for &target in uncontacted.as_slice() {
                        self.totals.repairs_issued += 1;
                        self.send_replica_work(
                            coordinator,
                            target,
                            Message::RepairWrite {
                                key,
                                row: Arc::clone(&repair_row),
                            },
                            ctx,
                        );
                    }
                }
            }
        }
        if fully_answered {
            self.pending_reads.remove(&op);
        }
    }

    fn on_write_ack<C: EventCtx<StoreEvent>>(&mut self, op: OpId, from: NodeId, ctx: &mut C) {
        let client_delay = self.client_latency();
        let Some(pending) = self.pending_writes.get_mut(&op) else {
            return;
        };
        pending.acks += 1;
        if let Some(obs) = self.obs.as_mut() {
            if obs.tracer.samples(op.0) {
                obs.tracer.event(
                    op.0,
                    ctx.now().0 / 1_000,
                    pending.coordinator.0 as i64,
                    SpanKind::ResponseReceived,
                    format!(
                        "ack from node{} ({}/{} required)",
                        from.0, pending.acks, pending.required
                    ),
                );
            }
        }
        if !pending.replied && pending.acks >= pending.required {
            pending.replied = true;
            let completion = Completion {
                op,
                kind: OpKind::Write,
                key: pending.key,
                submitted_at: pending.submitted_at,
                completed_at: SimTime::ZERO,
                consistency: pending.consistency,
                replicas_contacted: pending.replica_count,
                result: None,
                returned_timestamp: pending.timestamp,
                expected_timestamp: pending.timestamp,
                stale: false,
                aborted: false,
            };
            self.staged_completions.insert(op, completion);
            ctx.emit(client_delay, StoreEvent::ClientReply { op });
            if let Some(obs) = self.obs.as_mut() {
                if obs.tracer.samples(op.0) {
                    obs.tracer.event(
                        op.0,
                        ctx.now().0 / 1_000,
                        pending.coordinator.0 as i64,
                        SpanKind::QuorumClose,
                        format!("{} acks", pending.acks),
                    );
                }
            }
        }
        if pending.acks >= pending.replica_count {
            self.pending_writes.remove(&op);
        }
    }

    fn on_client_reply(&mut self, op: OpId, now: SimTime) -> Option<Completion> {
        let mut completion = self.staged_completions.remove(&op)?;
        completion.completed_at = now;
        if let Some(obs) = self.obs.as_mut() {
            if obs.tracer.samples(op.0) {
                let epoch = self.faults.counters().total();
                let level = completion.consistency.to_string();
                if let Some(trace) =
                    obs.tracer
                        .finish(op.0, now.0 / 1_000, &level, completion.aborted, epoch)
                {
                    obs.recorder.offer(trace);
                }
            }
        }
        if completion.aborted {
            // A failed operation is neither a completed read nor a completed
            // write; it only bumps the abort tally.
            self.totals.ops_aborted += 1;
            return Some(completion);
        }
        match completion.kind {
            OpKind::Read => {
                completion.stale = completion.returned_timestamp < completion.expected_timestamp;
                self.totals.reads_completed += 1;
                if completion.stale {
                    self.totals.stale_reads += 1;
                }
            }
            OpKind::Write => {
                self.totals.writes_completed += 1;
                let entry = &mut self.latest_acked[completion.key.index()];
                if completion.returned_timestamp > *entry {
                    *entry = completion.returned_timestamp;
                }
            }
        }
        Some(completion)
    }

    // ---- fault injection and elasticity -----------------------------------
    //
    // Everything below is driven by a `harmony-chaos` fault schedule. None of
    // it runs — no events, no RNG draws, no state changes — unless a fault is
    // actually applied, which is what keeps an empty schedule byte-identical
    // to a run without the chaos layer (`golden_stats_pin_for_seed_20120920`).

    /// Applies one fault event at the current virtual time. Aborted
    /// operations (a crashed coordinator's in-flight work) surface as
    /// `aborted` completions through the normal `ClientReply` flow.
    pub fn apply_fault<C: EventCtx<StoreEvent>>(&mut self, fault: &FaultEvent, ctx: &mut C) {
        match fault {
            FaultEvent::CrashNode { node } => self.crash_node(*node, ctx),
            FaultEvent::RestartNode { node } => self.restart_node(*node, ctx),
            FaultEvent::SlowNode {
                node,
                service_factor,
            } => {
                self.faults.set_slow(*node, *service_factor);
            }
            FaultEvent::Partition { groups } => {
                self.faults.partition(groups);
                let counters = self.faults.counters();
                self.partition_churn_baseline = counters.joins + counters.decommissions;
            }
            FaultEvent::HealPartition => {
                if self.faults.heal() {
                    self.drain_hints_after_heal(ctx);
                    // Membership changes *during* the cut could not stream
                    // across it (a mid-partition joiner bootstraps nothing,
                    // a leaver cannot reach new owners on the far side);
                    // the heal retries the anti-entropy pass so ownership
                    // and data converge. Churn that finished before the
                    // partition already converged and is not re-streamed.
                    let counters = self.faults.counters();
                    if counters.joins + counters.decommissions > self.partition_churn_baseline {
                        self.rebalance_all_keys();
                    }
                }
            }
            FaultEvent::JoinNode { dc, rack } => {
                self.join_node(Location {
                    dc: *dc,
                    rack: *rack,
                });
            }
            FaultEvent::DecommissionNode { node } => self.decommission_node(*node, ctx),
        }
    }

    /// Fail-stop crash. Queued mutations survive as hints and replay on
    /// restart (hinted handoff); queued reads are answered with a miss by the
    /// failure detector; work already in service completes silently; and the
    /// operations this node was coordinating are aborted so no client session
    /// waits on a reply that can never come.
    fn crash_node<C: EventCtx<StoreEvent>>(&mut self, node: NodeId, ctx: &mut C) {
        if !self.faults.crash(node) {
            return;
        }
        let (writes, reads) = self.nodes[node.index()].drain_queues();
        // Queued mutations were already delivered to this node, so the node
        // itself is their origin: they replay as soon as it serves again.
        for message in writes {
            self.store_hint(node, node, message);
        }
        for message in reads {
            if let Message::ReplicaRead {
                op, coordinator, ..
            } = message
            {
                // Same cut discipline as the in-flight path: the miss only
                // reaches coordinators on this node's side of a partition.
                if self.faults.is_serving(coordinator)
                    && self.faults.partition_group(node) == self.faults.partition_group(coordinator)
                {
                    let latency = self.link_latency(node, coordinator);
                    ctx.emit(
                        latency,
                        StoreEvent::Deliver {
                            dest: coordinator,
                            message: Message::ReplicaReadResponse {
                                op,
                                from: node,
                                row: None,
                            },
                        },
                    );
                }
            }
        }
        self.abort_ops_coordinated_by(node, ctx);
    }

    /// Recovery: the node rejoins with its data intact and its hinted
    /// mutations replay into the write stage — the backlog spike the
    /// controller has to ride out after every crash.
    fn restart_node<C: EventCtx<StoreEvent>>(&mut self, node: NodeId, ctx: &mut C) {
        if !self.faults.restart(node) {
            return;
        }
        self.drain_hints_for(node, ctx);
    }

    /// Replays the hints stored for `node` into its delivery path. The
    /// replayed mutations queue behind live traffic in the node's write
    /// stage, so a long outage surfaces as a deep (and visible) backlog.
    /// Hints whose origin sits across an active partition stay stored — a
    /// restart inside a partition window must not smuggle data over the cut;
    /// the heal replays them.
    fn drain_hints_for<C: EventCtx<StoreEvent>>(&mut self, node: NodeId, ctx: &mut C) {
        let hints = std::mem::take(&mut self.hints[node.index()]);
        let mut retained = Vec::new();
        for (origin, message) in hints {
            if self.hint_replayable(origin, node) {
                ctx.emit(
                    SimTime::ZERO,
                    StoreEvent::Deliver {
                        dest: node,
                        message,
                    },
                );
            } else {
                retained.push((origin, message));
            }
        }
        self.hints[node.index()] = retained;
    }

    /// After a heal, every serving node's stranded hints replay (they were
    /// stored because the coordinator could not cross the cut).
    fn drain_hints_after_heal<C: EventCtx<StoreEvent>>(&mut self, ctx: &mut C) {
        for i in 0..self.hints.len() {
            let node = NodeId(i as u32);
            if self.faults.is_serving(node) && !self.hints[i].is_empty() {
                self.drain_hints_for(node, ctx);
            }
        }
    }

    // ---- anti-entropy repair ----------------------------------------------
    //
    // A Merkle-style digest exchange run between serving nodes on a protocol
    // timer: the initiator offers per-bucket digests of its tables, peers
    // answer with the mismatched buckets and their own (key, timestamp)
    // entries inside them, and rows flow — as ordinary `RepairWrite` replica
    // work, through the write stage like any other mutation — in whichever
    // direction is behind. Crucially the exchange never touches the read
    // path (`digest`/`get`, not `serve_read`), so a cluster can converge
    // after a partition with *zero* read traffic. Nothing here runs unless a
    // round is explicitly driven, which keeps disabled runs byte-identical.

    /// Merkle-style range digests of `node`'s tables: an order-independent
    /// XOR fold of `mix(key, timestamp)` into `key % buckets`. Equal tables
    /// give equal digests; a single divergent row flips exactly one bucket.
    fn ae_bucket_digests(&self, node: NodeId) -> Vec<u64> {
        let buckets = self.config.anti_entropy_buckets.max(1);
        let mut out = vec![0u64; buckets];
        for index in 0..self.key_table.len() {
            let key = KeyId(index as u32);
            if let Some(ts) = self.nodes[node.index()].digest(key) {
                out[index % buckets] ^= harmony_sim::rng::mix(index as u64, ts.0);
            }
        }
        out
    }

    /// Runs one anti-entropy round at the current virtual time: the next
    /// serving node after the round-robin cursor initiates, offering its
    /// bucket digests to every serving peer it can reach (the exchange is
    /// partition-gated like all node-to-node traffic — anti-entropy works
    /// within each side of an active cut and across it only after the heal).
    /// A round with no reachable peer is skipped silently and uncounted.
    /// Runners drive this from [`StoreConfig::anti_entropy_interval_secs`];
    /// the protocol machine arms a [`crate::machine::ProtocolTimer`] for it.
    pub fn run_anti_entropy_round<C: EventCtx<StoreEvent>>(&mut self, ctx: &mut C) {
        let n = self.nodes.len();
        if n < 2 {
            return;
        }
        let mut initiator = None;
        for offset in 0..n {
            let id = NodeId(((self.ae_cursor + offset) % n) as u32);
            if self.faults.is_serving(id) {
                initiator = Some(id);
                self.ae_cursor = (id.index() + 1) % n;
                break;
            }
        }
        let Some(initiator) = initiator else { return };
        let digests = Arc::new(self.ae_bucket_digests(initiator));
        let mut offered = false;
        for offset in 1..n {
            let peer = NodeId(((initiator.index() + offset) % n) as u32);
            if !self.faults.is_serving(peer) || !self.faults.reachable(initiator, peer) {
                continue;
            }
            offered = true;
            let latency = self.link_latency(initiator, peer);
            ctx.emit(
                latency,
                StoreEvent::Deliver {
                    dest: peer,
                    message: Message::AeDigest {
                        from: initiator,
                        buckets: Arc::clone(&digests),
                    },
                },
            );
        }
        if offered {
            self.totals.ae_rounds += 1;
        }
    }

    /// Peer side of the digest exchange: diffs the initiator's bucket
    /// digests against its own tables and answers with the mismatched
    /// buckets plus its own `(key, timestamp)` entries inside them. No reply
    /// when the tables agree — a converged pair costs one message per peer.
    fn on_ae_digest<C: EventCtx<StoreEvent>>(
        &mut self,
        dest: NodeId,
        from: NodeId,
        theirs: &[u64],
        ctx: &mut C,
    ) {
        if !self.faults.reachable(dest, from) {
            return;
        }
        let mine = self.ae_bucket_digests(dest);
        let mut mismatched: Vec<u32> = Vec::new();
        for b in 0..mine.len().max(theirs.len()) {
            if mine.get(b).copied().unwrap_or(0) != theirs.get(b).copied().unwrap_or(0) {
                mismatched.push(b as u32);
            }
        }
        if mismatched.is_empty() {
            return;
        }
        let buckets = self.config.anti_entropy_buckets.max(1);
        let mut entries = Vec::new();
        for index in 0..self.key_table.len() {
            if !mismatched.contains(&((index % buckets) as u32)) {
                continue;
            }
            let key = KeyId(index as u32);
            if let Some(ts) = self.nodes[dest.index()].digest(key) {
                entries.push((key, ts));
            }
        }
        let latency = self.link_latency(dest, from);
        ctx.emit(
            latency,
            StoreEvent::Deliver {
                dest: from,
                message: Message::AeKeys {
                    from: dest,
                    buckets: Arc::new(mismatched),
                    entries: Arc::new(entries),
                },
            },
        );
    }

    /// Initiator side of the diff: within the mismatched buckets, push rows
    /// the peer lacks (or holds stale copies of) and pull the keys whose
    /// peer copy is newer. Only ranges *both* nodes own are repaired —
    /// streaming a row to a non-replica would fight the placement, not heal
    /// it.
    fn on_ae_keys<C: EventCtx<StoreEvent>>(
        &mut self,
        dest: NodeId,
        from: NodeId,
        mismatched: &[u32],
        entries: &[(KeyId, Timestamp)],
        ctx: &mut C,
    ) {
        if !self.faults.reachable(dest, from) {
            return;
        }
        let buckets = self.config.anti_entropy_buckets.max(1);
        for index in 0..self.key_table.len() {
            if !mismatched.contains(&((index % buckets) as u32)) {
                continue;
            }
            let key = KeyId(index as u32);
            let Some(mine) = self.nodes[dest.index()].digest(key) else {
                continue;
            };
            if !self.replicas_for_id(key).as_slice().contains(&from) {
                continue;
            }
            let theirs = entries.iter().find(|(k, _)| *k == key).map(|(_, ts)| *ts);
            if theirs.is_none_or(|t| mine > t) {
                self.ae_stream_row(dest, from, key, ctx);
            }
        }
        let mut pull = Vec::new();
        for &(key, theirs) in entries {
            if !self.replicas_for_id(key).as_slice().contains(&dest) {
                continue;
            }
            let behind = self.nodes[dest.index()]
                .digest(key)
                .is_none_or(|mine| mine < theirs);
            if behind {
                pull.push(key);
            }
        }
        if !pull.is_empty() {
            let latency = self.link_latency(dest, from);
            ctx.emit(
                latency,
                StoreEvent::Deliver {
                    dest: from,
                    message: Message::AePull {
                        from: dest,
                        keys: Arc::new(pull),
                    },
                },
            );
        }
    }

    /// Peer answering a pull: streams the requested rows back. Each row
    /// travels as an ordinary repair write through the requester's write
    /// stage.
    fn on_ae_pull<C: EventCtx<StoreEvent>>(
        &mut self,
        dest: NodeId,
        from: NodeId,
        keys: &[KeyId],
        ctx: &mut C,
    ) {
        for &key in keys {
            self.ae_stream_row(dest, from, key, ctx);
        }
    }

    /// Streams one row from `source` to `target` as a counted repair write.
    /// Skips silently when the target became unreachable mid-exchange (the
    /// next round retries) or the row vanished between digest and stream.
    fn ae_stream_row<C: EventCtx<StoreEvent>>(
        &mut self,
        source: NodeId,
        target: NodeId,
        key: KeyId,
        ctx: &mut C,
    ) {
        if !self.faults.reachable(source, target) {
            return;
        }
        let Some(row) = self.nodes[source.index()].engine_mut().get(key) else {
            return;
        };
        self.totals.ae_rows_streamed += 1;
        self.send_replica_work(source, target, Message::RepairWrite { key, row }, ctx);
    }

    /// True when every serving replica of every client-acknowledged key
    /// holds a row at least as new as the newest acknowledged timestamp —
    /// the convergence predicate of the self-healing experiments. `&mut`
    /// because replica sets are memoised on first use.
    /// The number of client-acknowledged keys on which at least one serving
    /// replica still lags the newest acknowledged timestamp — the graded
    /// form of [`Cluster::all_replicas_converged`]. The self-healing sweeps
    /// sample this on monitoring ticks to measure how fast a healed
    /// partition's divergence drains.
    pub fn divergent_keys(&mut self) -> usize {
        let mut divergent = 0;
        for index in 0..self.latest_acked.len() {
            let acked = self.latest_acked[index];
            if acked == Timestamp::ZERO {
                continue;
            }
            let key = KeyId(index as u32);
            let set = self.replicas_for_id(key);
            for &replica in set.as_slice() {
                if !self.faults.is_serving(replica) {
                    continue;
                }
                let held = self.nodes[replica.index()]
                    .digest(key)
                    .unwrap_or(Timestamp::ZERO);
                if held < acked {
                    divergent += 1;
                    break;
                }
            }
        }
        divergent
    }

    pub fn all_replicas_converged(&mut self) -> bool {
        for index in 0..self.latest_acked.len() {
            let acked = self.latest_acked[index];
            if acked == Timestamp::ZERO {
                continue;
            }
            let key = KeyId(index as u32);
            let set = self.replicas_for_id(key);
            for &replica in set.as_slice() {
                if !self.faults.is_serving(replica) {
                    continue;
                }
                let held = self.nodes[replica.index()]
                    .digest(key)
                    .unwrap_or(Timestamp::ZERO);
                if held < acked {
                    return false;
                }
            }
        }
        true
    }

    // ---- accrual failure detection ----------------------------------------

    /// Records a replica response as a failure-detector heartbeat. A no-op
    /// while the detector is disabled, so a detector-less run accumulates no
    /// extra state (and stays byte-identical in the state digest).
    fn note_heartbeat(&mut self, from: NodeId, now: SimTime) {
        if !self.config.failure_detector_enabled {
            return;
        }
        if let Some(history) = self.detectors.get_mut(from.index()) {
            history.record(now);
        }
    }

    /// φ suspicion of one node at `now`; zero without history.
    fn suspicion_of(&self, node: NodeId, now: SimTime) -> f64 {
        self.detectors
            .get(node.index())
            .map(|h| h.suspicion(now))
            .unwrap_or(0.0)
    }

    /// Per-node φ suspicion levels at `now`, indexed by node id — the
    /// telemetry the monitoring module exposes so the controller can
    /// discount readings from suspected nodes. All zeros while the detector
    /// is disabled.
    pub fn node_suspicions(&self, now: SimTime) -> Vec<f64> {
        if !self.config.failure_detector_enabled {
            return vec![0.0; self.nodes.len()];
        }
        self.detectors.iter().map(|h| h.suspicion(now)).collect()
    }

    /// Elastic scale-out: a new node joins at `location`, takes its tokens on
    /// the ring, and is bootstrapped with the freshest copy of every key it
    /// now owns before serving reads (Cassandra's bootstrap-then-serve).
    /// Returns the new node's id.
    pub fn join_node(&mut self, location: Location) -> NodeId {
        let id = self.topology.push(location);
        let state_id = self.faults.add_node();
        debug_assert_eq!(id, state_id, "topology and fault state must agree");
        self.nodes.push(StorageNode::new(
            id,
            self.config.engine,
            self.config.node_concurrency,
        ));
        self.hints.push(Vec::new());
        self.detectors.push(HeartbeatHistory::new());
        self.rebuild_ring();
        self.rebalance_all_keys();
        id
    }

    /// Graceful scale-in: the node streams the freshest copy of its data to
    /// the new owners, leaves the ring and never serves again. Operations it
    /// was coordinating are aborted; hints addressed to it are dropped (the
    /// mutations they carried live on the replicas that acknowledged, and
    /// the rebalance below re-spreads the freshest rows).
    fn decommission_node<C: EventCtx<StoreEvent>>(&mut self, node: NodeId, ctx: &mut C) {
        if !self.faults.is_member(node) || self.faults.members().len() <= 1 {
            return;
        }
        self.abort_ops_coordinated_by(node, ctx);
        self.hints[node.index()].clear();
        self.faults.decommission(node);
        self.rebuild_ring();
        self.rebalance_all_keys();
    }

    /// Rebuilds the token ring over the current membership and drops every
    /// memoised placement — the cache must never serve replica sets computed
    /// for a previous topology.
    fn rebuild_ring(&mut self) {
        let members = self.faults.members();
        self.ring = HashRing::with_members(&members, self.config.vnodes_per_node);
        self.placement.invalidate();
    }

    /// One anti-entropy pass after a membership change: every serving member
    /// of each key's (new) replica set receives the freshest row held by any
    /// live node *it can stream from* — streaming is node-to-node traffic
    /// and cannot cross an active partition, so a target only sees sources
    /// in its own connectivity group (a node that joined mid-partition
    /// bootstraps nothing until the heal). This is the streaming phase of
    /// bootstrap/decommission, run to completion before the next event —
    /// the paper-scale analogue is a node that only starts serving once its
    /// streams finish. `O(keys × nodes)` digests, paid once per membership
    /// change, never on the op path.
    fn rebalance_all_keys(&mut self) {
        for index in 0..self.key_table.len() {
            let key = KeyId(index as u32);
            let set = self.replicas_for_id(key);
            for i in 0..set.len() {
                let target = set.as_slice()[i];
                if !self.faults.is_serving(target) {
                    continue;
                }
                // Freshest copy among live nodes on the target's side of
                // any active cut.
                let mut newest: Option<(Timestamp, NodeId)> = None;
                for node in 0..self.nodes.len() as u32 {
                    let node = NodeId(node);
                    if node == target
                        || !self.faults.is_alive(node)
                        || self.faults.partition_group(node) != self.faults.partition_group(target)
                    {
                        continue;
                    }
                    if let Some(ts) = self.nodes[node.index()].digest(key) {
                        if newest.map(|(t, _)| ts > t).unwrap_or(true) {
                            newest = Some((ts, node));
                        }
                    }
                }
                let Some((ts, source)) = newest else { continue };
                let behind = self.nodes[target.index()]
                    .digest(key)
                    .map(|t| t < ts)
                    .unwrap_or(true);
                if !behind {
                    continue;
                }
                let Some(row) = self.nodes[source.index()].engine_mut().get(key) else {
                    continue;
                };
                self.nodes[target.index()].engine_mut().apply_row(key, &row);
            }
        }
    }

    /// Fails an in-flight operation: the client gets an `aborted` completion
    /// through the normal `ClientReply` flow and the session can move on.
    fn stage_abort<C: EventCtx<StoreEvent>>(&mut self, op: OpId, ctx: &mut C) {
        let client_delay = self.client_latency();
        if let Some(p) = self.pending_reads.get_mut(&op) {
            if p.replied {
                return;
            }
            p.replied = true;
            let completion = Completion {
                op,
                kind: OpKind::Read,
                key: p.key,
                submitted_at: p.submitted_at,
                completed_at: SimTime::ZERO,
                consistency: p.consistency,
                replicas_contacted: 0,
                result: None,
                returned_timestamp: Timestamp::ZERO,
                expected_timestamp: p.expected_ts,
                stale: false,
                aborted: true,
            };
            // Keep the entry only if straggler responses may still arrive.
            let done = p.contacted.is_empty() || p.responses.len() == p.contacted.len();
            self.staged_completions.insert(op, completion);
            ctx.emit(client_delay, StoreEvent::ClientReply { op });
            if done {
                self.pending_reads.remove(&op);
            }
            return;
        }
        if let Some(p) = self.pending_writes.get_mut(&op) {
            if p.replied {
                return;
            }
            p.replied = true;
            let completion = Completion {
                op,
                kind: OpKind::Write,
                key: p.key,
                submitted_at: p.submitted_at,
                completed_at: SimTime::ZERO,
                consistency: p.consistency,
                replicas_contacted: 0,
                result: None,
                returned_timestamp: Timestamp::ZERO,
                expected_timestamp: Timestamp::ZERO,
                stale: false,
                aborted: true,
            };
            self.staged_completions.insert(op, completion);
            ctx.emit(client_delay, StoreEvent::ClientReply { op });
            if p.acks >= p.replica_count {
                self.pending_writes.remove(&op);
            }
        }
    }

    /// Aborts every unanswered operation the given (crashed or leaving) node
    /// was coordinating, in deterministic (`OpId`) order.
    fn abort_ops_coordinated_by<C: EventCtx<StoreEvent>>(&mut self, node: NodeId, ctx: &mut C) {
        let mut stalled: Vec<OpId> = self
            .pending_reads
            .iter()
            .filter(|(_, p)| p.coordinator == node && !p.replied)
            .map(|(op, _)| *op)
            .collect();
        stalled.extend(
            self.pending_writes
                .iter()
                .filter(|(_, p)| p.coordinator == node && !p.replied)
                .map(|(op, _)| *op),
        );
        stalled.sort_unstable();
        for op in stalled {
            self.stage_abort(op, ctx);
        }
    }

    /// Chaos-mode safety net: aborts every operation that has been pending
    /// longer than `timeout` (a partition installed mid-flight can strand
    /// responses no schedule-time check can predict), and purges replied
    /// entries whose stragglers were lost the same way. Returns the number
    /// of operations aborted. Call it periodically — the experiment runner
    /// does so on its monitoring tick — but only when a fault schedule is
    /// active: a healthy run must not pay (or perturb) anything.
    pub fn expire_stalled_ops<C: EventCtx<StoreEvent>>(
        &mut self,
        timeout: SimTime,
        ctx: &mut C,
    ) -> usize {
        let now = ctx.now();
        if timeout.is_zero() || now <= timeout {
            return 0;
        }
        let cutoff = now.saturating_sub(timeout);
        let mut stalled: Vec<OpId> = self
            .pending_reads
            .iter()
            .filter(|(_, p)| !p.replied && p.submitted_at <= cutoff)
            .map(|(op, _)| *op)
            .collect();
        stalled.extend(
            self.pending_writes
                .iter()
                .filter(|(_, p)| !p.replied && p.submitted_at <= cutoff)
                .map(|(op, _)| *op),
        );
        stalled.sort_unstable();
        let aborted = stalled.len();
        for op in stalled {
            self.stage_abort(op, ctx);
        }
        self.pending_reads
            .retain(|_, p| !(p.replied && p.submitted_at <= cutoff));
        self.pending_writes
            .retain(|_, p| !(p.replied && p.submitted_at <= cutoff));
        aborted
    }

    // ---- model-checking support -------------------------------------------

    /// Enables or disables hinted handoff. `true` (the default) is the real
    /// protocol. `false` is an *intentionally buggy* mutant — every mutation
    /// that should be stored as a hint (unreachable destination, in-flight
    /// delivery to a dead node, queued writes on a crashing node) is silently
    /// forgotten instead. It exists solely as a mutation-testing target: the
    /// `harmony-check` schedule explorer must catch the acked-write
    /// convergence violation this introduces. Never disable it outside tests.
    pub fn set_hinted_handoff_enabled(&mut self, enabled: bool) {
        self.hinted_handoff_enabled = enabled;
    }

    /// Newest timestamp acknowledged to any client for `key` — the reference
    /// value of the checker's no-lost-acked-write invariant.
    pub fn latest_acked_ts(&self, key: KeyId) -> Timestamp {
        self.latest_acked
            .get(key.index())
            .copied()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Operations still unresolved from the client's point of view: pending
    /// reads/writes that have not been answered plus staged completions whose
    /// `ClientReply` has not fired yet. Zero once a schedule fully quiesces.
    pub fn unresolved_ops(&self) -> usize {
        self.pending_reads.values().filter(|p| !p.replied).count()
            + self.pending_writes.values().filter(|p| !p.replied).count()
            + self.staged_completions.len()
    }

    /// A canonical dump of every protocol-relevant piece of cluster state, in
    /// a deterministic order (hash maps are walked in sorted key order). Two
    /// clusters with equal digest strings behave identically under any future
    /// event sequence, *except* through the two deliberately excluded fields:
    /// the RNG (its draws only label emitted events with latencies and decide
    /// background read repair, which scenarios pin to probability 0 or 1) and
    /// the monitoring probe counter (read-path telemetry only). The purity
    /// property tests compare these strings byte for byte; the schedule
    /// explorer hashes them for visited-state deduplication.
    pub fn state_digest_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "totals={:?};next_op={};last_ts={};next_coord={};hh={};acked={:?};",
            self.totals,
            self.next_op,
            self.last_timestamp,
            self.next_coordinator,
            self.hinted_handoff_enabled,
            self.latest_acked,
        );
        let mut reads: Vec<_> = self.pending_reads.iter().collect();
        reads.sort_by_key(|(op, _)| **op);
        for (op, p) in reads {
            let _ = write!(
                s,
                "r{:?}:{:?},{:?},{:?},{:?},{},{:?},{:?},{:?},{}[",
                op,
                p.key,
                p.coordinator,
                p.submitted_at,
                p.consistency,
                p.required,
                p.contacted.as_slice(),
                p.replica_set.as_slice(),
                p.expected_ts,
                p.replied,
            );
            for (n, row) in p.responses.iter() {
                let _ = write!(s, "{:?}={:?},", n, row.map(|r| r.latest_timestamp()));
            }
            s.push_str("];");
        }
        let mut writes: Vec<_> = self.pending_writes.iter().collect();
        writes.sort_by_key(|(op, _)| **op);
        for (op, p) in writes {
            let _ = write!(
                s,
                "w{:?}:{:?},{:?},{:?},{:?},{},{},{},{:?},{};",
                op,
                p.key,
                p.coordinator,
                p.submitted_at,
                p.consistency,
                p.required,
                p.replica_count,
                p.acks,
                p.timestamp,
                p.replied,
            );
        }
        let mut staged: Vec<_> = self.staged_completions.iter().collect();
        staged.sort_by_key(|(op, _)| **op);
        for (op, c) in staged {
            let _ = write!(s, "c{:?}={:?};", op, c);
        }
        for node in &self.nodes {
            let _ = write!(
                s,
                "n{:?}:cnt={:?};tel={:?};busy={}/{};",
                node.id,
                node.counters(),
                node.write_stage_telemetry(),
                node.busy_slots(Stage::Read),
                node.busy_slots(Stage::Write),
            );
            for m in node.queued_messages(Stage::Read) {
                let _ = write!(s, "qr={m:?};");
            }
            for m in node.queued_messages(Stage::Write) {
                let _ = write!(s, "qw={m:?};");
            }
            for k in 0..self.key_table.len() {
                if let Some(ts) = node.digest(KeyId(k as u32)) {
                    let _ = write!(s, "d{k}={ts:?};");
                }
            }
        }
        for (i, hints) in self.hints.iter().enumerate() {
            for (origin, m) in hints {
                let _ = write!(s, "h{i}:{origin:?}:{m:?};");
            }
        }
        let _ = write!(
            s,
            "faults={:?};churn={};samples={:?};ae_cursor={};",
            self.faults,
            self.partition_churn_baseline,
            self.write_key_samples.borrow(),
            self.ae_cursor,
        );
        if self.config.failure_detector_enabled {
            // Heartbeat histories steer replica selection, so they are
            // protocol state — but only when the detector can observe them.
            // Disabled they stay default-empty and are omitted, keeping the
            // digest stable across the flag for otherwise-identical state.
            for (i, h) in self.detectors.iter().enumerate() {
                let _ = write!(s, "fd{i}:{};", h.digest_fragment());
            }
        }
        s
    }

    /// FNV-1a hash of [`Cluster::state_digest_string`] — the compact form the
    /// schedule explorer keys its visited-state set on.
    pub fn state_digest(&self) -> u64 {
        fnv1a(self.state_digest_string().as_bytes())
    }
}

/// FNV-1a: stable across processes and platforms (unlike `DefaultHasher`,
/// which documents no cross-version stability), so explored-state counts in
/// committed reports are reproducible.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_sim::engine::Simulation;
    use harmony_sim::latency::Latency;

    #[test]
    fn non_negative_backlog_passes_valid_values_through() {
        assert_eq!(non_negative_backlog(0.0), 0.0);
        assert_eq!(non_negative_backlog(3.25), 3.25);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative backlog computed by the store")]
    fn non_negative_backlog_panics_on_sign_bugs_in_debug() {
        non_negative_backlog(-0.001);
    }

    fn test_cluster(latency_ms: f64) -> (Cluster, Simulation<StoreEvent>) {
        let topology = Topology::single_dc(2, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(latency_ms));
        let config = StoreConfig {
            replication_factor: 3,
            ..StoreConfig::default()
        };
        let cluster = Cluster::new(config, topology, network, RngFactory::new(7));
        let sim = Simulation::new(7);
        (cluster, sim)
    }

    /// Drives the simulation until idle, returning all completions in order.
    fn drain(cluster: &mut Cluster, sim: &mut Simulation<StoreEvent>) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some((_, ev)) = sim.next() {
            if let Some(c) = cluster.handle(ev, sim) {
                out.push(c);
            }
        }
        out
    }

    /// Drives the simulation until `count` completions have been observed,
    /// leaving any still-pending events (e.g. in-flight replica propagation)
    /// in the queue. This is how a real client experiences the system: it
    /// gets its acknowledgement while background propagation continues.
    fn drain_until(
        cluster: &mut Cluster,
        sim: &mut Simulation<StoreEvent>,
        count: usize,
    ) -> Vec<Completion> {
        let mut out = Vec::new();
        while out.len() < count {
            let Some((_, ev)) = sim.next() else { break };
            if let Some(c) = cluster.handle(ev, sim) {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn write_then_read_returns_data() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        cluster.submit_write(
            "user1",
            Mutation::single("f", b"v1".to_vec()),
            ConsistencyLevel::All,
            &mut sim,
        );
        let comps = drain(&mut cluster, &mut sim);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].kind, OpKind::Write);
        assert!(comps[0].latency() > SimTime::ZERO);

        cluster.submit_read("user1", ConsistencyLevel::One, &mut sim);
        let comps = drain(&mut cluster, &mut sim);
        assert_eq!(comps.len(), 1);
        let read = &comps[0];
        assert_eq!(read.kind, OpKind::Read);
        assert!(read.result.is_some());
        assert!(!read.stale, "write at ALL then read cannot be stale");
        // Both operations interned the same key once.
        assert_eq!(cluster.key_count(), 1);
        assert_eq!(cluster.key_name(read.key), "user1");
    }

    #[test]
    fn read_of_missing_key_completes_empty() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        cluster.submit_read("missing", ConsistencyLevel::Quorum, &mut sim);
        let comps = drain(&mut cluster, &mut sim);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].result.is_none());
        assert!(!comps[0].stale);
        assert_eq!(comps[0].returned_timestamp, Timestamp::ZERO);
    }

    #[test]
    fn strong_reads_are_slower_than_eventual_reads() {
        // Zero service times make the comparison deterministic: the latency
        // difference then comes purely from waiting on more replicas.
        let topology = Topology::single_dc(2, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(1.0));
        let config = StoreConfig {
            replication_factor: 3,
            read_service_ms: 0.0,
            write_service_ms: 0.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(7));
        let mut sim: Simulation<StoreEvent> = Simulation::new(7);
        cluster.load_direct("k", &Mutation::single("f", b"v".to_vec()), Timestamp(1));

        let mut one_total = SimTime::ZERO;
        let mut all_total = SimTime::ZERO;
        for _ in 0..20 {
            cluster.submit_read("k", ConsistencyLevel::One, &mut sim);
            let one = drain(&mut cluster, &mut sim).remove(0);
            assert_eq!(one.replicas_contacted, 1);
            one_total += one.latency();
            cluster.submit_read("k", ConsistencyLevel::All, &mut sim);
            let all = drain(&mut cluster, &mut sim).remove(0);
            assert_eq!(all.replicas_contacted, 3);
            all_total += all.latency();
            assert!(
                all.latency() >= one.latency(),
                "ALL {:?} should not be faster than ONE {:?}",
                all.latency(),
                one.latency()
            );
        }
        assert!(all_total > one_total);
    }

    #[test]
    fn quorum_read_after_quorum_write_is_never_stale() {
        let (mut cluster, mut sim) = test_cluster(0.5);
        // Interleave quorum writes and quorum reads on the same key.
        for i in 0..20u64 {
            cluster.submit_write(
                "hot",
                Mutation::single("f", format!("v{i}").into_bytes()),
                ConsistencyLevel::Quorum,
                &mut sim,
            );
            let _ = drain(&mut cluster, &mut sim);
            cluster.submit_read("hot", ConsistencyLevel::Quorum, &mut sim);
            let comps = drain(&mut cluster, &mut sim);
            let read = comps.iter().find(|c| c.kind == OpKind::Read).unwrap();
            assert!(!read.stale, "iteration {i}");
        }
        assert_eq!(cluster.totals().stale_reads, 0);
    }

    #[test]
    fn eventual_reads_can_be_stale_under_concurrent_updates() {
        let (mut cluster, mut sim) = test_cluster(2.0);
        cluster.load_direct("hot", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        // Write at ONE: the client is acknowledged as soon as the first
        // replica applies the mutation, while propagation to the remaining
        // replicas is still in flight. A read at ONE issued right after the
        // acknowledgement can then hit a not-yet-updated replica — the exact
        // scenario of the paper's Figure 2.
        let mut stale_seen = false;
        for i in 0..200u64 {
            cluster.submit_write(
                "hot",
                Mutation::single("f", format!("v{i}").into_bytes()),
                ConsistencyLevel::One,
                &mut sim,
            );
            // Wait only for the write acknowledgement, not for full propagation.
            let write_done = drain_until(&mut cluster, &mut sim, 1);
            assert_eq!(write_done.len(), 1);
            cluster.submit_read("hot", ConsistencyLevel::One, &mut sim);
            let comps = drain_until(&mut cluster, &mut sim, 1);
            stale_seen |= comps.iter().any(|c| c.kind == OpKind::Read && c.stale);
        }
        let _ = drain(&mut cluster, &mut sim);
        assert!(
            stale_seen,
            "with 2 ms propagation and immediate reads at ONE some staleness must occur"
        );
        assert!(cluster.totals().stale_reads > 0);
    }

    #[test]
    fn reading_all_replicas_is_never_stale_even_under_load() {
        let (mut cluster, mut sim) = test_cluster(2.0);
        for i in 0..100u64 {
            cluster.submit_write(
                "hot",
                Mutation::single("f", format!("v{i}").into_bytes()),
                ConsistencyLevel::One,
                &mut sim,
            );
            cluster.submit_read("hot", ConsistencyLevel::All, &mut sim);
        }
        let comps = drain(&mut cluster, &mut sim);
        for c in comps.iter().filter(|c| c.kind == OpKind::Read) {
            assert!(!c.stale);
        }
    }

    #[test]
    fn counters_track_replica_work() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..30 {
            cluster.submit_write(
                &format!("k{i}"),
                Mutation::single("f", b"v".to_vec()),
                ConsistencyLevel::Quorum,
                &mut sim,
            );
        }
        for i in 0..30 {
            cluster.submit_read(&format!("k{i}"), ConsistencyLevel::One, &mut sim);
        }
        let _ = drain(&mut cluster, &mut sim);
        let counters = cluster.node_counters();
        let total_writes: u64 = counters.iter().map(|c| c.writes).sum();
        let total_reads: u64 = counters.iter().map(|c| c.reads).sum();
        // Every write reaches all 3 replicas; every ONE read touches 1 replica.
        assert_eq!(total_writes, 30 * 3);
        assert_eq!(total_reads, 30);
        let totals = cluster.totals();
        assert_eq!(totals.reads_completed, 30);
        assert_eq!(totals.writes_completed, 30);
    }

    #[test]
    fn write_stage_telemetry_accumulates_service_samples() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..20 {
            cluster.submit_write(
                &format!("k{i}"),
                Mutation::single("f", b"v".to_vec()),
                ConsistencyLevel::Quorum,
                &mut sim,
            );
        }
        let _ = drain(&mut cluster, &mut sim);
        let telemetry = cluster.write_stage_telemetry();
        assert_eq!(telemetry.len(), cluster.node_count());
        let arrivals: u64 = telemetry.iter().map(|t| t.arrivals).sum();
        let completed: u64 = telemetry.iter().map(|t| t.completed).sum();
        // Every write reaches all 3 replicas (plus possible repair traffic).
        assert!(arrivals >= 60, "arrivals={arrivals}");
        assert_eq!(arrivals, completed, "queue drained");
        let service_total: f64 = telemetry.iter().map(|t| t.service_ms_total).sum();
        assert!(service_total > 0.0);
        // Mean sampled service time is in the ballpark of the configured mean.
        let mean = service_total / completed as f64;
        assert!(
            mean > 0.05 && mean < 1.0,
            "mean sampled write service {mean} ms vs configured {} ms",
            cluster.config().write_service_ms
        );
        // Queues are empty after draining.
        assert!(telemetry.iter().all(|t| t.queued == 0 && t.busy == 0));
    }

    #[test]
    fn replica_backlogs_reflect_per_node_service_factors() {
        let topology = Topology::single_dc(1, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.2));
        let config = StoreConfig {
            replication_factor: 3,
            node_service_factors: vec![1.0, 2.0, 0.0],
            ..StoreConfig::default()
        };
        let cluster = Cluster::new(config, topology, network, RngFactory::new(5));
        // Idle cluster: all backlogs zero, vector sized to the node count.
        let backlogs = cluster.replica_backlog_ms();
        assert_eq!(backlogs.len(), 3);
        assert!(backlogs.iter().all(|b| *b == 0.0));
        assert_eq!(cluster.mutation_backlog_ms(), 0.0);
    }

    #[test]
    fn straggler_node_accumulates_a_longer_backlog() {
        // One node with 4x the write service time: under sustained ONE writes
        // its mutation queue must grow beyond its peers', which is exactly
        // the cross-replica dispersion the queueing model keys on.
        let topology = Topology::single_dc(1, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.1));
        let config = StoreConfig {
            replication_factor: 3,
            node_concurrency: 1,
            write_service_ms: 0.4,
            node_service_factors: vec![4.0, 1.0, 1.0],
            background_read_repair_chance: 0.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(11));
        let mut sim: Simulation<StoreEvent> = Simulation::new(11);
        for i in 0..300u64 {
            cluster.submit_write(
                &format!("k{}", i % 7),
                Mutation::single("f", b"v".to_vec()),
                ConsistencyLevel::One,
                &mut sim,
            );
        }
        // Drive the sim just far enough to see the queues build up.
        let mut peak: Vec<f64> = vec![0.0; 3];
        for _ in 0..4_000 {
            let Some((_, ev)) = sim.next() else { break };
            cluster.handle(ev, &mut sim);
            for (i, b) in cluster.replica_backlog_ms().iter().enumerate() {
                peak[i] = peak[i].max(*b);
            }
        }
        assert!(
            peak[0] > peak[1] && peak[0] > peak[2],
            "straggler backlog {peak:?}"
        );
    }

    #[test]
    fn write_key_samples_accumulate_and_drain() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..12 {
            cluster.submit_write(
                &format!("k{}", i % 3),
                Mutation::single("f", b"v".to_vec()),
                ConsistencyLevel::One,
                &mut sim,
            );
        }
        let _ = drain(&mut cluster, &mut sim);
        let samples = cluster.drain_write_key_samples();
        assert_eq!(samples.len(), 12);
        let k0 = cluster.key_id("k0").unwrap();
        assert_eq!(samples.iter().filter(|k| **k == k0).count(), 4);
        // Draining empties the buffer.
        assert!(cluster.drain_write_key_samples().is_empty());
    }

    #[test]
    fn per_key_backlog_tracks_the_laggard_replica() {
        // One slow node, writes hammering a single key at ONE: the key's
        // backlog must reflect the deepest replica queue, while an untouched
        // key reports zero.
        let topology = Topology::single_dc(1, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.1));
        let config = StoreConfig {
            replication_factor: 3,
            node_concurrency: 1,
            write_service_ms: 0.4,
            node_service_factors: vec![4.0, 4.0, 4.0],
            background_read_repair_chance: 0.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(11));
        let mut sim: Simulation<StoreEvent> = Simulation::new(11);
        for _ in 0..200u64 {
            cluster.submit_write(
                "hot",
                Mutation::single("f", b"v".to_vec()),
                ConsistencyLevel::One,
                &mut sim,
            );
        }
        let hot = cluster.key_id("hot").unwrap();
        let cold = cluster.intern_key("cold");
        let keys = vec![hot, cold];
        let mut peak_hot = 0.0f64;
        for _ in 0..1_500 {
            let Some((_, ev)) = sim.next() else { break };
            cluster.handle(ev, &mut sim);
            let backlogs = cluster.per_key_backlog_ms(&keys);
            assert_eq!(backlogs.len(), 2);
            assert_eq!(backlogs[1], 0.0, "untouched key must have no backlog");
            peak_hot = peak_hot.max(backlogs[0]);
        }
        assert!(
            peak_hot > 1.0,
            "expected a visible per-key backlog, got {peak_hot} ms"
        );
        // The per-key backlog never exceeds the cluster-wide deepest queue.
        let _ = drain(&mut cluster, &mut sim);
        assert_eq!(cluster.per_key_backlog_ms(&keys), vec![0.0, 0.0]);
    }

    #[test]
    fn replica_sets_are_stable_and_sized() {
        let (mut cluster, _) = test_cluster(0.2);
        for i in 0..50 {
            let key = format!("user{i}");
            let reps = cluster.replicas_for(&key);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps, cluster.replicas_for(&key));
            // The cached lookup agrees with the fresh ring walk.
            let id = cluster.intern_key(&key);
            assert_eq!(cluster.replicas_for_id(id).as_slice(), reps.as_slice());
        }
    }

    #[test]
    fn placement_cache_survives_and_invalidates() {
        let (mut cluster, _) = test_cluster(0.2);
        let id = cluster.intern_key("user1");
        let first = cluster.replicas_for_id(id);
        // Cached second lookup is identical.
        assert_eq!(cluster.replicas_for_id(id), first);
        let generation = cluster.placement.generation();
        cluster.invalidate_placement();
        assert_eq!(cluster.placement.generation(), generation + 1);
        // Recomputed from the (unchanged) ring: same placement.
        assert_eq!(cluster.replicas_for_id(id), first);
    }

    #[test]
    fn load_direct_populates_all_replicas() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        cluster.load_direct("k", &Mutation::single("f", b"v".to_vec()), Timestamp(5));
        let id = cluster.key_id("k").unwrap();
        for node in cluster.replicas_for("k") {
            assert_eq!(
                cluster.node(node).engine().digest(id),
                Some(Timestamp(5)),
                "replica {node} not loaded"
            );
        }
        // A subsequent ONE read is fresh since all replicas agree.
        cluster.submit_read("k", ConsistencyLevel::One, &mut sim);
        let comps = drain(&mut cluster, &mut sim);
        assert!(!comps[0].stale);
    }

    #[test]
    fn read_repair_converges_stale_replicas() {
        let topology = Topology::single_dc(1, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.5));
        let config = StoreConfig {
            replication_factor: 3,
            background_read_repair_chance: 1.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(3));
        let mut sim: Simulation<StoreEvent> = Simulation::new(3);

        // Make one replica stale by writing directly to the other two.
        let replicas = cluster.replicas_for("k");
        let stale_node = replicas[2];
        let m = Mutation::single("f", b"fresh".to_vec());
        cluster.submit_write("k", m, ConsistencyLevel::All, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        let id = cluster.key_id("k").unwrap();
        // Manually age the third replica by checking digest equality first.
        let ts = cluster.node(replicas[0]).engine().digest(id).unwrap();
        assert_eq!(cluster.node(stale_node).engine().digest(id), Some(ts));

        // Now write at ONE so propagation is asynchronous, then read at QUORUM
        // repeatedly: read repair plus background repair must converge every
        // replica to the newest timestamp once the queue drains.
        cluster.submit_write(
            "k",
            Mutation::single("f", b"newer".to_vec()),
            ConsistencyLevel::One,
            &mut sim,
        );
        for _ in 0..5 {
            cluster.submit_read("k", ConsistencyLevel::Quorum, &mut sim);
        }
        let _ = drain(&mut cluster, &mut sim);
        let newest = cluster
            .replicas_for("k")
            .iter()
            .filter_map(|n| cluster.node(*n).engine().digest(id))
            .max()
            .unwrap();
        for node in cluster.replicas_for("k") {
            assert_eq!(
                cluster.node(node).engine().digest(id),
                Some(newest),
                "replica {node} still stale after read repair"
            );
        }
        assert!(cluster.totals().repairs_issued > 0);
    }

    #[test]
    fn crash_hints_mutations_and_restart_drains_them() {
        // Single service slot + slow writes so mutations pile up in the
        // victim's queue, then crash it: the queue must survive as hints and
        // replay on restart, converging the replica.
        let topology = Topology::single_dc(1, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.1));
        let config = StoreConfig {
            replication_factor: 3,
            node_concurrency: 1,
            write_service_ms: 0.4,
            background_read_repair_chance: 0.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(9));
        let mut sim: Simulation<StoreEvent> = Simulation::new(9);
        let victim = cluster.replicas_for("hot")[2];
        for _ in 0..50 {
            cluster.submit_write(
                "hot",
                Mutation::single("f", b"v".to_vec()),
                ConsistencyLevel::One,
                &mut sim,
            );
        }
        // Let some deliveries land so the victim's queue is non-empty.
        for _ in 0..120 {
            let Some((_, ev)) = sim.next() else { break };
            cluster.handle(ev, &mut sim);
        }
        cluster.apply_fault(&FaultEvent::CrashNode { node: victim }, &mut sim);
        assert!(!cluster.fault_state().is_serving(victim));
        assert_eq!(cluster.live_node_count(), 2);
        let _ = drain(&mut cluster, &mut sim);
        let hinted = cluster.hinted_mutations(victim);
        assert!(hinted > 0, "expected hinted mutations for the crashed node");
        let id = cluster.key_id("hot").unwrap();
        let live_newest = cluster
            .replicas_for("hot")
            .iter()
            .filter(|n| cluster.fault_state().is_serving(**n))
            .filter_map(|n| cluster.node(*n).digest(id))
            .max()
            .unwrap();
        assert!(
            cluster.node(victim).digest(id).unwrap_or(Timestamp::ZERO) < live_newest,
            "the crashed node must be behind while down"
        );
        // Restart: the hints replay and the node converges.
        cluster.apply_fault(&FaultEvent::RestartNode { node: victim }, &mut sim);
        assert_eq!(cluster.hinted_mutations(victim), 0);
        let _ = drain(&mut cluster, &mut sim);
        assert_eq!(
            cluster.node(victim).digest(id),
            Some(live_newest),
            "hint replay must converge the restarted replica"
        );
    }

    #[test]
    fn reads_avoid_crashed_replicas_and_writes_still_ack() {
        let (mut cluster, mut sim) = test_cluster(0.3);
        cluster.load_direct("k", &Mutation::single("f", b"v".to_vec()), Timestamp(1));
        let victim = cluster.replicas_for("k")[0];
        cluster.apply_fault(&FaultEvent::CrashNode { node: victim }, &mut sim);
        // Quorum reads and ONE writes keep completing on the surviving pair.
        for _ in 0..10 {
            cluster.submit_write(
                "k",
                Mutation::single("f", b"w".to_vec()),
                ConsistencyLevel::One,
                &mut sim,
            );
            cluster.submit_read("k", ConsistencyLevel::Quorum, &mut sim);
        }
        let comps = drain(&mut cluster, &mut sim);
        let reads: Vec<_> = comps.iter().filter(|c| c.kind == OpKind::Read).collect();
        assert_eq!(reads.len(), 10);
        assert!(reads.iter().all(|c| !c.aborted));
        assert_eq!(
            comps
                .iter()
                .filter(|c| c.kind == OpKind::Write && !c.aborted)
                .count(),
            10
        );
        assert_eq!(cluster.totals().ops_aborted, 0);
    }

    #[test]
    fn all_replicas_down_aborts_instead_of_stalling() {
        let (mut cluster, mut sim) = test_cluster(0.3);
        cluster.load_direct("k", &Mutation::single("f", b"v".to_vec()), Timestamp(1));
        for node in cluster.replicas_for("k") {
            cluster.apply_fault(&FaultEvent::CrashNode { node }, &mut sim);
        }
        cluster.submit_read("k", ConsistencyLevel::One, &mut sim);
        cluster.submit_write(
            "k",
            Mutation::single("f", b"w".to_vec()),
            ConsistencyLevel::One,
            &mut sim,
        );
        let comps = drain(&mut cluster, &mut sim);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.aborted));
        assert_eq!(cluster.totals().ops_aborted, 2);
        // The write still left hints for the whole (down) replica set.
        assert!(cluster
            .replicas_for("k")
            .iter()
            .any(|n| cluster.hinted_mutations(*n) > 0));
    }

    #[test]
    fn every_node_down_aborts_client_ops_instead_of_losing_them() {
        // With the whole cluster dead, any coordinator pick is dead too: the
        // client operation must come back aborted (connection error), never
        // silently vanish.
        let (mut cluster, mut sim) = test_cluster(0.3);
        cluster.load_direct("k", &Mutation::single("f", b"v".to_vec()), Timestamp(1));
        for node in cluster.topology().nodes().collect::<Vec<_>>() {
            cluster.apply_fault(&FaultEvent::CrashNode { node }, &mut sim);
        }
        assert_eq!(cluster.live_node_count(), 0);
        cluster.submit_read("k", ConsistencyLevel::One, &mut sim);
        cluster.submit_write(
            "k",
            Mutation::single("f", b"w".to_vec()),
            ConsistencyLevel::One,
            &mut sim,
        );
        let comps = drain(&mut cluster, &mut sim);
        assert_eq!(comps.len(), 2, "both operations must surface");
        assert!(comps.iter().all(|c| c.aborted));
        assert_eq!(cluster.totals().ops_aborted, 2);
    }

    #[test]
    fn restart_inside_a_partition_does_not_replay_hints_across_the_cut() {
        // Node crashes, accumulates hints from the majority side, then a
        // partition isolates it *before* it restarts: the replay must wait
        // for the heal — a restart must not smuggle data over the cut.
        let (mut cluster, mut sim) = test_cluster(0.3);
        cluster.load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        let victim = cluster.replicas_for("k")[2];
        cluster.apply_fault(&FaultEvent::CrashNode { node: victim }, &mut sim);
        cluster.submit_write(
            "k",
            Mutation::single("f", b"v1".to_vec()),
            ConsistencyLevel::Quorum,
            &mut sim,
        );
        let _ = drain(&mut cluster, &mut sim);
        assert!(cluster.hinted_mutations(victim) > 0);
        let hinted = cluster.hinted_mutations(victim);
        // Partition the victim away, then restart it inside the window.
        let rest: Vec<NodeId> = cluster
            .topology()
            .nodes()
            .filter(|n| *n != victim)
            .collect();
        cluster.apply_fault(
            &FaultEvent::Partition {
                groups: vec![rest, vec![victim]],
            },
            &mut sim,
        );
        cluster.apply_fault(&FaultEvent::RestartNode { node: victim }, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        assert_eq!(
            cluster.hinted_mutations(victim),
            hinted,
            "hints must stay stored while the cut isolates their origin"
        );
        let id = cluster.key_id("k").unwrap();
        assert_eq!(
            cluster.node(victim).digest(id),
            Some(Timestamp(1)),
            "the isolated replica must not see the majority's write yet"
        );
        // Heal: now the hints replay and the replica converges.
        cluster.apply_fault(&FaultEvent::HealPartition, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        assert_eq!(cluster.hinted_mutations(victim), 0);
        assert!(cluster.node(victim).digest(id).unwrap() > Timestamp(1));
    }

    #[test]
    fn partition_hints_across_the_cut_and_heal_converges() {
        let (mut cluster, mut sim) = test_cluster(0.3);
        cluster.load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        let replicas = cluster.replicas_for("k");
        let id = cluster.key_id("k").unwrap();
        // Cut the third replica off from everyone else.
        let minority = replicas[2];
        let majority: Vec<NodeId> = cluster
            .topology()
            .nodes()
            .filter(|n| *n != minority)
            .collect();
        cluster.apply_fault(
            &FaultEvent::Partition {
                groups: vec![majority, vec![minority]],
            },
            &mut sim,
        );
        cluster.submit_write(
            "k",
            Mutation::single("f", b"v1".to_vec()),
            ConsistencyLevel::Quorum,
            &mut sim,
        );
        let comps = drain(&mut cluster, &mut sim);
        assert!(comps.iter().all(|c| !c.aborted), "quorum survives the cut");
        let newest = cluster.node(replicas[0]).digest(id).unwrap();
        assert!(
            cluster.node(minority).digest(id).unwrap() < newest,
            "the cut-off replica must not see the write"
        );
        assert!(cluster.hinted_mutations(minority) > 0);
        // Heal: the hint replays and the minority converges.
        cluster.apply_fault(&FaultEvent::HealPartition, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        assert_eq!(cluster.node(minority).digest(id), Some(newest));
        assert_eq!(cluster.fault_state().counters().heals, 1);
    }

    #[test]
    fn slow_node_stretches_its_service_times() {
        let (mut cluster, mut sim) = test_cluster(0.1);
        let victim = NodeId(0);
        cluster.apply_fault(
            &FaultEvent::SlowNode {
                node: victim,
                service_factor: 50.0,
            },
            &mut sim,
        );
        assert_eq!(cluster.fault_state().service_factor(victim), 50.0);
        for i in 0..40 {
            cluster.submit_write(
                &format!("k{i}"),
                Mutation::single("f", b"v".to_vec()),
                ConsistencyLevel::All,
                &mut sim,
            );
        }
        let _ = drain(&mut cluster, &mut sim);
        let telemetry = cluster.write_stage_telemetry();
        let mean = |n: NodeId| {
            let t = &telemetry[n.index()];
            t.service_ms_total / t.completed.max(1) as f64
        };
        assert!(
            mean(victim) > 5.0 * mean(NodeId(1)),
            "slowed node mean {} vs peer {}",
            mean(victim),
            mean(NodeId(1))
        );
        // Restore to nominal speed.
        cluster.apply_fault(
            &FaultEvent::SlowNode {
                node: victim,
                service_factor: 1.0,
            },
            &mut sim,
        );
        assert!(!cluster.fault_state().any_active());
    }

    #[test]
    fn join_rebuilds_the_ring_and_bootstraps_the_new_node() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..40 {
            cluster.load_direct(
                &format!("k{i}"),
                &Mutation::single("f", b"v".to_vec()),
                Timestamp(i + 1),
            );
        }
        let generation = cluster.placement.generation();
        cluster.apply_fault(&FaultEvent::JoinNode { dc: 0, rack: 0 }, &mut sim);
        let joined = NodeId(6);
        assert_eq!(cluster.node_count(), 7);
        assert_eq!(cluster.placement.generation(), generation + 1);
        assert!(cluster.fault_state().is_serving(joined));
        // The new node owns some keys, and holds the freshest copy of each
        // (bootstrap streaming finished before it serves).
        let mut owned = 0;
        for i in 0..40 {
            let name = format!("k{i}");
            let id = cluster.key_id(&name).unwrap();
            let reps = cluster.replicas_for(&name);
            assert_eq!(reps, {
                let cached = cluster.replicas_for_id(id);
                cached.as_slice().to_vec()
            });
            if reps.contains(&joined) {
                owned += 1;
                assert_eq!(cluster.node(joined).digest(id), Some(Timestamp(i + 1)));
            }
        }
        assert!(owned > 0, "7 nodes x 16 vnodes must hand the joiner keys");
        // Reads served by the joiner are fresh.
        for i in 0..40 {
            cluster.submit_read(&format!("k{i}"), ConsistencyLevel::One, &mut sim);
        }
        let comps = drain(&mut cluster, &mut sim);
        assert!(comps.iter().all(|c| !c.stale && !c.aborted));
    }

    #[test]
    fn mid_partition_joiner_bootstraps_at_the_heal() {
        // A node joining during an active partition is isolated: it owns
        // ring ranges immediately but can stream from nobody. The heal must
        // retry the anti-entropy pass so the joiner converges.
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..40 {
            cluster.load_direct(
                &format!("k{i}"),
                &Mutation::single("f", b"v".to_vec()),
                Timestamp(i + 1),
            );
        }
        let everyone: Vec<NodeId> = cluster.topology().nodes().collect();
        cluster.apply_fault(
            &FaultEvent::Partition {
                groups: vec![everyone],
            },
            &mut sim,
        );
        cluster.apply_fault(&FaultEvent::JoinNode { dc: 0, rack: 0 }, &mut sim);
        let joined = NodeId(6);
        let owned: Vec<String> = (0..40)
            .map(|i| format!("k{i}"))
            .filter(|name| cluster.replicas_for(name).contains(&joined))
            .collect();
        assert!(!owned.is_empty(), "the joiner must own some keys");
        for name in &owned {
            let id = cluster.key_id(name).unwrap();
            assert_eq!(
                cluster.node(joined).digest(id),
                None,
                "{name}: nothing can stream across the cut"
            );
        }
        // Heal: streams are retried and the joiner converges.
        cluster.apply_fault(&FaultEvent::HealPartition, &mut sim);
        for name in &owned {
            let id = cluster.key_id(name).unwrap();
            assert!(
                cluster.node(joined).digest(id).is_some(),
                "{name} still missing on the joiner after the heal"
            );
        }
    }

    #[test]
    fn decommission_streams_data_out_and_leaves_the_ring() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..40 {
            cluster.load_direct(
                &format!("k{i}"),
                &Mutation::single("f", b"v".to_vec()),
                Timestamp(i + 1),
            );
        }
        let leaving = NodeId(0);
        cluster.apply_fault(&FaultEvent::DecommissionNode { node: leaving }, &mut sim);
        assert!(!cluster.fault_state().is_serving(leaving));
        assert!(!cluster.fault_state().is_member(leaving));
        assert_eq!(cluster.live_node_count(), 5);
        // No replica set references the leaver, and every remaining replica
        // holds the freshest copy of every key.
        for i in 0..40 {
            let name = format!("k{i}");
            let id = cluster.key_id(&name).unwrap();
            let reps = cluster.replicas_for(&name);
            assert!(!reps.contains(&leaving), "{name} still placed on leaver");
            for node in reps {
                assert_eq!(cluster.node(node).digest(id), Some(Timestamp(i + 1)));
            }
        }
        // Reads after the decommission stay fresh and never touch the leaver.
        for i in 0..40 {
            cluster.submit_read(&format!("k{i}"), ConsistencyLevel::One, &mut sim);
        }
        let comps = drain(&mut cluster, &mut sim);
        assert!(comps.iter().all(|c| !c.stale && !c.aborted));
        assert_eq!(cluster.fault_state().counters().decommissions, 1);
    }

    #[test]
    fn expire_stalled_ops_frees_operations_stranded_by_a_cut() {
        // Construct the strand deterministically: the read is coordinated
        // and fanned out, then the coordinator is isolated before any
        // response can reach it. An ALL read needs every replica's answer
        // and at most one replica (the coordinator itself) can still
        // respond, so the operation can never complete — only the reaper
        // can free it.
        let (mut cluster, mut sim) = test_cluster(0.3);
        cluster.load_direct("k", &Mutation::single("f", b"v".to_vec()), Timestamp(1));
        cluster.submit_read("k", ConsistencyLevel::All, &mut sim);
        // Process exactly the client→coordinator delivery: round-robin makes
        // node 0 the coordinator, and handling this event schedules the
        // replica-read fan-out.
        let (_, ev) = sim.next().unwrap();
        cluster.handle(ev, &mut sim);
        // Cut the coordinator (node 0) off from everyone else.
        let a: Vec<NodeId> = vec![NodeId(0)];
        let b: Vec<NodeId> = cluster.topology().nodes().skip(1).collect();
        cluster.apply_fault(&FaultEvent::Partition { groups: vec![a, b] }, &mut sim);
        // Everything that can run, runs: replica reads are served, but their
        // responses are dropped at the cut, so the read never completes.
        let comps = drain(&mut cluster, &mut sim);
        assert!(
            comps.is_empty(),
            "the stranded ALL read must not complete across the cut: {comps:?}"
        );
        // Reap: the stranded op aborts instead of hanging the client.
        sim.schedule_in(
            SimTime::from_secs(2),
            StoreEvent::ClientReply { op: OpId(u64::MAX) },
        );
        let _ = sim.next(); // advance virtual time past the timeout
        let aborted = cluster.expire_stalled_ops(SimTime::from_secs(1), &mut sim);
        assert_eq!(aborted, 1);
        let comps = drain(&mut cluster, &mut sim);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].aborted);
        assert_eq!(cluster.totals().ops_aborted, 1);
    }

    #[test]
    fn completions_report_latency_components() {
        let (mut cluster, mut sim) = test_cluster(1.0);
        cluster.load_direct("k", &Mutation::single("f", b"v".to_vec()), Timestamp(1));
        cluster.submit_read("k", ConsistencyLevel::One, &mut sim);
        let c = drain(&mut cluster, &mut sim).remove(0);
        // Latency must at least cover: client->coord, coord->replica,
        // replica->coord, coord->client (uniform latency is scaled 0.05 for
        // loopback, so use a loose lower bound).
        assert!(c.latency() >= SimTime::from_millis_f64(0.5));
        assert_eq!(c.consistency, ConsistencyLevel::One);
    }

    // ---- panic-path regressions: every former unwrap!/unreachable! on the
    // ---- fault path must degrade into a counted `protocol_drops` instead.

    #[test]
    fn coordination_message_in_a_service_slot_is_counted_not_fatal() {
        // A ClientRead has no service stage; before the sweep this hit
        // `Stage::of(..).expect(..)` and took the whole run down. Injected
        // directly — the shape a fault-scheduling bug would produce.
        let (mut cluster, mut sim) = test_cluster(0.2);
        let key = cluster.intern_key("k");
        sim.schedule_in(
            SimTime::from_millis(1),
            StoreEvent::Process {
                node: NodeId(0),
                message: Message::ClientRead {
                    op: OpId(7),
                    key,
                    consistency: ConsistencyLevel::One,
                },
            },
        );
        let comps = drain(&mut cluster, &mut sim);
        assert!(comps.is_empty());
        assert_eq!(cluster.totals().protocol_drops, 1);
    }

    #[test]
    fn replica_write_to_a_nonexistent_slot_is_counted_not_fatal() {
        // A ReplicaWrite racing an elastic topology change can arrive for a
        // node slot that no longer has a hint vector; the old inner
        // `unreachable!` rematch panicked here.
        let (mut cluster, mut sim) = test_cluster(0.2);
        let key = cluster.intern_key("k");
        sim.schedule_in(
            SimTime::from_millis(1),
            StoreEvent::Deliver {
                dest: NodeId(99),
                message: Message::ReplicaWrite {
                    op: OpId(8),
                    key,
                    mutation: Arc::new(Mutation::single("f", b"v".to_vec())),
                    timestamp: Timestamp(3),
                    coordinator: NodeId(0),
                },
            },
        );
        let comps = drain(&mut cluster, &mut sim);
        assert!(comps.is_empty());
        assert_eq!(cluster.totals().protocol_drops, 1);
    }

    #[test]
    fn replica_write_to_a_dead_node_becomes_a_hint_under_its_coordinator() {
        // The healthy half of the same conversion: a valid slot stores the
        // hint, keyed by the coordinator carried inside the message.
        let (mut cluster, mut sim) = test_cluster(0.2);
        let key = cluster.intern_key("k");
        cluster.apply_fault(&FaultEvent::CrashNode { node: NodeId(1) }, &mut sim);
        sim.schedule_in(
            SimTime::from_millis(1),
            StoreEvent::Deliver {
                dest: NodeId(1),
                message: Message::ReplicaWrite {
                    op: OpId(9),
                    key,
                    mutation: Arc::new(Mutation::single("f", b"v".to_vec())),
                    timestamp: Timestamp(3),
                    coordinator: NodeId(0),
                },
            },
        );
        let _ = drain(&mut cluster, &mut sim);
        assert_eq!(cluster.hinted_mutations(NodeId(1)), 1);
        assert_eq!(cluster.totals().protocol_drops, 0);
    }

    #[test]
    fn replica_work_on_the_coordination_path_is_counted_not_fatal() {
        // Replica work surfacing in the *coordination* dispatch (a crafted
        // RepairWrite straggler whose service queueing was bypassed) used to
        // hit `unreachable!("replica work handled earlier")` via the
        // post-abort straggler path. Inject the one shape that skips the
        // replica-work queue: an ack for an operation nobody has pending is
        // tolerated silently, while stage-less repair traffic in a service
        // slot is counted.
        let (mut cluster, mut sim) = test_cluster(0.2);
        let key = cluster.intern_key("k");
        // Straggler ack after its op is gone: tolerated, not a drop.
        sim.schedule_in(
            SimTime::from_millis(1),
            StoreEvent::Deliver {
                dest: NodeId(0),
                message: Message::ReplicaWriteAck {
                    op: OpId(1234),
                    from: NodeId(1),
                },
            },
        );
        // A ClientWrite jammed into a service slot: stage-less, counted.
        sim.schedule_in(
            SimTime::from_millis(2),
            StoreEvent::Process {
                node: NodeId(1),
                message: Message::ClientWrite {
                    op: OpId(1235),
                    key,
                    mutation: Arc::new(Mutation::single("f", b"v".to_vec())),
                    consistency: ConsistencyLevel::One,
                },
            },
        );
        let comps = drain(&mut cluster, &mut sim);
        assert!(comps.is_empty());
        assert_eq!(cluster.totals().protocol_drops, 1);
    }

    #[test]
    fn churn_schedule_with_live_traffic_finishes_without_panics() {
        // Decommission + crash + restart while writes keep flowing: the
        // whole sweep's point is that no fault interleaving panics. All
        // drops stay zero because every message finds a legal home.
        let (mut cluster, mut sim) = test_cluster(0.3);
        for i in 0..10u64 {
            cluster.load_direct(
                &format!("user{i}"),
                &Mutation::single("f", b"v".to_vec()),
                Timestamp(i + 1),
            );
        }
        for round in 0..6u64 {
            for i in 0..10u64 {
                cluster.submit_write(
                    &format!("user{i}"),
                    Mutation::single("f", format!("r{round}").into_bytes()),
                    ConsistencyLevel::One,
                    &mut sim,
                );
            }
            match round {
                1 => cluster.apply_fault(&FaultEvent::CrashNode { node: NodeId(2) }, &mut sim),
                2 => {
                    cluster.apply_fault(&FaultEvent::DecommissionNode { node: NodeId(4) }, &mut sim)
                }
                3 => cluster.apply_fault(&FaultEvent::RestartNode { node: NodeId(2) }, &mut sim),
                4 => cluster.apply_fault(&FaultEvent::JoinNode { dc: 0, rack: 0 }, &mut sim),
                _ => {}
            }
            let _ = drain(&mut cluster, &mut sim);
        }
        let totals = cluster.totals();
        assert!(totals.writes_completed + totals.ops_aborted >= 55);
        assert_eq!(totals.protocol_drops, 0);
    }

    #[test]
    fn hint_cap_evicts_oldest_hints_and_restart_still_converges() {
        // A crashed replica accumulates hints while writes hammer its key at
        // ONE. With a per-origin cap of 1, each of the five rotating
        // coordinators keeps only its newest hint: 15 writes -> 5 kept, 10
        // evicted. The retained newest-per-origin set still converges the
        // node on restart (last-write-wins keeps the newest overall).
        let topology = Topology::single_dc(2, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.2));
        let config = StoreConfig {
            replication_factor: 3,
            hint_cap_per_origin: 1,
            background_read_repair_chance: 0.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(7));
        let mut sim: Simulation<StoreEvent> = Simulation::new(7);
        cluster.load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        let key = cluster.key_id("k").unwrap();
        let dead = cluster.replicas_for_id(key).as_slice()[0];
        cluster.apply_fault(&FaultEvent::CrashNode { node: dead }, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        for i in 0..15u64 {
            cluster.submit_write(
                "k",
                Mutation::single("f", format!("v{i}").into_bytes()),
                ConsistencyLevel::One,
                &mut sim,
            );
            let _ = drain(&mut cluster, &mut sim);
        }
        assert_eq!(cluster.hinted_mutations(dead), 5);
        assert_eq!(cluster.totals().hints_evicted, 10);
        cluster.apply_fault(&FaultEvent::RestartNode { node: dead }, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        assert!(cluster.all_replicas_converged());
    }

    #[test]
    fn unbounded_hints_never_evict() {
        // Same scenario with the cap disabled (the default): every hint is
        // retained, byte-for-byte the pre-cap behaviour.
        let topology = Topology::single_dc(2, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.2));
        let config = StoreConfig {
            replication_factor: 3,
            background_read_repair_chance: 0.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(7));
        let mut sim: Simulation<StoreEvent> = Simulation::new(7);
        cluster.load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        let key = cluster.key_id("k").unwrap();
        let dead = cluster.replicas_for_id(key).as_slice()[0];
        cluster.apply_fault(&FaultEvent::CrashNode { node: dead }, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        for i in 0..15u64 {
            cluster.submit_write(
                "k",
                Mutation::single("f", format!("v{i}").into_bytes()),
                ConsistencyLevel::One,
                &mut sim,
            );
            let _ = drain(&mut cluster, &mut sim);
        }
        assert_eq!(cluster.hinted_mutations(dead), 15);
        assert_eq!(cluster.totals().hints_evicted, 0);
    }

    #[test]
    fn anti_entropy_heals_divergence_with_zero_read_traffic() {
        // Manufacture engine-level divergence (one replica behind), then
        // drive anti-entropy rounds only. The cluster must converge without
        // a single read being served or submitted — repair is digest+stream,
        // not read-repair.
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..8u64 {
            cluster.load_direct(
                &format!("k{i}"),
                &Mutation::single("f", b"v0".to_vec()),
                Timestamp(1),
            );
        }
        let key = cluster.key_id("k3").unwrap();
        let replicas = cluster.replicas_for_id(key);
        let laggard = replicas.as_slice()[0];
        let newer = Mutation::single("f", b"v1".to_vec());
        for &r in replicas.as_slice() {
            if r != laggard {
                cluster.nodes[r.index()]
                    .engine_mut()
                    .apply(key, &newer, Timestamp(9));
            }
        }
        cluster.latest_acked[key.index()] = Timestamp(9);
        assert!(!cluster.all_replicas_converged());
        let reads_before: u64 = cluster.node_counters().iter().map(|c| c.reads).sum();

        // One full cursor cycle: every serving node initiates once.
        for _ in 0..cluster.node_count() {
            cluster.run_anti_entropy_round(&mut sim);
            let _ = drain(&mut cluster, &mut sim);
        }

        assert!(cluster.all_replicas_converged());
        assert_eq!(
            cluster.node(laggard).digest(key),
            Some(Timestamp(9)),
            "laggard must hold the newest row"
        );
        let reads_after: u64 = cluster.node_counters().iter().map(|c| c.reads).sum();
        assert_eq!(reads_before, reads_after, "repair must not serve reads");
        assert_eq!(cluster.totals().reads_submitted, 0);
        let totals = cluster.totals();
        assert!(totals.ae_rounds >= 1);
        assert!(totals.ae_rows_streamed >= 1, "{totals:?}");
    }

    #[test]
    fn anti_entropy_on_converged_tables_streams_nothing() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        for i in 0..8u64 {
            cluster.load_direct(
                &format!("k{i}"),
                &Mutation::single("f", b"v0".to_vec()),
                Timestamp(1),
            );
        }
        for _ in 0..cluster.node_count() {
            cluster.run_anti_entropy_round(&mut sim);
            let _ = drain(&mut cluster, &mut sim);
        }
        let totals = cluster.totals();
        assert!(totals.ae_rounds >= 1);
        assert_eq!(totals.ae_rows_streamed, 0, "{totals:?}");
    }

    #[test]
    fn anti_entropy_respects_an_active_partition() {
        // A cut isolating one fresh replica: rounds run on both sides but no
        // row crosses the partition; the far laggard stays behind until the
        // heal, after which a round closes the gap.
        let (mut cluster, mut sim) = test_cluster(0.2);
        cluster.load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        let key = cluster.key_id("k").unwrap();
        let replicas = cluster.replicas_for_id(key);
        let fresh = replicas.as_slice()[0];
        let newer = Mutation::single("f", b"v1".to_vec());
        cluster.nodes[fresh.index()]
            .engine_mut()
            .apply(key, &newer, Timestamp(9));
        cluster.latest_acked[key.index()] = Timestamp(9);
        let rest: Vec<NodeId> = (0..cluster.node_count() as u32)
            .map(NodeId)
            .filter(|n| *n != fresh)
            .collect();
        cluster.apply_fault(
            &FaultEvent::Partition {
                groups: vec![vec![fresh], rest],
            },
            &mut sim,
        );
        for _ in 0..cluster.node_count() {
            cluster.run_anti_entropy_round(&mut sim);
            let _ = drain(&mut cluster, &mut sim);
        }
        assert!(
            !cluster.all_replicas_converged(),
            "no row may cross an active cut"
        );
        cluster.apply_fault(&FaultEvent::HealPartition, &mut sim);
        let _ = drain(&mut cluster, &mut sim);
        for _ in 0..cluster.node_count() {
            cluster.run_anti_entropy_round(&mut sim);
            let _ = drain(&mut cluster, &mut sim);
        }
        assert!(cluster.all_replicas_converged());
    }

    #[test]
    fn failure_detector_records_heartbeats_and_steers_reads() {
        // With the detector on, replica responses build per-node histories;
        // after a replica goes silent long enough its suspicion crosses the
        // threshold and `node_suspicions` exposes it.
        let topology = Topology::single_dc(2, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.2));
        let config = StoreConfig {
            replication_factor: 3,
            failure_detector_enabled: true,
            background_read_repair_chance: 0.0,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(config, topology, network, RngFactory::new(7));
        let mut sim: Simulation<StoreEvent> = Simulation::new(7);
        cluster.load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        for _ in 0..30 {
            cluster.submit_read("k", ConsistencyLevel::All, &mut sim);
            let _ = drain(&mut cluster, &mut sim);
        }
        let key = cluster.key_id("k").unwrap();
        let replica = cluster.replicas_for_id(key).as_slice()[0];
        // Immediately after the last response the silence is at most a few
        // network round-trips — far below any convict threshold.
        let now = sim.now();
        assert!(cluster.suspicion_of(replica, now) < 8.0);
        // A long silence (vs. the observed per-read cadence) turns into
        // suspicion well past the convict threshold.
        let later = now.saturating_add(SimTime::from_secs(60));
        let suspicions = cluster.node_suspicions(later);
        assert!(
            suspicions[replica.index()] > 8.0,
            "suspicions={suspicions:?}"
        );
    }

    #[test]
    fn disabled_failure_detector_reports_zero_suspicion() {
        let (mut cluster, mut sim) = test_cluster(0.2);
        cluster.load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        for _ in 0..10 {
            cluster.submit_read("k", ConsistencyLevel::All, &mut sim);
            let _ = drain(&mut cluster, &mut sim);
        }
        let later = sim.now().saturating_add(SimTime::from_secs(3600));
        assert!(cluster.node_suspicions(later).iter().all(|s| *s == 0.0));
    }
}

//! Consistent-hash token ring with virtual nodes.
//!
//! Keys are hashed onto a 64-bit token space; each physical node owns several
//! tokens (virtual nodes) and a key's primary replica is the node owning the
//! first token at or after the key's hash, walking clockwise. The replication
//! strategy ([`crate::placement`]) then walks the ring from that point to pick
//! the remaining replicas.

use harmony_sim::rng::{fnv1a, mix};
use harmony_sim::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Hashes a key onto the 64-bit token space.
pub fn key_token(key: &str) -> u64 {
    mix(fnv1a(key.as_bytes()), 0x9E37_79B9_7F4A_7C15)
}

/// A token owned by a (virtual) node on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenEntry {
    /// Position on the ring.
    pub token: u64,
    /// The physical node owning this token.
    pub node: NodeId,
}

/// A consistent-hash ring mapping tokens to physical nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashRing {
    entries: Vec<TokenEntry>,
    nodes: usize,
    vnodes_per_node: usize,
}

impl HashRing {
    /// Builds a ring for nodes `0..node_count`, each owning `vnodes_per_node`
    /// pseudo-random (but deterministic) tokens.
    ///
    /// # Panics
    /// Panics if `node_count` or `vnodes_per_node` is zero.
    pub fn new(node_count: usize, vnodes_per_node: usize) -> Self {
        assert!(node_count > 0, "ring needs at least one node");
        let members: Vec<NodeId> = (0..node_count as u32).map(NodeId).collect();
        HashRing::with_members(&members, vnodes_per_node)
    }

    /// Builds a ring over an explicit membership set — the elastic form of
    /// [`HashRing::new`]. Each member keeps the tokens its id has always
    /// hashed to, so adding or removing a member only moves the key ranges
    /// adjacent to its tokens (the consistent-hashing property node churn
    /// relies on); `new(n, v)` is exactly `with_members(&[0..n], v)`.
    ///
    /// # Panics
    /// Panics if `members` is empty or `vnodes_per_node` is zero.
    pub fn with_members(members: &[NodeId], vnodes_per_node: usize) -> Self {
        assert!(!members.is_empty(), "ring needs at least one node");
        assert!(vnodes_per_node > 0, "each node needs at least one token");
        let mut entries = Vec::with_capacity(members.len() * vnodes_per_node);
        for &node in members {
            for v in 0..vnodes_per_node {
                let token = mix(fnv1a(format!("node{}", node.0).as_bytes()), v as u64 + 1);
                entries.push(TokenEntry { token, node });
            }
        }
        entries.sort_by_key(|e| (e.token, e.node.0));
        entries.dedup_by_key(|e| e.token);
        HashRing {
            entries,
            nodes: members.len(),
            vnodes_per_node,
        }
    }

    /// Number of physical nodes the ring was built for.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of tokens on the ring.
    pub fn token_count(&self) -> usize {
        self.entries.len()
    }

    /// Virtual nodes configured per physical node.
    pub fn vnodes_per_node(&self) -> usize {
        self.vnodes_per_node
    }

    /// The index in the token list of the first token at or after `token`
    /// (wrapping to 0 past the end).
    fn successor_index(&self, token: u64) -> usize {
        match self.entries.binary_search_by(|e| e.token.cmp(&token)) {
            Ok(i) => i,
            Err(i) => {
                if i == self.entries.len() {
                    0
                } else {
                    i
                }
            }
        }
    }

    /// The primary replica for a key.
    pub fn primary_for_key(&self, key: &str) -> NodeId {
        self.entries[self.successor_index(key_token(key))].node
    }

    /// Walks the ring clockwise starting at the key's token, yielding the
    /// owning physical node of each token (with repetitions — deduplication
    /// is the replication strategy's job).
    pub fn walk_from_key<'a>(&'a self, key: &str) -> impl Iterator<Item = NodeId> + 'a {
        let start = self.successor_index(key_token(key));
        let len = self.entries.len();
        (0..len).map(move |i| self.entries[(start + i) % len].node)
    }

    /// The first `count` *distinct* physical nodes encountered walking the
    /// ring from the key's position. This is `SimpleStrategy` placement.
    pub fn preference_list(&self, key: &str, count: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(count);
        for node in self.walk_from_key(key) {
            if !out.contains(&node) {
                out.push(node);
                if out.len() == count {
                    break;
                }
            }
        }
        out
    }

    /// The fraction of the token space owned by each node (useful for
    /// checking balance); indexed by node id. Rings built over an elastic
    /// membership can have non-contiguous ids (a decommissioned slot leaves
    /// a hole), so the vector is sized to the highest member id and the
    /// holes simply own zero.
    pub fn ownership(&self) -> Vec<f64> {
        let slots = self
            .entries
            .iter()
            .map(|e| e.node.index() + 1)
            .max()
            .unwrap_or(0);
        let mut owned = vec![0.0f64; slots];
        let len = self.entries.len();
        for i in 0..len {
            let cur = self.entries[i];
            let next_token = self.entries[(i + 1) % len].token;
            let span = next_token.wrapping_sub(cur.token);
            owned[cur.node.index()] += span as f64;
        }
        let total: f64 = owned.iter().sum();
        if total > 0.0 {
            for o in owned.iter_mut() {
                *o /= total;
            }
        }
        owned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_panics() {
        HashRing::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_vnodes_panics() {
        HashRing::new(3, 0);
    }

    #[test]
    fn token_count_and_accessors() {
        let ring = HashRing::new(5, 16);
        assert_eq!(ring.node_count(), 5);
        assert_eq!(ring.vnodes_per_node(), 16);
        // Collisions are possible in principle but astronomically unlikely.
        assert_eq!(ring.token_count(), 80);
    }

    #[test]
    fn key_lookup_is_deterministic() {
        let ring = HashRing::new(10, 32);
        let a = ring.primary_for_key("user1234");
        let b = ring.primary_for_key("user1234");
        assert_eq!(a, b);
        let ring2 = HashRing::new(10, 32);
        assert_eq!(ring2.primary_for_key("user1234"), a);
    }

    #[test]
    fn preference_list_distinct_and_sized() {
        let ring = HashRing::new(8, 16);
        for k in 0..200 {
            let key = format!("user{k}");
            let prefs = ring.preference_list(&key, 5);
            assert_eq!(prefs.len(), 5);
            let distinct: HashSet<_> = prefs.iter().collect();
            assert_eq!(distinct.len(), 5);
            assert_eq!(prefs[0], ring.primary_for_key(&key));
        }
    }

    #[test]
    fn preference_list_clamps_to_cluster_size() {
        let ring = HashRing::new(3, 8);
        let prefs = ring.preference_list("k", 5);
        assert_eq!(prefs.len(), 3);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(1, 4);
        assert_eq!(ring.primary_for_key("anything"), NodeId(0));
        let own = ring.ownership();
        assert!((own[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ownership_sums_to_one_and_is_roughly_balanced() {
        let ring = HashRing::new(10, 64);
        let own = ring.ownership();
        let total: f64 = own.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (i, o) in own.iter().enumerate() {
            assert!(*o > 0.02 && *o < 0.25, "node {i} owns {o}");
        }
    }

    #[test]
    fn membership_rings_keep_surviving_tokens_and_report_ownership() {
        // Removing a member only moves its ranges: surviving nodes keep
        // their token positions, and ownership() handles the id hole left
        // by the departed node instead of indexing out of bounds.
        let full = HashRing::new(4, 16);
        let shrunk = HashRing::with_members(&[NodeId(1), NodeId(2), NodeId(3)], 16);
        assert_eq!(shrunk.node_count(), 3);
        for k in 0..200 {
            let key = format!("user{k}");
            let primary = shrunk.primary_for_key(&key);
            assert_ne!(primary, NodeId(0));
            // A key whose full-ring primary survives keeps that primary.
            if full.primary_for_key(&key) != NodeId(0) {
                assert_eq!(primary, full.primary_for_key(&key), "{key} moved");
            }
        }
        let own = shrunk.ownership();
        assert_eq!(own.len(), 4, "sized to the highest member id");
        assert_eq!(own[0], 0.0, "the departed slot owns nothing");
        assert!((own.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // new(n, v) is exactly with_members(0..n, v).
        let a = HashRing::new(4, 16);
        let b = HashRing::with_members(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 16);
        for k in 0..50 {
            let key = format!("u{k}");
            assert_eq!(a.primary_for_key(&key), b.primary_for_key(&key));
        }
    }

    #[test]
    fn keys_spread_across_nodes() {
        let ring = HashRing::new(10, 32);
        let mut hit: HashSet<NodeId> = HashSet::new();
        for k in 0..1000 {
            hit.insert(ring.primary_for_key(&format!("user{k}")));
        }
        assert_eq!(hit.len(), 10, "every node should own some keys");
    }

    #[test]
    fn walk_covers_all_tokens() {
        let ring = HashRing::new(4, 8);
        let walked: Vec<NodeId> = ring.walk_from_key("abc").collect();
        assert_eq!(walked.len(), ring.token_count());
    }
}

//! Per-operation consistency levels and quorum arithmetic (paper §II.B).
//!
//! Cassandra lets clients choose, per operation, how many replicas must
//! acknowledge before the operation returns. Harmony exploits exactly this
//! knob: its controller translates the estimated stale-read rate into a
//! number of replicas `Xn` and issues subsequent reads at level
//! [`ConsistencyLevel::Replicas`]`(Xn)`.

use serde::{Deserialize, Serialize};

/// How many replicas must participate synchronously in an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsistencyLevel {
    /// A single replica (basic eventual consistency; Cassandra `ONE`).
    One,
    /// Two replicas (Cassandra `TWO`).
    Two,
    /// Three replicas (Cassandra `THREE`).
    Three,
    /// A majority quorum: `(RF / 2) + 1` replicas (Cassandra `QUORUM`).
    Quorum,
    /// Every replica (strong consistency; Cassandra `ALL`).
    All,
    /// An explicit replica count, the level Harmony computes dynamically
    /// (clamped to `[1, RF]` at use time).
    Replicas(usize),
}

impl ConsistencyLevel {
    /// The number of replica acknowledgements required for a store whose
    /// replication factor is `rf`. Always in `[1, rf]`.
    pub fn required_acks(&self, rf: usize) -> usize {
        let rf = rf.max(1);
        let raw = match self {
            ConsistencyLevel::One => 1,
            ConsistencyLevel::Two => 2,
            ConsistencyLevel::Three => 3,
            ConsistencyLevel::Quorum => rf / 2 + 1,
            ConsistencyLevel::All => rf,
            ConsistencyLevel::Replicas(x) => *x,
        };
        raw.clamp(1, rf)
    }

    /// Maps an explicit replica count to the most idiomatic named level
    /// (used for reporting): 1 → `One`, rf → `All`, quorum → `Quorum`,
    /// otherwise `Replicas(x)`.
    pub fn from_replica_count(x: usize, rf: usize) -> ConsistencyLevel {
        let rf = rf.max(1);
        let x = x.clamp(1, rf);
        if x == 1 {
            ConsistencyLevel::One
        } else if x == rf {
            ConsistencyLevel::All
        } else if x == rf / 2 + 1 {
            ConsistencyLevel::Quorum
        } else {
            ConsistencyLevel::Replicas(x)
        }
    }

    /// True if a read at `self` combined with a write at `write_level` is
    /// guaranteed to intersect in at least one replica holding the latest
    /// acknowledged write (`R + W > RF`).
    pub fn read_your_writes(&self, write_level: ConsistencyLevel, rf: usize) -> bool {
        self.required_acks(rf) + write_level.required_acks(rf) > rf
    }
}

impl std::fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyLevel::One => write!(f, "ONE"),
            ConsistencyLevel::Two => write!(f, "TWO"),
            ConsistencyLevel::Three => write!(f, "THREE"),
            ConsistencyLevel::Quorum => write!(f, "QUORUM"),
            ConsistencyLevel::All => write!(f, "ALL"),
            ConsistencyLevel::Replicas(x) => write!(f, "REPLICAS({x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConsistencyLevel::*;

    #[test]
    fn required_acks_for_rf5() {
        assert_eq!(One.required_acks(5), 1);
        assert_eq!(Two.required_acks(5), 2);
        assert_eq!(Three.required_acks(5), 3);
        assert_eq!(Quorum.required_acks(5), 3);
        assert_eq!(All.required_acks(5), 5);
        assert_eq!(Replicas(4).required_acks(5), 4);
    }

    #[test]
    fn required_acks_clamps_to_rf() {
        assert_eq!(Three.required_acks(2), 2);
        assert_eq!(Replicas(10).required_acks(3), 3);
        assert_eq!(Replicas(0).required_acks(3), 1);
        assert_eq!(All.required_acks(0), 1);
    }

    #[test]
    fn quorum_formula_matches_paper() {
        // (replication factor / 2) + 1
        assert_eq!(Quorum.required_acks(1), 1);
        assert_eq!(Quorum.required_acks(2), 2);
        assert_eq!(Quorum.required_acks(3), 2);
        assert_eq!(Quorum.required_acks(4), 3);
        assert_eq!(Quorum.required_acks(5), 3);
        assert_eq!(Quorum.required_acks(6), 4);
    }

    #[test]
    fn from_replica_count_canonicalises() {
        assert_eq!(ConsistencyLevel::from_replica_count(1, 5), One);
        assert_eq!(ConsistencyLevel::from_replica_count(3, 5), Quorum);
        assert_eq!(ConsistencyLevel::from_replica_count(5, 5), All);
        assert_eq!(ConsistencyLevel::from_replica_count(4, 5), Replicas(4));
        assert_eq!(ConsistencyLevel::from_replica_count(2, 3), Quorum);
        assert_eq!(ConsistencyLevel::from_replica_count(99, 5), All);
    }

    #[test]
    fn quorum_reads_and_writes_intersect() {
        // The paper's guarantee: quorum reads + quorum writes always see the
        // latest acknowledged data.
        for rf in 1..=9 {
            assert!(Quorum.read_your_writes(Quorum, rf), "rf={rf}");
            assert!(All.read_your_writes(One, rf), "rf={rf}");
            assert!(One.read_your_writes(All, rf), "rf={rf}");
        }
        // Partial quorums do not.
        assert!(!One.read_your_writes(One, 3));
        assert!(!One.read_your_writes(Quorum, 5));
    }

    #[test]
    fn display_names() {
        assert_eq!(One.to_string(), "ONE");
        assert_eq!(Quorum.to_string(), "QUORUM");
        assert_eq!(All.to_string(), "ALL");
        assert_eq!(Replicas(4).to_string(), "REPLICAS(4)");
    }
}

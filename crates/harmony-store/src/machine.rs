//! The typed-event protocol core: one state machine over the whole cluster.
//!
//! [`HarmonyMachine`] wraps [`Cluster`] in the `OnEvent` shape — a pure
//! `state × event → state'` step function whose only side channel is the
//! injected [`EventCtx`]. Message delivery, fault injection and timer
//! wake-ups all arrive through the single [`MachineEvent`] alphabet, so any
//! driver that can feed events and absorb emissions can run the protocol:
//!
//! * the production runners keep using [`Simulation`] (the blanket
//!   `EventCtx` impl makes `Simulation<MachineEvent>` a valid context, with
//!   delivery in deterministic `(time, seq)` order);
//! * the `harmony-check` schedule explorer implements [`EventCtx`] with a
//!   plain pending list and *chooses* delivery orders, which is what turns
//!   the chaos suite's sampled claims into bounded-exhaustive ones.
//!
//! Timers are resources, not scheduled closures: arming a timer records its
//! payload in a [`TimerTable`] and emits a wake-up event carrying the
//! [`TimerId`]; the wake-up only takes effect if the id is still armed, so a
//! cancelled or superseded timer never fires no matter how its wake-up is
//! reordered.
//!
//! [`Simulation`]: harmony_sim::engine::Simulation

use crate::cluster::{fnv1a, Cluster, Completion};
use crate::consistency::ConsistencyLevel;
use crate::keys::KeyId;
use crate::messages::{OpId, StoreEvent};
use crate::types::Mutation;
use harmony_chaos::FaultEvent;
use harmony_sim::clock::SimTime;
use harmony_sim::context::{EventCtx, TimerId, TimerTable};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Timers owned by the protocol machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolTimer {
    /// The chaos-mode stall reaper: when it fires, every operation pending
    /// longer than `timeout` is aborted, and the reaper re-arms itself
    /// `period` later — the event-core port of the polling
    /// [`Cluster::expire_stalled_ops`] call the experiment runners make on
    /// their monitoring tick.
    StallReaper {
        /// Abort operations pending longer than this.
        timeout: SimTime,
        /// Re-arm interval.
        period: SimTime,
    },
    /// Periodic anti-entropy repair: each firing runs one
    /// [`Cluster::run_anti_entropy_round`] (the next serving node offers its
    /// Merkle-style digests to every reachable peer) and re-arms `period`
    /// later. Because the wake-ups travel the same [`MachineEvent`] alphabet
    /// as deliveries and faults, the schedule explorer can interleave repair
    /// rounds against crashes and partitions like any other protocol step.
    AntiEntropy {
        /// Re-arm interval.
        period: SimTime,
    },
}

/// The protocol core's complete event alphabet: everything that can happen
/// to the cluster arrives as one of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MachineEvent {
    /// Message delivery / service completion / client reply.
    Store(StoreEvent),
    /// A fault or elasticity event (crash, restart, partition, heal, …).
    Fault(FaultEvent),
    /// A timer wake-up. Inert unless the id is still armed.
    Timer(TimerId),
}

impl From<StoreEvent> for MachineEvent {
    fn from(event: StoreEvent) -> Self {
        MachineEvent::Store(event)
    }
}

impl From<FaultEvent> for MachineEvent {
    fn from(event: FaultEvent) -> Self {
        MachineEvent::Fault(event)
    }
}

/// The `OnEvent` state-machine shape: consume one typed event, mutate own
/// state, emit follow-ups through the context — nothing else.
pub trait OnEvent<E> {
    /// Processes one event.
    fn on_event<C: EventCtx<E>>(&mut self, event: E, ctx: &mut C);
}

/// Adapts an `EventCtx<MachineEvent>` into the `EventCtx<StoreEvent>` the
/// inner [`Cluster`] methods expect, wrapping every emission in
/// [`MachineEvent::Store`]. Zero-cost: a reference wrapper the optimiser
/// flattens out.
pub struct StoreCtx<'a, C> {
    inner: &'a mut C,
}

impl<'a, C> StoreCtx<'a, C> {
    /// Wraps a machine-level context for cluster-level emissions.
    pub fn new(inner: &'a mut C) -> Self {
        StoreCtx { inner }
    }
}

impl<C: EventCtx<MachineEvent>> EventCtx<StoreEvent> for StoreCtx<'_, C> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn emit(&mut self, delay: SimTime, event: StoreEvent) {
        self.inner.emit(delay, MachineEvent::Store(event));
    }
}

/// The whole replicated store as one `Clone`-able event state machine:
/// cluster state, armed timers, and the completions the protocol has
/// produced but the driver has not collected yet.
#[derive(Debug, Clone)]
pub struct HarmonyMachine {
    cluster: Cluster,
    timers: TimerTable<ProtocolTimer>,
    completions: Vec<Completion>,
}

impl HarmonyMachine {
    /// Wraps a cluster into the event core.
    pub fn new(cluster: Cluster) -> Self {
        HarmonyMachine {
            cluster,
            timers: TimerTable::new(),
            completions: Vec::new(),
        }
    }

    /// Read access to the wrapped cluster (telemetry, invariant probes).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the wrapped cluster — scenario setup only (key
    /// interning, bulk loads, mutant knobs). Protocol progress must go
    /// through [`HarmonyMachine::on_event`].
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Submits a client read for an interned key.
    pub fn submit_read<C: EventCtx<MachineEvent>>(
        &mut self,
        key: KeyId,
        consistency: ConsistencyLevel,
        ctx: &mut C,
    ) -> OpId {
        self.cluster
            .submit_read_id(key, consistency, &mut StoreCtx::new(ctx))
    }

    /// Submits a client write for an interned key.
    pub fn submit_write<C: EventCtx<MachineEvent>>(
        &mut self,
        key: KeyId,
        mutation: Arc<Mutation>,
        consistency: ConsistencyLevel,
        ctx: &mut C,
    ) -> OpId {
        self.cluster
            .submit_write_id(key, mutation, consistency, &mut StoreCtx::new(ctx))
    }

    /// Arms the periodic stall reaper and emits its first wake-up `period`
    /// from now. Returns the timer id (cancel it to stop the reaper; the
    /// already-emitted wake-up becomes inert).
    pub fn arm_stall_reaper<C: EventCtx<MachineEvent>>(
        &mut self,
        timeout: SimTime,
        period: SimTime,
        ctx: &mut C,
    ) -> TimerId {
        let id = self
            .timers
            .arm(ProtocolTimer::StallReaper { timeout, period });
        ctx.emit(period, MachineEvent::Timer(id));
        id
    }

    /// Arms the periodic anti-entropy timer and emits its first wake-up
    /// `period` from now. Returns the timer id; cancelling it stops the
    /// repair rounds (the in-flight wake-up becomes inert).
    pub fn arm_anti_entropy<C: EventCtx<MachineEvent>>(
        &mut self,
        period: SimTime,
        ctx: &mut C,
    ) -> TimerId {
        let id = self.timers.arm(ProtocolTimer::AntiEntropy { period });
        ctx.emit(period, MachineEvent::Timer(id));
        id
    }

    /// Cancels an armed timer; its in-flight wake-up will do nothing.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        self.timers.cancel(id)
    }

    /// True if `id` is still armed.
    pub fn timer_armed(&self, id: TimerId) -> bool {
        self.timers.is_armed(id)
    }

    /// Cancels every armed timer — the checker's quiesce procedure calls
    /// this so periodic timers (the stall reaper re-arms itself on every
    /// firing) cannot keep a drain loop alive forever.
    pub fn cancel_all_timers(&mut self) {
        let ids: Vec<TimerId> = self
            .timers
            .armed_entries()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.timers.cancel(id);
        }
    }

    /// Takes the completions produced since the last drain, in the order the
    /// protocol produced them.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Completions produced and not yet drained.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Canonical state dump: the cluster digest plus armed timers and
    /// undrained completions. Same contract as
    /// [`Cluster::state_digest_string`] — byte equality means behavioural
    /// equivalence under any future event sequence (modulo the documented
    /// RNG exclusion).
    pub fn state_digest_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = self.cluster.state_digest_string();
        for (id, timer) in self.timers.armed_entries() {
            let _ = write!(s, "t{id:?}={timer:?};");
        }
        for c in &self.completions {
            let _ = write!(s, "done={c:?};");
        }
        s
    }

    /// FNV-1a hash of [`HarmonyMachine::state_digest_string`].
    pub fn state_digest(&self) -> u64 {
        fnv1a(self.state_digest_string().as_bytes())
    }
}

impl OnEvent<MachineEvent> for HarmonyMachine {
    fn on_event<C: EventCtx<MachineEvent>>(&mut self, event: MachineEvent, ctx: &mut C) {
        match event {
            MachineEvent::Store(ev) => {
                if let Some(c) = self.cluster.handle(ev, &mut StoreCtx::new(ctx)) {
                    self.completions.push(c);
                }
            }
            MachineEvent::Fault(fault) => {
                self.cluster.apply_fault(&fault, &mut StoreCtx::new(ctx));
            }
            MachineEvent::Timer(id) => {
                // A wake-up for a cancelled or superseded timer finds nothing
                // armed and falls through — "cancelled timers never fire".
                let Some(timer) = self.timers.fire(id) else {
                    return;
                };
                match timer {
                    ProtocolTimer::StallReaper { timeout, period } => {
                        self.cluster
                            .expire_stalled_ops(timeout, &mut StoreCtx::new(ctx));
                        let next = self
                            .timers
                            .arm(ProtocolTimer::StallReaper { timeout, period });
                        ctx.emit(period, MachineEvent::Timer(next));
                    }
                    ProtocolTimer::AntiEntropy { period } => {
                        self.cluster.run_anti_entropy_round(&mut StoreCtx::new(ctx));
                        let next = self.timers.arm(ProtocolTimer::AntiEntropy { period });
                        ctx.emit(period, MachineEvent::Timer(next));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StoreConfig;
    use crate::types::Timestamp;
    use harmony_sim::engine::Simulation;
    use harmony_sim::latency::Latency;
    use harmony_sim::rng::RngFactory;
    use harmony_sim::topology::{NetworkModel, Topology};

    fn machine() -> (HarmonyMachine, Simulation<MachineEvent>) {
        let topology = Topology::single_dc(1, 3);
        let network = NetworkModel::uniform(Latency::constant_ms(0.2));
        let config = StoreConfig {
            replication_factor: 3,
            ..StoreConfig::default()
        };
        let cluster = Cluster::new(config, topology, network, RngFactory::new(7));
        (HarmonyMachine::new(cluster), Simulation::new(7))
    }

    fn run_to_idle(m: &mut HarmonyMachine, sim: &mut Simulation<MachineEvent>) {
        while let Some((_, ev)) = sim.next() {
            m.on_event(ev, sim);
        }
    }

    #[test]
    fn write_then_read_through_the_machine() {
        let (mut m, mut sim) = machine();
        let key = m.cluster_mut().intern_key("user1");
        m.submit_write(
            key,
            Arc::new(Mutation::single("f", b"v".to_vec())),
            ConsistencyLevel::Quorum,
            &mut sim,
        );
        run_to_idle(&mut m, &mut sim);
        m.submit_read(key, ConsistencyLevel::One, &mut sim);
        run_to_idle(&mut m, &mut sim);
        let comps = m.drain_completions();
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| !c.aborted));
        assert!(!comps[1].stale);
        assert_eq!(m.completions().len(), 0, "drain empties the buffer");
    }

    #[test]
    fn cancelled_stall_reaper_never_fires() {
        let (mut m, mut sim) = machine();
        let id = m.arm_stall_reaper(SimTime::from_millis(10), SimTime::from_millis(5), &mut sim);
        assert!(m.timer_armed(id));
        assert!(m.cancel_timer(id));
        let digest = m.state_digest_string();
        // The wake-up is still queued but must be inert: no reap, no re-arm.
        run_to_idle(&mut m, &mut sim);
        assert_eq!(m.state_digest_string(), digest);
        assert!(sim.is_idle(), "no re-armed wake-up may remain");
    }

    #[test]
    fn anti_entropy_timer_drives_repair_rounds_and_re_arms() {
        let (mut m, mut sim) = machine();
        let key = m.cluster_mut().intern_key("k");
        m.cluster_mut()
            .load_direct("k", &Mutation::single("f", b"v0".to_vec()), Timestamp(1));
        // Manufacture divergence behind the protocol's back, then let the
        // timer-driven rounds close it without any client traffic.
        let replicas = m.cluster_mut().replicas_for_id(key);
        let laggard = replicas.as_slice()[0];
        for &r in replicas.as_slice() {
            if r != laggard {
                m.cluster_mut().node_engine_apply(
                    r,
                    key,
                    &Mutation::single("f", b"v1".to_vec()),
                    Timestamp(9),
                );
            }
        }
        m.cluster_mut().force_acked_ts(key, Timestamp(9));
        assert!(!m.cluster_mut().all_replicas_converged());
        let id = m.arm_anti_entropy(SimTime::from_millis(100), &mut sim);
        // Drive until convergence, then cancel so the sim can go idle.
        let mut fired = 0;
        while let Some((_, ev)) = sim.next() {
            m.on_event(ev, &mut sim);
            if m.cluster_mut().all_replicas_converged() {
                break;
            }
            fired += 1;
            assert!(fired < 1_000, "anti-entropy failed to converge");
        }
        m.cancel_all_timers();
        run_to_idle(&mut m, &mut sim);
        assert!(m.cluster_mut().all_replicas_converged());
        assert!(m.cluster().totals().ae_rounds >= 1);
        assert!(!m.timer_armed(id), "original id was consumed by the firing");
    }

    #[test]
    fn stall_reaper_re_arms_under_a_fresh_id() {
        let (mut m, mut sim) = machine();
        let id = m.arm_stall_reaper(SimTime::from_millis(10), SimTime::from_millis(5), &mut sim);
        // Fire exactly one wake-up.
        let (_, ev) = sim.next().unwrap();
        m.on_event(ev, &mut sim);
        assert!(!m.timer_armed(id), "the fired id is consumed");
        let rearmed = m.timers.armed_entries();
        assert_eq!(rearmed.len(), 1);
        assert!(rearmed[0].0 > id, "re-arm uses a fresh id");
        assert!(!sim.is_idle(), "the next wake-up is scheduled");
    }
}

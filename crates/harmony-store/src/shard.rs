//! Key-space sharding arithmetic for the multi-core runtime.
//!
//! The sharded runner splits one logical keyspace of `N` records across `S`
//! independent shard event loops. The partition is **strided**: the global
//! record index `g` is owned by shard `g % S`, and inside that shard it is
//! the `g / S`-th key loaded. Striding (rather than contiguous ranges)
//! spreads a Zipfian head across shards — rank 0 lands on shard 0, rank 1 on
//! shard 1, … — so hot traffic does not pile onto one event loop.
//!
//! Because every shard loads its records in ascending global order, the
//! local↔global mapping is pure arithmetic on the dense [`KeyId`]s the
//! interner hands out in load order: local id `l` on shard `s` *is* global
//! record `l * S + s`, with no per-shard translation table to build, grow or
//! share. That keeps a 10M-record keyspace at zero extra bytes per shard and
//! makes cross-shard id translation (sketch merge, hot-set routing) a
//! multiply or a divide.

use crate::keys::KeyId;

/// One shard's view of a strided keyspace partition: `shards` total stripes,
/// of which this value is stripe `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPartition {
    index: usize,
    shards: usize,
}

impl ShardPartition {
    /// A partition descriptor for stripe `index` of `shards`.
    ///
    /// # Panics
    /// Panics if `shards` is zero or `index` is out of range — a
    /// construction-time configuration error, never a runtime race.
    pub fn new(index: usize, shards: usize) -> Self {
        assert!(shards > 0, "a partition needs at least one shard");
        assert!(index < shards, "shard index {index} out of range {shards}");
        ShardPartition { index, shards }
    }

    /// This shard's stripe index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total stripe count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// True if global record index `global` belongs to this shard.
    pub fn owns_global(&self, global: usize) -> bool {
        global % self.shards == self.index
    }

    /// The shard that owns global record index `global`.
    pub fn owner(&self, global: usize) -> usize {
        global % self.shards
    }

    /// The global record index behind this shard's `local` dense index.
    pub fn local_to_global(&self, local: usize) -> usize {
        local * self.shards + self.index
    }

    /// The dense local index of an owned global record index.
    ///
    /// Callers must check [`ShardPartition::owns_global`] first; for a
    /// non-owned index this returns the slot the record *would* occupy,
    /// which is meaningful only to its true owner.
    pub fn global_to_local(&self, global: usize) -> usize {
        debug_assert!(self.owns_global(global), "key {global} not owned here");
        global / self.shards
    }

    /// How many of the first `total` global records this shard owns: the
    /// number of locals `l` with `l * shards + index < total`.
    pub fn local_count(&self, total: usize) -> usize {
        if total <= self.index {
            0
        } else {
            (total - self.index - 1) / self.shards + 1
        }
    }

    /// Translates a *local* interned id to the *global* id used on the
    /// coordinator (sketches, hot-set decisions). Valid for load-phase
    /// records, whose interner ids are dense in load order by construction.
    pub fn local_key_to_global(&self, local: KeyId) -> KeyId {
        KeyId(self.local_to_global(local.index()) as u32)
    }

    /// Translates an owned *global* id back to this shard's *local* id.
    pub fn global_key_to_local(&self, global: KeyId) -> KeyId {
        KeyId(self.global_to_local(global.index()) as u32)
    }

    /// The smallest global record index `>= floor` owned by this shard —
    /// where this shard's insert sequence starts so that concurrent shard
    /// inserts never collide on a global record name.
    pub fn first_owned_at_or_after(&self, floor: usize) -> usize {
        floor + (self.index + self.shards - floor % self.shards) % self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_round_trips_and_partitions_exactly() {
        for shards in 1..=5 {
            let parts: Vec<ShardPartition> = (0..shards)
                .map(|i| ShardPartition::new(i, shards))
                .collect();
            for global in 0..97 {
                let owners: Vec<usize> = parts
                    .iter()
                    .filter(|p| p.owns_global(global))
                    .map(|p| p.index())
                    .collect();
                assert_eq!(owners.len(), 1, "exactly one owner per key");
                let owner = &parts[owners[0]];
                assert_eq!(owner.owner(global), owner.index());
                let local = owner.global_to_local(global);
                assert_eq!(owner.local_to_global(local), global);
                assert_eq!(
                    owner.local_key_to_global(KeyId(local as u32)),
                    KeyId(global as u32)
                );
                assert_eq!(
                    owner.global_key_to_local(KeyId(global as u32)),
                    KeyId(local as u32)
                );
            }
        }
    }

    #[test]
    fn local_counts_sum_to_total() {
        for shards in 1..=6 {
            for total in [0, 1, 5, 64, 97, 1000] {
                let sum: usize = (0..shards)
                    .map(|i| ShardPartition::new(i, shards).local_count(total))
                    .sum();
                assert_eq!(sum, total, "shards={shards} total={total}");
                // And each count matches a brute-force enumeration.
                for i in 0..shards {
                    let p = ShardPartition::new(i, shards);
                    let brute = (0..total).filter(|g| p.owns_global(*g)).count();
                    assert_eq!(p.local_count(total), brute);
                }
            }
        }
    }

    #[test]
    fn insert_floors_are_owned_disjoint_and_minimal() {
        for shards in 1..=5 {
            for floor in [0, 1, 7, 10, 1000] {
                let firsts: Vec<usize> = (0..shards)
                    .map(|i| ShardPartition::new(i, shards).first_owned_at_or_after(floor))
                    .collect();
                for (i, &g) in firsts.iter().enumerate() {
                    let p = ShardPartition::new(i, shards);
                    assert!(g >= floor);
                    assert!(g < floor + shards, "minimal: within one stride");
                    assert!(p.owns_global(g));
                }
                let mut sorted = firsts.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), shards, "one distinct start per shard");
            }
        }
    }

    #[test]
    fn single_shard_is_the_identity() {
        let p = ShardPartition::new(0, 1);
        for g in 0..10 {
            assert!(p.owns_global(g));
            assert_eq!(p.local_to_global(g), g);
            assert_eq!(p.global_to_local(g), g);
        }
        assert_eq!(p.local_count(42), 42);
        assert_eq!(p.first_owned_at_or_after(17), 17);
    }
}

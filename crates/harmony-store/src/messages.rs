//! Messages exchanged between clients, coordinators and replicas, and the
//! simulation event type of the store.
//!
//! The message set mirrors Figure 1 of the paper: a client request reaches a
//! coordinator node, the coordinator fans out read/write requests to the
//! replica set, waits for the number of replies the consistency level
//! requires, reconciles by timestamp, answers the client, and issues
//! asynchronous repair writes to out-of-date replicas.

use crate::consistency::ConsistencyLevel;
use crate::types::{Key, Mutation, Row, Timestamp};
use harmony_sim::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Unique identifier of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u64);

/// The kind of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A row read.
    Read,
    /// A row write/update.
    Write,
}

/// A message addressed to a node (coordinator or replica) of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A client read arriving at its coordinator.
    ClientRead {
        /// Operation id.
        op: OpId,
        /// Row key.
        key: Key,
        /// Consistency level requested for this read.
        consistency: ConsistencyLevel,
    },
    /// A client write arriving at its coordinator.
    ClientWrite {
        /// Operation id.
        op: OpId,
        /// Row key.
        key: Key,
        /// Columns to write.
        mutation: Mutation,
        /// Consistency level requested for this write.
        consistency: ConsistencyLevel,
    },
    /// Coordinator asking a replica for its copy of a row.
    ReplicaRead {
        /// Operation id.
        op: OpId,
        /// Row key.
        key: Key,
        /// The coordinator to answer to.
        coordinator: NodeId,
    },
    /// Replica answering a [`Message::ReplicaRead`].
    ReplicaReadResponse {
        /// Operation id.
        op: OpId,
        /// The replica that answered.
        from: NodeId,
        /// Its local copy of the row (None if it has never seen the key).
        row: Option<Row>,
    },
    /// Coordinator asking a replica to apply a mutation.
    ReplicaWrite {
        /// Operation id.
        op: OpId,
        /// Row key.
        key: Key,
        /// Columns to write.
        mutation: Mutation,
        /// Timestamp assigned by the coordinator.
        timestamp: Timestamp,
        /// The coordinator to acknowledge to.
        coordinator: NodeId,
    },
    /// Replica acknowledging a [`Message::ReplicaWrite`].
    ReplicaWriteAck {
        /// Operation id.
        op: OpId,
        /// The replica that applied the write.
        from: NodeId,
    },
    /// Asynchronous repair: the coordinator pushes the reconciled freshest row
    /// to a replica that answered with stale (or missing) data, or — for
    /// background read repair — to replicas that were not contacted at all.
    RepairWrite {
        /// Row key.
        key: Key,
        /// The reconciled row to merge into the replica.
        row: Row,
    },
}

impl Message {
    /// True if processing this message costs replica service time (it touches
    /// the storage engine), as opposed to pure coordination bookkeeping.
    pub fn is_replica_work(&self) -> bool {
        matches!(
            self,
            Message::ReplicaRead { .. }
                | Message::ReplicaWrite { .. }
                | Message::RepairWrite { .. }
        )
    }

    /// The operation this message belongs to, if any (repair traffic is
    /// detached from its originating operation).
    pub fn op_id(&self) -> Option<OpId> {
        match self {
            Message::ClientRead { op, .. }
            | Message::ClientWrite { op, .. }
            | Message::ReplicaRead { op, .. }
            | Message::ReplicaReadResponse { op, .. }
            | Message::ReplicaWrite { op, .. }
            | Message::ReplicaWriteAck { op, .. } => Some(*op),
            Message::RepairWrite { .. } => None,
        }
    }
}

/// The store's simulation event type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreEvent {
    /// A message arrives at `dest` after its network latency.
    Deliver {
        /// Receiving node.
        dest: NodeId,
        /// The message.
        message: Message,
    },
    /// A replica starts processing a queued message after waiting for a free
    /// service slot; the work itself takes the node's service time.
    Process {
        /// The node doing the work.
        node: NodeId,
        /// The message being processed.
        message: Message,
    },
    /// The coordinator's answer travels back to the client; when this event
    /// fires the operation is complete from the client's point of view.
    ClientReply {
        /// The completed operation.
        op: OpId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_work_classification() {
        let read = Message::ReplicaRead {
            op: OpId(1),
            key: "k".into(),
            coordinator: NodeId(0),
        };
        let resp = Message::ReplicaReadResponse {
            op: OpId(1),
            from: NodeId(2),
            row: None,
        };
        let repair = Message::RepairWrite {
            key: "k".into(),
            row: Row::new(),
        };
        assert!(read.is_replica_work());
        assert!(!resp.is_replica_work());
        assert!(repair.is_replica_work());
    }

    #[test]
    fn op_id_extraction() {
        let w = Message::ClientWrite {
            op: OpId(7),
            key: "k".into(),
            mutation: Mutation::single("f", vec![1]),
            consistency: ConsistencyLevel::One,
        };
        assert_eq!(w.op_id(), Some(OpId(7)));
        let repair = Message::RepairWrite {
            key: "k".into(),
            row: Row::new(),
        };
        assert_eq!(repair.op_id(), None);
    }

    #[test]
    fn op_ids_order() {
        assert!(OpId(2) > OpId(1));
    }
}

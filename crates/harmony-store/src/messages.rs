//! Messages exchanged between clients, coordinators and replicas, and the
//! simulation event type of the store.
//!
//! The message set mirrors Figure 1 of the paper: a client request reaches a
//! coordinator node, the coordinator fans out read/write requests to the
//! replica set, waits for the number of replies the consistency level
//! requires, reconciles by timestamp, answers the client, and issues
//! asynchronous repair writes to out-of-date replicas.

use crate::consistency::ConsistencyLevel;
use crate::keys::KeyId;
use crate::types::{Mutation, Row, Timestamp};
use harmony_sim::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Unique identifier of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u64);

/// The kind of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A row read.
    Read,
    /// A row write/update.
    Write,
}

/// A message addressed to a node (coordinator or replica) of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A client read arriving at its coordinator.
    ClientRead {
        /// Operation id.
        op: OpId,
        /// Interned row key.
        key: KeyId,
        /// Consistency level requested for this read.
        consistency: ConsistencyLevel,
    },
    /// A client write arriving at its coordinator.
    ClientWrite {
        /// Operation id.
        op: OpId,
        /// Interned row key.
        key: KeyId,
        /// Columns to write, shared (not deep-cloned) across the replica
        /// fan-out.
        mutation: Arc<Mutation>,
        /// Consistency level requested for this write.
        consistency: ConsistencyLevel,
    },
    /// Coordinator asking a replica for its copy of a row.
    ReplicaRead {
        /// Operation id.
        op: OpId,
        /// Interned row key.
        key: KeyId,
        /// The coordinator to answer to.
        coordinator: NodeId,
    },
    /// Replica answering a [`Message::ReplicaRead`].
    ReplicaReadResponse {
        /// Operation id.
        op: OpId,
        /// The replica that answered.
        from: NodeId,
        /// Its local copy of the row, shared with the replica's store (None
        /// if it has never seen the key).
        row: Option<Arc<Row>>,
    },
    /// Coordinator asking a replica to apply a mutation.
    ReplicaWrite {
        /// Operation id.
        op: OpId,
        /// Interned row key.
        key: KeyId,
        /// Columns to write: one shared payload for all replicas — an RF = 3
        /// fan-out bumps a refcount three times instead of deep-cloning a
        /// `BTreeMap` three times.
        mutation: Arc<Mutation>,
        /// Timestamp assigned by the coordinator.
        timestamp: Timestamp,
        /// The coordinator to acknowledge to.
        coordinator: NodeId,
    },
    /// Replica acknowledging a [`Message::ReplicaWrite`].
    ReplicaWriteAck {
        /// Operation id.
        op: OpId,
        /// The replica that applied the write.
        from: NodeId,
    },
    /// Asynchronous repair: the coordinator pushes the reconciled freshest row
    /// to a replica that answered with stale (or missing) data, or — for
    /// background read repair — to replicas that were not contacted at all.
    RepairWrite {
        /// Interned row key.
        key: KeyId,
        /// The reconciled row to merge into the replica, shared across every
        /// repair target of the same read.
        row: Arc<Row>,
    },
    /// Anti-entropy round opener: the initiator's Merkle-style range digests
    /// (one XOR-folded hash per key-space bucket), inviting the partner to
    /// diff them against its own tables.
    AeDigest {
        /// The initiating node (the partner answers to it).
        from: NodeId,
        /// Per-bucket digests over the initiator's engine tables, shared so
        /// queue snapshots clone a refcount, not the vector.
        buckets: Arc<Vec<u64>>,
    },
    /// Anti-entropy diff: the partner's reply listing the mismatched buckets
    /// and its own `(key, timestamp)` entries inside them, from which the
    /// initiator decides what to push and what to pull.
    AeKeys {
        /// The partner node that diffed the digests.
        from: NodeId,
        /// Indices of the buckets whose digests disagreed.
        buckets: Arc<Vec<u32>>,
        /// The partner's `(key, newest timestamp)` pairs within those buckets.
        entries: Arc<Vec<(KeyId, Timestamp)>>,
    },
    /// Anti-entropy pull: the initiator asks the partner to stream the rows
    /// it holds newer copies of (the rows travel as [`Message::RepairWrite`],
    /// through the ordinary replica write stage).
    AePull {
        /// The requesting node (stream destination).
        from: NodeId,
        /// Keys whose partner copy is newer than the requester's.
        keys: Arc<Vec<KeyId>>,
    },
}

impl Message {
    /// True if processing this message costs replica service time (it touches
    /// the storage engine), as opposed to pure coordination bookkeeping.
    pub fn is_replica_work(&self) -> bool {
        matches!(
            self,
            Message::ReplicaRead { .. }
                | Message::ReplicaWrite { .. }
                | Message::RepairWrite { .. }
        )
    }

    /// The operation this message belongs to, if any (repair and
    /// anti-entropy traffic is detached from any client operation).
    pub fn op_id(&self) -> Option<OpId> {
        match self {
            Message::ClientRead { op, .. }
            | Message::ClientWrite { op, .. }
            | Message::ReplicaRead { op, .. }
            | Message::ReplicaReadResponse { op, .. }
            | Message::ReplicaWrite { op, .. }
            | Message::ReplicaWriteAck { op, .. } => Some(*op),
            Message::RepairWrite { .. }
            | Message::AeDigest { .. }
            | Message::AeKeys { .. }
            | Message::AePull { .. } => None,
        }
    }
}

/// The store's simulation event type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreEvent {
    /// A message arrives at `dest` after its network latency.
    Deliver {
        /// Receiving node.
        dest: NodeId,
        /// The message.
        message: Message,
    },
    /// A replica starts processing a queued message after waiting for a free
    /// service slot; the work itself takes the node's service time.
    Process {
        /// The node doing the work.
        node: NodeId,
        /// The message being processed.
        message: Message,
    },
    /// The coordinator's answer travels back to the client; when this event
    /// fires the operation is complete from the client's point of view.
    ClientReply {
        /// The completed operation.
        op: OpId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_work_classification() {
        let read = Message::ReplicaRead {
            op: OpId(1),
            key: KeyId(0),
            coordinator: NodeId(0),
        };
        let resp = Message::ReplicaReadResponse {
            op: OpId(1),
            from: NodeId(2),
            row: None,
        };
        let repair = Message::RepairWrite {
            key: KeyId(0),
            row: Arc::new(Row::new()),
        };
        assert!(read.is_replica_work());
        assert!(!resp.is_replica_work());
        assert!(repair.is_replica_work());
    }

    #[test]
    fn op_id_extraction() {
        let w = Message::ClientWrite {
            op: OpId(7),
            key: KeyId(3),
            mutation: Arc::new(Mutation::single("f", vec![1])),
            consistency: ConsistencyLevel::One,
        };
        assert_eq!(w.op_id(), Some(OpId(7)));
        let repair = Message::RepairWrite {
            key: KeyId(3),
            row: Arc::new(Row::new()),
        };
        assert_eq!(repair.op_id(), None);
    }

    #[test]
    fn op_ids_order() {
        assert!(OpId(2) > OpId(1));
    }

    #[test]
    fn anti_entropy_messages_are_coordination_traffic() {
        // Digest exchange is bookkeeping (no engine service slot); only the
        // row streams — which travel as RepairWrite — cost replica work.
        let digest = Message::AeDigest {
            from: NodeId(0),
            buckets: Arc::new(vec![1, 2, 3]),
        };
        let keys = Message::AeKeys {
            from: NodeId(1),
            buckets: Arc::new(vec![0]),
            entries: Arc::new(vec![(KeyId(4), Timestamp(9))]),
        };
        let pull = Message::AePull {
            from: NodeId(0),
            keys: Arc::new(vec![KeyId(4)]),
        };
        for m in [digest, keys, pull] {
            assert!(!m.is_replica_work());
            assert_eq!(m.op_id(), None);
        }
    }
}

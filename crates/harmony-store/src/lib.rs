//! # harmony-store
//!
//! A from-scratch quorum-replicated key-value store modelled after the
//! Cassandra deployment the Harmony paper evaluates on (CLUSTER 2012, §II.B
//! and §V). It runs on the [`harmony_sim`] discrete-event kernel so that the
//! staleness phenomena Harmony controls — asynchronous update propagation,
//! partial-quorum reads, read repair — play out under controllable network
//! latency and are exactly reproducible.
//!
//! Features reproduced from the paper's substrate:
//!
//! * consistent-hash token ring with virtual nodes ([`hashring`]);
//! * rack/datacenter-aware replica placement, the behaviour of Cassandra's
//!   `OldNetworkTopologyStrategy` ([`placement`]);
//! * per-node storage engine with commit log, memtable, SSTables and
//!   compaction ([`engine`]);
//! * per-operation consistency levels `ONE` … `ALL` plus the dynamically
//!   computed `Replicas(x)` level Harmony uses ([`consistency`]);
//! * coordinator read/write paths with timestamp reconciliation, asynchronous
//!   propagation and (background) read repair ([`cluster`]), matching the two
//!   flows of the paper's Figure 1;
//! * bounded per-node service capacity so throughput saturates as client
//!   concurrency grows (the roll-off the paper observes past 90 threads);
//! * ground-truth staleness accounting for every completed read.
//!
//! ## Example
//!
//! ```
//! use harmony_store::prelude::*;
//! use harmony_sim::{Simulation, rng::RngFactory, topology::{Topology, NetworkModel}};
//! use harmony_sim::latency::Latency;
//!
//! let topology = Topology::single_dc(2, 3);
//! let network = NetworkModel::uniform(Latency::constant_ms(0.3));
//! let config = StoreConfig { replication_factor: 3, ..StoreConfig::default() };
//! let mut cluster = Cluster::new(config, topology, network, RngFactory::new(1));
//! let mut sim: Simulation<StoreEvent> = Simulation::new(1);
//!
//! cluster.submit_write("user1", Mutation::single("field0", b"hello".to_vec()),
//!                      ConsistencyLevel::Quorum, &mut sim);
//! cluster.submit_read("user1", ConsistencyLevel::One, &mut sim);
//!
//! let mut completions = Vec::new();
//! while let Some((_, event)) = sim.next() {
//!     if let Some(c) = cluster.handle(event, &mut sim) {
//!         completions.push(c);
//!     }
//! }
//! assert_eq!(completions.len(), 2);
//! ```

pub mod cluster;
pub mod config;
pub mod consistency;
pub mod detector;
pub mod engine;
pub mod hashring;
pub mod keys;
pub mod machine;
pub mod messages;
pub mod node;
pub mod placement;
pub mod shard;
pub mod types;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterTotals, Completion};
    pub use crate::config::StoreConfig;
    pub use crate::consistency::ConsistencyLevel;
    pub use crate::detector::HeartbeatHistory;
    pub use crate::keys::{KeyId, KeyTable};
    pub use crate::machine::{HarmonyMachine, MachineEvent, OnEvent, ProtocolTimer};
    pub use crate::messages::{Message, OpId, OpKind, StoreEvent};
    pub use crate::placement::{PlacementCache, ReplicaSet, ReplicationStrategy, MAX_RF};
    pub use crate::shard::ShardPartition;
    pub use crate::types::{Cell, Key, Mutation, Row, Timestamp};
}

pub use cluster::{Cluster, Completion};
pub use config::StoreConfig;
pub use consistency::ConsistencyLevel;
pub use keys::{KeyId, KeyTable};
pub use machine::{HarmonyMachine, MachineEvent, OnEvent, ProtocolTimer};
pub use messages::{OpId, OpKind, StoreEvent};
pub use types::{Mutation, Row, Timestamp};

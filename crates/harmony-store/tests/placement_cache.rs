//! Property tests for the memoised placement table: the cache must be
//! *invisible* — every cached lookup equals a fresh ring walk — and a
//! topology change must drop every memoised entry rather than serving
//! placements computed for the previous ring.
//!
//! Sampling is deterministic per property (the mini-proptest shim derives
//! its seed from the property name), so a failure reproduces exactly.

use harmony_chaos::FaultEvent;
use harmony_sim::engine::Simulation;
use harmony_sim::latency::Latency;
use harmony_sim::rng::RngFactory;
use harmony_sim::topology::{NetworkModel, Topology};
use harmony_store::cluster::Cluster;
use harmony_store::config::StoreConfig;
use harmony_store::hashring::HashRing;
use harmony_store::keys::{KeyId, KeyTable};
use harmony_store::messages::StoreEvent;
use harmony_store::placement::{PlacementCache, ReplicationStrategy, MAX_RF};
use harmony_store::types::{Mutation, Timestamp};
use proptest::prelude::*;

fn strategies() -> [ReplicationStrategy; 2] {
    [
        ReplicationStrategy::Simple,
        ReplicationStrategy::NetworkTopology,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached `replicas_for(KeyId)` equals a fresh ring walk for arbitrary
    /// keys, strategies, cluster shapes and replication factors — on the
    /// first (computing) lookup and on every subsequent (cached) one.
    #[test]
    fn cached_lookup_equals_fresh_ring_walk(
        racks in 1usize..4,
        nodes_per_rack in 1usize..5,
        vnodes in 1usize..24,
        rf in 1usize..=MAX_RF,
        key_indices in prop::collection::vec(0u64..500, 1..60),
    ) {
        let topology = Topology::single_dc(racks as u16, nodes_per_rack as u16);
        let ring = HashRing::new(topology.len(), vnodes);
        for strategy in strategies() {
            let mut cache = PlacementCache::new();
            let mut table = KeyTable::new();
            for &index in &key_indices {
                let name = format!("user{index}");
                let key = table.intern(&name);
                let fresh = strategy.replicas_for(&ring, &topology, &name, rf);
                // First lookup computes...
                let cached =
                    cache.replicas_for(key, &name, strategy, &ring, &topology, rf);
                prop_assert_eq!(cached.as_slice(), fresh.as_slice());
                // ...second lookup serves the memoised entry; still equal.
                let cached_again =
                    cache.replicas_for(key, &name, strategy, &ring, &topology, rf);
                prop_assert_eq!(cached_again.as_slice(), fresh.as_slice());
            }
        }
    }

    /// After a topology change plus `invalidate()`, every lookup reflects
    /// the *new* ring — no entry computed for the old topology survives.
    #[test]
    fn topology_change_invalidates_every_entry(
        vnodes in 1usize..24,
        old_nodes in 2usize..8,
        grown_by in 1usize..6,
        rf in 1usize..=3,
        key_indices in prop::collection::vec(0u64..300, 1..60),
    ) {
        let strategy = ReplicationStrategy::Simple;
        let old_topology = Topology::single_dc(1, old_nodes as u16);
        let old_ring = HashRing::new(old_topology.len(), vnodes);
        // The "changed" cluster: more nodes, so placements genuinely move.
        let new_topology = Topology::single_dc(1, (old_nodes + grown_by) as u16);
        let new_ring = HashRing::new(new_topology.len(), vnodes);

        let mut cache = PlacementCache::new();
        let mut table = KeyTable::new();
        let keys: Vec<(KeyId, String)> = key_indices
            .iter()
            .map(|i| {
                let name = format!("user{i}");
                (table.intern(&name), name)
            })
            .collect();
        // Warm the cache on the old topology.
        for (key, name) in &keys {
            cache.replicas_for(*key, name, strategy, &old_ring, &old_topology, rf);
        }
        let generation = cache.generation();

        // Topology change: the owner must invalidate.
        cache.invalidate();
        prop_assert_eq!(cache.generation(), generation + 1);
        prop_assert_eq!(cache.cached_len(), 0);

        let mut any_moved = false;
        for (key, name) in &keys {
            let fresh = strategy.replicas_for(&new_ring, &new_topology, name, rf);
            let cached =
                cache.replicas_for(*key, name, strategy, &new_ring, &new_topology, rf);
            prop_assert_eq!(cached.as_slice(), fresh.as_slice());
            let old = strategy.replicas_for(&old_ring, &old_topology, name, rf);
            any_moved |= old != fresh;
        }
        // Sanity: growing the cluster moved at least one placement for most
        // draws — i.e. the equality above is not vacuous. (Not asserted per
        // key: individual keys may legitimately stay put.)
        if keys.len() >= 20 {
            prop_assert!(
                any_moved,
                "growing {} -> {} nodes moved no placement across {} keys",
                old_nodes,
                old_nodes + grown_by,
                keys.len()
            );
        }
    }

    /// Elastic churn through the real cluster path: a random mid-run
    /// sequence of joins and decommissions (driven by `FaultEvent`s, the way
    /// a chaos schedule drives them) must keep the memoised placement table
    /// indistinguishable from fresh ring walks, and must invalidate it
    /// exactly once per topology change — no more (cache thrash), no less
    /// (stale placements from a previous ring).
    #[test]
    fn cache_tracks_fresh_walks_under_join_decommission_churn(
        seed in 0u64..1_000,
        churn in prop::collection::vec(0u8..2, 1..6),
        key_indices in prop::collection::vec(0u64..200, 5..40),
    ) {
        let config = StoreConfig {
            replication_factor: 3,
            ..StoreConfig::default()
        };
        let mut cluster = Cluster::new(
            config,
            Topology::single_dc(2, 3),
            NetworkModel::uniform(Latency::constant_ms(0.2)),
            RngFactory::new(seed),
        );
        let mut sim: Simulation<StoreEvent> = Simulation::new(seed);
        let keys: Vec<(KeyId, String)> = key_indices
            .iter()
            .map(|i| {
                let name = format!("user{i}");
                let id = cluster.intern_key(&name);
                (id, name)
            })
            .collect();
        for (i, (_, name)) in keys.iter().enumerate() {
            cluster.load_direct(name, &Mutation::single("f", b"v".to_vec()), Timestamp(i as u64 + 1));
        }

        for (step, kind) in churn.iter().enumerate() {
            let invalidations_before = cluster.placement_invalidations();
            let members = cluster.fault_state().members();
            // Decommission the lowest-numbered member, unless that would
            // shrink the membership too far — then grow instead.
            if *kind == 1 || members.len() <= 3 {
                cluster.apply_fault(
                    &FaultEvent::JoinNode {
                        dc: 0,
                        rack: step as u16 % 2,
                    },
                    &mut sim,
                );
            } else {
                cluster.apply_fault(
                    &FaultEvent::DecommissionNode { node: members[0] },
                    &mut sim,
                );
            }
            // Exactly one invalidation per topology change.
            prop_assert_eq!(
                cluster.placement_invalidations(),
                invalidations_before + 1,
                "churn step {} must invalidate exactly once",
                step
            );
            // Every cached lookup equals a fresh ring walk on the new ring,
            // and no placement references a non-member.
            for (id, name) in &keys {
                let fresh = cluster.replicas_for(name);
                let cached = cluster.replicas_for_id(*id);
                prop_assert_eq!(cached.as_slice(), fresh.as_slice(), "key {}", name);
                for node in cached.as_slice() {
                    prop_assert!(cluster.fault_state().is_member(*node));
                }
            }
            // Second pass: the memoised entries (now warm) still agree.
            for (id, name) in &keys {
                let fresh = cluster.replicas_for(name);
                let warm = cluster.replicas_for_id(*id);
                prop_assert_eq!(warm.as_slice(), fresh.as_slice());
            }
        }
    }

    /// Without an invalidation the cache keeps serving the memoised entry —
    /// that is the point of the generation counter: the *owner* of ring and
    /// topology decides when placements may change.
    #[test]
    fn entries_persist_until_invalidated(
        vnodes in 1usize..16,
        nodes in 2usize..8,
        key_index in 0u64..100,
    ) {
        let topology = Topology::single_dc(1, nodes as u16);
        let ring = HashRing::new(topology.len(), vnodes);
        let mut cache = PlacementCache::new();
        let mut table = KeyTable::new();
        let name = format!("user{key_index}");
        let key = table.intern(&name);
        let first = cache.replicas_for(key, &name, ReplicationStrategy::Simple, &ring, &topology, 2);
        prop_assert_eq!(cache.cached_len(), 1);
        let second = cache.replicas_for(key, &name, ReplicationStrategy::Simple, &ring, &topology, 2);
        prop_assert_eq!(first, second);
        prop_assert_eq!(cache.generation(), 0);
    }
}

//! Property tests for the memoised placement table: the cache must be
//! *invisible* — every cached lookup equals a fresh ring walk — and a
//! topology change must drop every memoised entry rather than serving
//! placements computed for the previous ring.
//!
//! Sampling is deterministic per property (the mini-proptest shim derives
//! its seed from the property name), so a failure reproduces exactly.

use harmony_sim::topology::Topology;
use harmony_store::hashring::HashRing;
use harmony_store::keys::{KeyId, KeyTable};
use harmony_store::placement::{PlacementCache, ReplicationStrategy, MAX_RF};
use proptest::prelude::*;

fn strategies() -> [ReplicationStrategy; 2] {
    [
        ReplicationStrategy::Simple,
        ReplicationStrategy::NetworkTopology,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached `replicas_for(KeyId)` equals a fresh ring walk for arbitrary
    /// keys, strategies, cluster shapes and replication factors — on the
    /// first (computing) lookup and on every subsequent (cached) one.
    #[test]
    fn cached_lookup_equals_fresh_ring_walk(
        racks in 1usize..4,
        nodes_per_rack in 1usize..5,
        vnodes in 1usize..24,
        rf in 1usize..=MAX_RF,
        key_indices in prop::collection::vec(0u64..500, 1..60),
    ) {
        let topology = Topology::single_dc(racks as u16, nodes_per_rack as u16);
        let ring = HashRing::new(topology.len(), vnodes);
        for strategy in strategies() {
            let mut cache = PlacementCache::new();
            let mut table = KeyTable::new();
            for &index in &key_indices {
                let name = format!("user{index}");
                let key = table.intern(&name);
                let fresh = strategy.replicas_for(&ring, &topology, &name, rf);
                // First lookup computes...
                let cached =
                    cache.replicas_for(key, &name, strategy, &ring, &topology, rf);
                prop_assert_eq!(cached.as_slice(), fresh.as_slice());
                // ...second lookup serves the memoised entry; still equal.
                let cached_again =
                    cache.replicas_for(key, &name, strategy, &ring, &topology, rf);
                prop_assert_eq!(cached_again.as_slice(), fresh.as_slice());
            }
        }
    }

    /// After a topology change plus `invalidate()`, every lookup reflects
    /// the *new* ring — no entry computed for the old topology survives.
    #[test]
    fn topology_change_invalidates_every_entry(
        vnodes in 1usize..24,
        old_nodes in 2usize..8,
        grown_by in 1usize..6,
        rf in 1usize..=3,
        key_indices in prop::collection::vec(0u64..300, 1..60),
    ) {
        let strategy = ReplicationStrategy::Simple;
        let old_topology = Topology::single_dc(1, old_nodes as u16);
        let old_ring = HashRing::new(old_topology.len(), vnodes);
        // The "changed" cluster: more nodes, so placements genuinely move.
        let new_topology = Topology::single_dc(1, (old_nodes + grown_by) as u16);
        let new_ring = HashRing::new(new_topology.len(), vnodes);

        let mut cache = PlacementCache::new();
        let mut table = KeyTable::new();
        let keys: Vec<(KeyId, String)> = key_indices
            .iter()
            .map(|i| {
                let name = format!("user{i}");
                (table.intern(&name), name)
            })
            .collect();
        // Warm the cache on the old topology.
        for (key, name) in &keys {
            cache.replicas_for(*key, name, strategy, &old_ring, &old_topology, rf);
        }
        let generation = cache.generation();

        // Topology change: the owner must invalidate.
        cache.invalidate();
        prop_assert_eq!(cache.generation(), generation + 1);
        prop_assert_eq!(cache.cached_len(), 0);

        let mut any_moved = false;
        for (key, name) in &keys {
            let fresh = strategy.replicas_for(&new_ring, &new_topology, name, rf);
            let cached =
                cache.replicas_for(*key, name, strategy, &new_ring, &new_topology, rf);
            prop_assert_eq!(cached.as_slice(), fresh.as_slice());
            let old = strategy.replicas_for(&old_ring, &old_topology, name, rf);
            any_moved |= old != fresh;
        }
        // Sanity: growing the cluster moved at least one placement for most
        // draws — i.e. the equality above is not vacuous. (Not asserted per
        // key: individual keys may legitimately stay put.)
        if keys.len() >= 20 {
            prop_assert!(
                any_moved,
                "growing {} -> {} nodes moved no placement across {} keys",
                old_nodes,
                old_nodes + grown_by,
                keys.len()
            );
        }
    }

    /// Without an invalidation the cache keeps serving the memoised entry —
    /// that is the point of the generation counter: the *owner* of ring and
    /// topology decides when placements may change.
    #[test]
    fn entries_persist_until_invalidated(
        vnodes in 1usize..16,
        nodes in 2usize..8,
        key_index in 0u64..100,
    ) {
        let topology = Topology::single_dc(1, nodes as u16);
        let ring = HashRing::new(topology.len(), vnodes);
        let mut cache = PlacementCache::new();
        let mut table = KeyTable::new();
        let name = format!("user{key_index}");
        let key = table.intern(&name);
        let first = cache.replicas_for(key, &name, ReplicationStrategy::Simple, &ring, &topology, 2);
        prop_assert_eq!(cache.cached_len(), 1);
        let second = cache.replicas_for(key, &name, ReplicationStrategy::Simple, &ring, &topology, 2);
        prop_assert_eq!(first, second);
        prop_assert_eq!(cache.generation(), 0);
    }
}

//! Differential test: the extracted event state machine is behaviourally
//! identical to the old inline driving style.
//!
//! Before the event core existed, runners drove `Cluster::handle` directly
//! off a `Simulation<StoreEvent>` and called `apply_fault` /
//! `expire_stalled_ops` inline between events. [`HarmonyMachine`] is
//! supposed to be a pure repackaging of exactly those calls behind one typed
//! event alphabet — so the same workload, the same fault script, and the
//! same RNG seed must produce the same [`ClusterTotals`] (including
//! `protocol_drops`, the counter most sensitive to fault-path routing) and
//! the same canonical state digest, event for event.

use harmony_chaos::FaultEvent;
use harmony_sim::engine::Simulation;
use harmony_sim::latency::Latency;
use harmony_sim::rng::RngFactory;
use harmony_sim::topology::{NetworkModel, NodeId, Topology};
use harmony_store::cluster::{Cluster, ClusterTotals, Completion};
use harmony_store::config::StoreConfig;
use harmony_store::machine::{HarmonyMachine, MachineEvent, OnEvent};
use harmony_store::messages::StoreEvent;
use harmony_store::prelude::*;
use std::sync::Arc;

const SEED: u64 = 20120920;

fn build_cluster() -> Cluster {
    let topology = Topology::single_dc(1, 5);
    let network = NetworkModel::uniform(Latency::constant_ms(0.4));
    let config = StoreConfig {
        replication_factor: 3,
        // Nonzero so repair traffic (the main protocol_drops source under
        // faults) actually flows.
        background_read_repair_chance: 1.0,
        ..StoreConfig::default()
    };
    Cluster::new(config, topology, network, RngFactory::new(SEED))
}

/// The shared workload: a mixed batch per phase, across enough keys to
/// spread over the ring.
fn submit_phase<C: harmony_sim::context::EventCtx<StoreEvent>>(
    cluster: &mut Cluster,
    phase: usize,
    ctx: &mut C,
) {
    for i in 0..6 {
        let key = cluster.intern_key(&format!("key{}", (phase * 7 + i * 3) % 11));
        if i % 3 == 2 {
            cluster.submit_read_id(key, ConsistencyLevel::Quorum, ctx);
        } else {
            cluster.submit_write_id(
                key,
                Arc::new(Mutation::single("f", format!("p{phase}i{i}").into_bytes())),
                ConsistencyLevel::Quorum,
                ctx,
            );
        }
    }
}

/// The shared fault script, applied between phases: crashes and a partition
/// land while the previous phase's traffic is still in flight, which is
/// what pushes messages down the dead-destination and hinting paths.
fn phase_fault(phase: usize) -> Option<FaultEvent> {
    match phase {
        1 => Some(FaultEvent::CrashNode { node: NodeId(2) }),
        2 => Some(FaultEvent::Partition {
            groups: vec![vec![NodeId(0), NodeId(1)], vec![NodeId(3), NodeId(4)]],
        }),
        3 => Some(FaultEvent::HealPartition),
        4 => Some(FaultEvent::RestartNode { node: NodeId(2) }),
        5 => Some(FaultEvent::DecommissionNode { node: NodeId(4) }),
        _ => None,
    }
}

const PHASES: usize = 6;
/// Events processed per phase before the next fault lands — small enough to
/// leave traffic in flight at every fault boundary.
const EVENTS_PER_PHASE: usize = 25;

/// Old style: `Cluster` driven straight off a `Simulation<StoreEvent>`,
/// faults applied inline.
fn run_inline() -> (ClusterTotals, String, Vec<Completion>) {
    let mut cluster = build_cluster();
    let mut sim: Simulation<StoreEvent> = Simulation::new(SEED);
    let mut completions = Vec::new();
    for phase in 0..PHASES {
        if let Some(fault) = phase_fault(phase) {
            cluster.apply_fault(&fault, &mut sim);
        }
        submit_phase(&mut cluster, phase, &mut sim);
        for _ in 0..EVENTS_PER_PHASE {
            let Some((_, ev)) = sim.next() else { break };
            completions.extend(cluster.handle(ev, &mut sim));
        }
    }
    while let Some((_, ev)) = sim.next() {
        completions.extend(cluster.handle(ev, &mut sim));
    }
    (cluster.totals(), cluster.state_digest_string(), completions)
}

/// New style: the same calls routed through [`HarmonyMachine`]'s single
/// `on_event` entry point over `Simulation<MachineEvent>`.
fn run_machine() -> (ClusterTotals, String, Vec<Completion>) {
    let mut machine = HarmonyMachine::new(build_cluster());
    let mut sim: Simulation<MachineEvent> = Simulation::new(SEED);
    for phase in 0..PHASES {
        if let Some(fault) = phase_fault(phase) {
            machine.on_event(MachineEvent::Fault(fault), &mut sim);
        }
        submit_phase(machine.cluster_mut(), phase, &mut StoreCtxShim(&mut sim));
        for _ in 0..EVENTS_PER_PHASE {
            let Some((_, ev)) = sim.next() else { break };
            machine.on_event(ev, &mut sim);
        }
    }
    while let Some((_, ev)) = sim.next() {
        machine.on_event(ev, &mut sim);
    }
    let completions = machine.drain_completions();
    (
        machine.cluster().totals(),
        machine.cluster().state_digest_string(),
        completions,
    )
}

/// Submissions on the machine side still target the cluster directly (the
/// phases are workload setup, not protocol), but their emissions must land
/// in the machine's `MachineEvent` queue — this is the same wrapping
/// `HarmonyMachine::submit_write` does internally.
struct StoreCtxShim<'a>(&'a mut Simulation<MachineEvent>);

impl harmony_sim::context::EventCtx<StoreEvent> for StoreCtxShim<'_> {
    fn now(&self) -> harmony_sim::clock::SimTime {
        self.0.now()
    }

    fn emit(&mut self, delay: harmony_sim::clock::SimTime, event: StoreEvent) {
        self.0.emit(delay, MachineEvent::Store(event));
    }
}

/// Same workload, same fault script, same seed ⇒ byte-identical outcome
/// through both driving styles.
#[test]
fn machine_and_inline_drivers_agree_exactly() {
    let (inline_totals, inline_digest, inline_completions) = run_inline();
    let (machine_totals, machine_digest, machine_completions) = run_machine();
    assert_eq!(
        inline_totals, machine_totals,
        "ClusterTotals diverged between inline and machine drivers"
    );
    assert_eq!(
        inline_totals.protocol_drops, machine_totals.protocol_drops,
        "protocol_drops diverged"
    );
    assert_eq!(inline_digest, machine_digest, "state digests diverged");
    // Completions carry identical op ids, verdicts and timings in the same
    // order (Completion is not PartialEq; its Debug form is total).
    let inline_log: Vec<String> = inline_completions
        .iter()
        .map(|c| format!("{c:?}"))
        .collect();
    let machine_log: Vec<String> = machine_completions
        .iter()
        .map(|c| format!("{c:?}"))
        .collect();
    assert_eq!(inline_log, machine_log, "completion streams diverged");
    // The script must have actually exercised the fault paths, or the
    // equality above proves nothing interesting.
    assert!(
        inline_totals.ops_aborted > 0,
        "no op was aborted: {inline_totals:?}"
    );
    assert!(
        inline_totals.writes_completed > 0 && inline_totals.reads_completed > 0,
        "workload too small: {inline_totals:?}"
    );
}

//! Purity properties of the typed-event protocol core.
//!
//! [`HarmonyMachine`] claims to be a pure state machine: all state is owned
//! (`Clone` forks the world), all effects flow through the injected
//! [`EventCtx`], and the step function is deterministic. These properties
//! are what the bounded model checker's clone-based backtracking and
//! fingerprint dedup stand on, so they are pinned here against randomised
//! event schedules that interleave deliveries with crashes and restarts.

use harmony_chaos::FaultEvent;
use harmony_sim::clock::SimTime;
use harmony_sim::context::EventCtx;
use harmony_sim::latency::Latency;
use harmony_sim::rng::RngFactory;
use harmony_sim::topology::{NetworkModel, NodeId, Topology};
use harmony_store::cluster::Cluster;
use harmony_store::config::StoreConfig;
use harmony_store::machine::{HarmonyMachine, MachineEvent, OnEvent};
use harmony_store::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A minimal driver context: a pending list under a frozen clock, like the
/// model checker's (harmony-store cannot depend on harmony-check, so the
/// tests carry their own copy of the five-line context).
#[derive(Debug, Clone, Default, PartialEq)]
struct ListCtx {
    pending: Vec<MachineEvent>,
}

impl EventCtx<MachineEvent> for ListCtx {
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }

    fn emit(&mut self, _delay: SimTime, event: MachineEvent) {
        self.pending.push(event);
    }
}

const NODES: usize = 3;

fn build_machine(seed: u64) -> (HarmonyMachine, ListCtx) {
    let topology = Topology::single_dc(1, NODES as u16);
    let network = NetworkModel::uniform(Latency::constant_ms(0.3));
    let config = StoreConfig {
        replication_factor: 3,
        background_read_repair_chance: 0.0,
        ..StoreConfig::default()
    };
    let cluster = Cluster::new(config, topology, network, RngFactory::new(seed));
    let mut machine = HarmonyMachine::new(cluster);
    let mut ctx = ListCtx::default();
    let key = machine.cluster_mut().intern_key("k");
    machine.submit_write(
        key,
        Arc::new(Mutation::single("f", b"w0".to_vec())),
        ConsistencyLevel::Quorum,
        &mut ctx,
    );
    machine.submit_read(key, ConsistencyLevel::One, &mut ctx);
    machine.submit_write(
        key,
        Arc::new(Mutation::single("f", b"w1".to_vec())),
        ConsistencyLevel::One,
        &mut ctx,
    );
    (machine, ctx)
}

/// Picks the next event for a randomised schedule: usually a pending
/// delivery at a random index, sometimes a crash or restart.
fn next_event(
    rng: &mut StdRng,
    machine: &HarmonyMachine,
    ctx: &mut ListCtx,
) -> Option<MachineEvent> {
    if !ctx.pending.is_empty() && rng.gen_range(0..10) > 0 {
        let i = rng.gen_range(0..ctx.pending.len());
        return Some(ctx.pending.remove(i));
    }
    let node = NodeId(rng.gen_range(0..NODES as u32));
    let fault = if machine.cluster().fault_state().is_alive(node) {
        FaultEvent::CrashNode { node }
    } else {
        FaultEvent::RestartNode { node }
    };
    Some(MachineEvent::Fault(fault))
}

proptest! {
    /// Clone-then-step equals step-then-clone: forking the machine before or
    /// after a step makes no difference, at every step of a random schedule.
    /// Any hidden sharing between clones (an `Arc` with interior mutability,
    /// a global) would make the twins drift.
    #[test]
    fn clone_then_step_commutes_with_step(seed in 0u64..64, steps in 1usize..60) {
        let (mut machine, mut ctx) = build_machine(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        for _ in 0..steps {
            let Some(event) = next_event(&mut rng, &machine, &mut ctx) else {
                break;
            };
            // Fork before the step…
            let mut twin = machine.clone();
            let mut twin_ctx = ctx.clone();
            // …then step both sides with the same event.
            machine.on_event(event.clone(), &mut ctx);
            twin.on_event(event, &mut twin_ctx);
            prop_assert_eq!(
                machine.state_digest_string(),
                twin.state_digest_string(),
                "clone drifted from original after the same step"
            );
            prop_assert_eq!(&ctx, &twin_ctx, "emissions drifted between clones");
        }
    }

    /// Replaying the same event log from the same initial state is
    /// byte-identical — at every intermediate step, not just the end. This
    /// is the determinism the fixture corpus and the explorer's cached
    /// backtracking both rely on.
    #[test]
    fn replaying_an_event_log_is_byte_identical(seed in 0u64..64, steps in 1usize..60) {
        // First run: record the schedule actually taken.
        let (mut machine, mut ctx) = build_machine(seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let mut log: Vec<MachineEvent> = Vec::new();
        let mut digests: Vec<String> = Vec::new();
        for _ in 0..steps {
            let Some(event) = next_event(&mut rng, &machine, &mut ctx) else {
                break;
            };
            log.push(event.clone());
            machine.on_event(event, &mut ctx);
            digests.push(machine.state_digest_string());
        }
        // Second run: replay the recorded log verbatim on a fresh build.
        let (mut replay, mut replay_ctx) = build_machine(seed);
        for (event, expected) in log.iter().zip(&digests) {
            // Deliveries were removed from the first run's pending list; do
            // the same here so the contexts stay in lockstep.
            if let Some(pos) = replay_ctx.pending.iter().position(|e| e == event) {
                replay_ctx.pending.remove(pos);
            }
            replay.on_event(event.clone(), &mut replay_ctx);
            prop_assert_eq!(
                &replay.state_digest_string(),
                expected,
                "replay diverged from the recorded run"
            );
        }
        prop_assert_eq!(
            replay.state_digest(),
            machine.state_digest(),
            "final fingerprints differ"
        );
    }
}

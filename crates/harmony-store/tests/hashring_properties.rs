//! Property tests for the consistent-hash token ring: ownership balance,
//! key→replica determinism, and RF-sized distinct replica sets.

use harmony_store::hashring::{key_token, HashRing};
use proptest::prelude::*;

proptest! {
    /// Token-space ownership is a probability distribution and, with enough
    /// virtual nodes, no physical node owns a grossly outsized share.
    #[test]
    fn ownership_is_balanced(nodes in 2usize..16, vnodes in 32usize..128) {
        let ring = HashRing::new(nodes, vnodes);
        let own = ring.ownership();
        prop_assert_eq!(own.len(), nodes);
        let total: f64 = own.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "ownership sums to {total}");
        let fair = 1.0 / nodes as f64;
        for (i, o) in own.iter().enumerate() {
            prop_assert!(*o > 0.0, "node {i} owns nothing");
            prop_assert!(
                *o < fair * 3.0,
                "node {i} owns {o:.4}, more than 3x the fair share {fair:.4}"
            );
        }
    }

    /// Two independently constructed rings with the same shape agree on the
    /// primary and the full preference list of every key, and repeated
    /// lookups on one ring never change their answer.
    #[test]
    fn key_to_replica_mapping_is_deterministic(
        nodes in 1usize..12,
        vnodes in 1usize..64,
        key in "[a-zA-Z0-9]{1,16}",
        rf in 1usize..6,
    ) {
        let a = HashRing::new(nodes, vnodes);
        let b = HashRing::new(nodes, vnodes);
        prop_assert_eq!(a.primary_for_key(&key), b.primary_for_key(&key));
        prop_assert_eq!(a.preference_list(&key, rf), b.preference_list(&key, rf));
        prop_assert_eq!(a.preference_list(&key, rf), a.preference_list(&key, rf));
        prop_assert_eq!(key_token(&key), key_token(&key));
    }

    /// The preference list has exactly `min(rf, nodes)` entries, all distinct,
    /// all valid node ids, led by the key's primary replica.
    #[test]
    fn preference_lists_are_rf_sized_distinct_sets(
        nodes in 1usize..12,
        vnodes in 1usize..64,
        rf in 1usize..8,
        keys in prop::collection::vec("[a-z]{1,12}", 1..20),
    ) {
        let ring = HashRing::new(nodes, vnodes);
        for key in &keys {
            let prefs = ring.preference_list(key, rf);
            prop_assert_eq!(prefs.len(), rf.min(nodes));
            let mut sorted: Vec<u32> = prefs.iter().map(|n| n.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), prefs.len(), "replica set contains duplicates");
            for n in &prefs {
                prop_assert!((n.0 as usize) < nodes, "node id {} out of range", n.0);
            }
            prop_assert_eq!(prefs[0], ring.primary_for_key(key));
        }
    }

    /// Primary placement follows the clockwise-successor rule: the owner of
    /// the first token at or after the key's token.
    #[test]
    fn primary_is_clockwise_successor(nodes in 1usize..10, vnodes in 1usize..32) {
        let ring = HashRing::new(nodes, vnodes);
        for k in 0..50u32 {
            let key = format!("probe{k}");
            let first = ring
                .walk_from_key(&key)
                .next()
                .expect("non-empty ring walk");
            prop_assert_eq!(first, ring.primary_for_key(&key));
        }
    }
}

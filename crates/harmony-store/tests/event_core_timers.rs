//! Timer semantics through the event core, under real simulated time: the
//! stall reaper (the event-core port of the runners' polling
//! `expire_stalled_ops` tick) aborts operations stranded by a partition,
//! and a cancelled reaper — wake-up already in flight — never fires.

use harmony_chaos::FaultEvent;
use harmony_sim::clock::SimTime;
use harmony_sim::engine::Simulation;
use harmony_sim::latency::Latency;
use harmony_sim::rng::RngFactory;
use harmony_sim::topology::{NetworkModel, NodeId, Topology};
use harmony_store::cluster::{Cluster, Completion};
use harmony_store::config::StoreConfig;
use harmony_store::machine::{HarmonyMachine, MachineEvent, OnEvent};
use harmony_store::messages::{Message, StoreEvent};
use harmony_store::prelude::*;
use std::sync::Arc;

fn machine(seed: u64) -> (HarmonyMachine, Simulation<MachineEvent>) {
    let topology = Topology::single_dc(1, 3);
    let network = NetworkModel::uniform(Latency::constant_ms(0.2));
    let config = StoreConfig {
        replication_factor: 3,
        background_read_repair_chance: 0.0,
        ..StoreConfig::default()
    };
    let cluster = Cluster::new(config, topology, network, RngFactory::new(seed));
    (HarmonyMachine::new(cluster), Simulation::new(seed))
}

/// Submits a quorum write and isolates its coordinator behind a partition
/// installed *after* the replica fan-out is in flight — the mid-flight race
/// `expire_stalled_ops` exists for. The coordinator picked quorum = 2 while
/// everything was reachable; the remote replicas apply the write but their
/// acks are dropped at the cut, so the lone self-ack can never reach quorum
/// and the operation stalls until something aborts it.
fn strand_a_quorum_write(m: &mut HarmonyMachine, sim: &mut Simulation<MachineEvent>) -> NodeId {
    let key = m.cluster_mut().intern_key("stranded");
    m.submit_write(
        key,
        Arc::new(Mutation::single("f", b"v".to_vec())),
        ConsistencyLevel::Quorum,
        sim,
    );
    // The first queued event is the client write reaching its coordinator;
    // processing it emits the replica fan-out.
    let (_, ev) = sim.next().expect("client write delivery queued");
    let MachineEvent::Store(StoreEvent::Deliver {
        dest: coordinator,
        message: Message::ClientWrite { .. },
    }) = &ev
    else {
        panic!("expected the client write delivery first, got {ev:?}");
    };
    let coordinator = *coordinator;
    m.on_event(ev, sim);
    let others: Vec<NodeId> = (0..3).map(NodeId).filter(|n| *n != coordinator).collect();
    m.on_event(
        MachineEvent::Fault(FaultEvent::Partition {
            groups: vec![vec![coordinator], others],
        }),
        sim,
    );
    coordinator
}

fn run_until_completion(
    m: &mut HarmonyMachine,
    sim: &mut Simulation<MachineEvent>,
) -> Option<Completion> {
    for _ in 0..10_000 {
        let (_, ev) = sim.next()?;
        m.on_event(ev, sim);
        let mut done = m.drain_completions();
        if let Some(c) = done.pop() {
            return Some(c);
        }
    }
    panic!("no completion within 10k events — reaper never reaped?");
}

/// The armed reaper fires on simulated time and aborts the stranded write;
/// the abort surfaces as a regular (aborted) completion and counts in
/// `ops_aborted` — the exact behaviour the experiment runners used to get
/// from polling `expire_stalled_ops` on their monitoring tick.
#[test]
fn stall_reaper_aborts_partition_stranded_write() {
    let (mut m, mut sim) = machine(11);
    strand_a_quorum_write(&mut m, &mut sim);
    m.arm_stall_reaper(SimTime::from_millis(50), SimTime::from_millis(20), &mut sim);
    let completion = run_until_completion(&mut m, &mut sim).expect("simulation stays live");
    assert!(
        completion.aborted,
        "the stranded write must abort, not complete"
    );
    let totals = m.cluster().totals();
    assert_eq!(totals.ops_aborted, 1);
    assert_eq!(totals.writes_completed, 0);
    assert_eq!(m.cluster().unresolved_ops(), 0, "the abort resolved the op");
    assert!(
        sim.now() >= SimTime::from_millis(50),
        "the reaper cannot abort before the stall timeout has elapsed"
    );
    // The reaper re-armed itself; cancelling it lets the world drain fully.
    m.cancel_all_timers();
    while let Some((_, ev)) = sim.next() {
        m.on_event(ev, &mut sim);
    }
    assert!(sim.is_idle());
}

/// Cancelling the reaper while its wake-up is already queued makes the
/// wake-up inert: nothing is reaped, nothing re-arms, and the stranded write
/// stays pending forever — "cancelled timers never fire" holds through the
/// event core under real time, not just in the timer-table unit tests.
#[test]
fn cancelled_reaper_never_reaps() {
    let (mut m, mut sim) = machine(11);
    strand_a_quorum_write(&mut m, &mut sim);
    let id = m.arm_stall_reaper(SimTime::from_millis(50), SimTime::from_millis(20), &mut sim);
    assert!(m.cancel_timer(id));
    while let Some((_, ev)) = sim.next() {
        m.on_event(ev, &mut sim);
    }
    // The world drained (no re-arm kept it alive) and nothing was aborted.
    assert!(sim.is_idle());
    assert!(m.drain_completions().is_empty());
    assert_eq!(m.cluster().totals().ops_aborted, 0);
    assert_eq!(
        m.cluster().unresolved_ops(),
        1,
        "with the reaper cancelled the stranded write stays pending"
    );
}

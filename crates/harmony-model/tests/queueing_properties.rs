//! Property-based tests for the queueing-aware staleness model: the M/G/1
//! write-stage queue, the propagation-time distribution, and the integrated
//! stale-read probability.
//!
//! The key contracts locked in here:
//!
//! * the integrated stale probability is always within `[0, 1]`,
//! * it is monotone (non-decreasing) in the queue-wait variance,
//! * it degrades gracefully as `ρ → 1` (finite, bounded, no NaN) and the
//!   diverging regime dominates every stable one,
//! * with zero queue-wait variance the model reduces to the existing scalar
//!   closed form to 1e-9.

use harmony_model::decision::{decide, decide_with_estimate};
use harmony_model::queueing::{
    MG1Queue, ProactiveConfig, QueueingModel, StalenessEstimate, WriteStageObservation,
};
use harmony_model::staleness::StaleReadModel;
use proptest::prelude::*;

fn observation(
    arrival: f64,
    service_ms: f64,
    scv: f64,
    backlog_ms: f64,
    variance_ms2: f64,
    trend: f64,
) -> WriteStageObservation {
    WriteStageObservation {
        arrival_rate_per_replica: arrival,
        service_mean_ms: service_ms,
        service_scv: scv,
        backlog_mean_ms: backlog_ms,
        backlog_variance_ms2: variance_ms2,
        backlog_trend_ms_per_s: trend,
        ..Default::default()
    }
}

proptest! {
    /// The integrated probability is clamped to the unit interval for
    /// arbitrary (non-negative) inputs, including extreme spreads.
    #[test]
    fn integrated_probability_always_in_unit_interval(
        n in 1usize..10,
        read_rate in 0.0f64..50_000.0,
        write_rate in 0.0f64..50_000.0,
        tp_net in 0.0f64..0.5,
        variance_ms2 in 0.0f64..1e6,
        arrival in 0.0f64..20_000.0,
        service_ms in 0.0f64..10.0,
    ) {
        let m = StaleReadModel::new(n);
        let est = QueueingModel::default().estimate(
            &observation(arrival, service_ms, 1.0, 5.0, variance_ms2, 0.0),
            tp_net,
            n,
        );
        let p = m.stale_probability_estimate(read_rate, write_rate, &est);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        prop_assert!(p.is_finite());
        for x in 1..=n {
            let px = m.stale_probability_with_replicas_estimate(x, read_rate, write_rate, &est);
            prop_assert!((0.0..=1.0).contains(&px));
        }
    }

    /// Stale probability is monotone (non-decreasing) in the queue-wait
    /// variance, everything else held fixed.
    #[test]
    fn probability_monotone_in_queue_wait_variance(
        n in 2usize..9,
        read_rate in 1.0f64..20_000.0,
        write_rate in 1.0f64..20_000.0,
        tp_net in 0.0f64..0.01,
        base_var in 0.0f64..100.0,
        steps in 2usize..8,
    ) {
        let m = StaleReadModel::new(n);
        let model = QueueingModel::default();
        let mut prev = -1.0f64;
        for i in 0..steps {
            let variance = base_var + i as f64 * (10.0 + base_var);
            let est = model.estimate(
                &observation(100.0, 0.5, 1.0, 5.0, variance, 0.0),
                tp_net,
                n,
            );
            let p = m.stale_probability_estimate(read_rate, write_rate, &est);
            prop_assert!(
                p >= prev - 1e-12,
                "variance={variance} p={p} prev={prev}"
            );
            prev = p;
        }
    }

    /// Zero queue-wait variance reduces the queueing-aware model to the
    /// scalar closed form at the same mean propagation time, to 1e-9.
    #[test]
    fn zero_variance_reduces_to_closed_form(
        n in 1usize..10,
        read_rate in 0.0f64..20_000.0,
        write_rate in 0.0f64..20_000.0,
        tp_net in 0.0f64..0.1,
        backlog_ms in 0.0f64..100.0,
        arrival in 0.0f64..900.0,
        asr in 0.0f64..1.0,
    ) {
        let m = StaleReadModel::new(n);
        // Stable queue (ρ < 0.9), uniform backlog, flat trend: zero variance.
        let est = QueueingModel::default().estimate(
            &observation(arrival, 1.0, 1.0, backlog_ms, 0.0, 0.0),
            tp_net,
            n,
        );
        prop_assert_eq!(est.spread_variance_secs2, 0.0);
        prop_assert!(!est.diverging);
        let integrated = m.stale_probability_estimate(read_rate, write_rate, &est);
        let closed = m.stale_probability_saturating(read_rate, write_rate, est.tp_mean_secs());
        prop_assert!(
            (integrated - closed).abs() <= 1e-9,
            "integrated={integrated} closed={closed}"
        );
        // The decision scheme agrees too.
        prop_assert_eq!(
            decide_with_estimate(&m, asr, read_rate, write_rate, &est),
            decide(&m, asr, read_rate.max(0.0), write_rate.max(0.0), est.tp_mean_secs())
        );
    }

    /// Graceful degradation at ρ → 1: the M/G/1 wait moments grow
    /// monotonically and the integrated probability stays bounded and finite
    /// right up to (and past) the stability boundary; a diverging queue
    /// dominates every stable estimate.
    #[test]
    fn degrades_gracefully_towards_saturation(
        n in 2usize..8,
        read_rate in 1.0f64..10_000.0,
        write_rate in 1.0f64..10_000.0,
        service_ms in 0.05f64..2.0,
        scv in 0.0f64..4.0,
    ) {
        let m = StaleReadModel::new(n);
        let model = QueueingModel::default();
        let service_secs = service_ms / 1e3;
        let mut prev_wait = 0.0f64;
        for rho in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0, 1.5] {
            let arrival = rho / service_secs;
            let queue = MG1Queue::new(arrival, service_secs, scv);
            let wait = queue.mean_wait_secs();
            prop_assert!(wait >= prev_wait, "rho={rho}");
            prop_assert!(!wait.is_nan());
            prop_assert!(queue.wait_variance_secs2() >= 0.0);
            prev_wait = wait;

            // Probability stays valid whatever the utilization (the window is
            // driven by the measured dispersion, which stays finite).
            let est = model.estimate(
                &observation(arrival, service_ms, scv, 10.0, 4.0, 0.0),
                0.0001,
                n,
            );
            let p = m.stale_probability_estimate(read_rate, write_rate, &est);
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite(), "rho={rho} p={p}");
        }
        // ρ ≥ 1 with a growing backlog: diverging, and the estimate dominates
        // every stable configuration at the same rates.
        let runaway = model.estimate(
            &observation(1.2 / service_secs, service_ms, scv, 10.0, 4.0, 1000.0),
            0.0001,
            n,
        );
        prop_assert!(runaway.diverging);
        let p_runaway = m.stale_probability_estimate(read_rate, write_rate, &runaway);
        prop_assert!((0.0..=1.0).contains(&p_runaway));
        for rho in [0.1, 0.5, 0.9] {
            let stable = model.estimate(
                &observation(rho / service_secs, service_ms, scv, 10.0, 4.0, 0.0),
                0.0001,
                n,
            );
            let p_stable = m.stale_probability_estimate(read_rate, write_rate, &stable);
            prop_assert!(p_runaway >= p_stable - 1e-12, "rho={rho}");
        }
    }

    /// `required_replicas_estimate` stays within `[1, N]`, is sufficient when
    /// below `N`, and is monotone in the tolerance.
    #[test]
    fn required_replicas_estimate_valid_and_sufficient(
        n in 1usize..9,
        asr in 0.0f64..1.0,
        read_rate in 1.0f64..10_000.0,
        write_rate in 1.0f64..10_000.0,
        tp_net in 1e-6f64..0.01,
        variance_ms2 in 0.0f64..25.0,
    ) {
        let m = StaleReadModel::new(n);
        let est = QueueingModel::default().estimate(
            &observation(100.0, 0.5, 1.0, 5.0, variance_ms2, 0.0),
            tp_net,
            n,
        );
        let x = m.required_replicas_estimate(asr, read_rate, write_rate, &est);
        prop_assert!(x >= 1 && x <= n);
        if x < n {
            let p = m.stale_probability_with_replicas_estimate(x, read_rate, write_rate, &est);
            prop_assert!(p <= asr + 1e-9, "x={x} p={p} asr={asr}");
        }
        // Monotone in tolerance.
        let stricter = m.required_replicas_estimate((asr - 0.1).max(0.0), read_rate, write_rate, &est);
        prop_assert!(stricter >= x);
    }

    /// The saturating M/G/1 accessors are finite and within `[0, cap]` for
    /// arbitrary inputs — including ρ ≥ 1, where the raw accessors return
    /// `f64::INFINITY` — and agree with the raw values whenever those are
    /// below the cap.
    #[test]
    fn saturating_wait_accessors_are_bounded_and_exact(
        arrival in 0.0f64..50_000.0,
        service_ms in 0.0f64..10.0,
        scv in 0.0f64..8.0,
        cap in 0.0f64..30.0,
    ) {
        let q = MG1Queue::new(arrival, service_ms / 1e3, scv);
        let w = q.mean_wait_secs_saturating(cap);
        let s = q.wait_std_secs_saturating(cap);
        prop_assert!(w.is_finite() && (0.0..=cap).contains(&w), "w={w}");
        prop_assert!(s.is_finite() && (0.0..=cap).contains(&s), "s={s}");
        let raw = q.mean_wait_secs();
        if raw.is_finite() && raw <= cap {
            prop_assert_eq!(w, raw);
        }
        let raw_var = q.wait_variance_secs2();
        if raw_var.is_finite() && raw_var.sqrt() <= cap {
            prop_assert_eq!(s, raw_var.sqrt());
        }
    }

    /// Satellite-1 regression: across arbitrary telemetry — saturated queues
    /// included — no NaN or infinity ever reaches a `decide()` call through
    /// the proactive estimate, and the decision stays within `[1, N]`.
    #[test]
    fn no_nan_or_inf_ever_reaches_decide(
        n in 1usize..9,
        asr in 0.0f64..1.0,
        read_rate in 0.0f64..20_000.0,
        write_rate in 0.0f64..20_000.0,
        tp_net in 0.0f64..0.1,
        arrival in 0.0f64..50_000.0,
        service_ms in 0.0f64..10.0,
        scv in 0.0f64..8.0,
        backlog_ms in -5.0f64..500.0,
        variance_ms2 in 0.0f64..1e6,
        trend in -1e4f64..1e4,
        predicted_ms in 0.0f64..5e3,
        predicted_trend in -1e4f64..1e4,
        weight in 0.0f64..1.0,
    ) {
        let m = StaleReadModel::new(n);
        let model = QueueingModel::default();
        let proactive = ProactiveConfig {
            enabled: true,
            prediction_weight: weight,
            min_utilization: 0.3,
            horizon_secs: 5.0,
        };
        let mut obs = observation(arrival, service_ms, scv, backlog_ms, variance_ms2, trend);
        obs.predicted_wait_ms = predicted_ms;
        obs.predicted_wait_trend_ms_per_s = predicted_trend;
        let est = model.estimate_with_prediction(&obs, tp_net, n, &proactive);
        prop_assert!(est.tp_network_secs.is_finite());
        prop_assert!(est.queue_wait_secs.is_finite());
        prop_assert!(est.spread_mean_secs.is_finite());
        prop_assert!(est.spread_variance_secs2.is_finite());
        prop_assert!(est.utilization.is_finite());
        prop_assert!(est.predicted_wait_secs.is_finite());
        let p = m.stale_probability_estimate(read_rate, write_rate, &est);
        prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p={p}");
        let decision = decide_with_estimate(&m, asr, read_rate, write_rate, &est);
        prop_assert!(decision.replicas() >= 1 && decision.replicas() <= n);
    }

    /// The Laplace transform of the spread distribution is a valid transform:
    /// within (0, 1], decreasing in `s`, and increasing in variance at fixed
    /// mean (Jensen).
    #[test]
    fn laplace_transform_is_well_behaved(
        tp_net in 0.0f64..0.01,
        mean in 0.0f64..0.05,
        shape in 0.5f64..16.0,
        s_lo in 1.0f64..5_000.0,
    ) {
        let est = StalenessEstimate {
            tp_network_secs: tp_net,
            spread_mean_secs: mean,
            spread_variance_secs2: mean * mean / shape,
            ..StalenessEstimate::default()
        };
        let s_hi = s_lo * 3.0;
        let lo = est.laplace(s_lo);
        let hi = est.laplace(s_hi);
        prop_assert!(lo > 0.0 && lo <= 1.0);
        prop_assert!(hi <= lo + 1e-15);
        // Jensen: more variance at the same mean increases the transform.
        if mean > 0.0 {
            let spikier = StalenessEstimate {
                spread_variance_secs2: 4.0 * mean * mean / shape,
                ..est
            };
            prop_assert!(spikier.laplace(s_lo) >= lo - 1e-15);
        }
    }
}

/// A deterministic spot-check of the monotone-in-variance property across a
/// wide variance sweep, with the exact spread construction the controller
/// uses.
#[test]
fn variance_sweep_is_monotone_end_to_end() {
    let m = StaleReadModel::new(5);
    let model = QueueingModel::differential(0.02);
    let mut prev = -1.0;
    for k in 0..40 {
        let variance_ms2 = k as f64 * k as f64 * 0.25; // 0 .. ~380 ms²
        let est = model.estimate(
            &observation(8_000.0, 0.1, 1.0, 5.0, variance_ms2, 0.0),
            1.2e-5,
            5,
        );
        let p = m.stale_probability_estimate(15_000.0, 15_000.0, &est);
        assert!(p >= prev - 1e-12, "k={k} p={p} prev={prev}");
        assert!((0.0..=1.0).contains(&p));
        prev = p;
    }
    // The sweep actually moves the estimate (not a degenerate constant).
    assert!(prev > 0.2, "final probability {prev}");
}

//! Property-based tests for the stale-read model and rate estimators, plus a
//! Monte-Carlo cross-validation of the closed-form probability in the
//! low-contention regime where the paper's independence approximation holds.

use harmony_model::decision::{decide, ConsistencyDecision};
use harmony_model::rates::{EwmaRate, RateEstimator, SlidingWindowRate};
use harmony_model::staleness::{PropagationModel, StaleReadModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #[test]
    fn probability_always_in_unit_interval(
        n in 1usize..10,
        read_rate in 0.0f64..50_000.0,
        write_rate in 0.0f64..50_000.0,
        tp in 0.0f64..1.0,
    ) {
        let m = StaleReadModel::new(n);
        let p = m.stale_probability(read_rate, write_rate, tp);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn probability_monotone_in_replicas_involved(
        n in 2usize..9,
        read_rate in 1.0f64..10_000.0,
        write_rate in 1.0f64..10_000.0,
        tp in 1e-5f64..0.1,
    ) {
        let m = StaleReadModel::new(n);
        let mut prev = f64::INFINITY;
        for x in 1..=n {
            let p = m.stale_probability_with_replicas(x, read_rate, write_rate, tp);
            prop_assert!(p <= prev + 1e-12);
            prev = p;
        }
        // Reading every replica can never be stale.
        prop_assert_eq!(m.stale_probability_with_replicas(n, read_rate, write_rate, tp), 0.0);
    }

    #[test]
    fn required_replicas_in_valid_range_and_sufficient(
        n in 1usize..9,
        asr in 0.0f64..1.0,
        read_rate in 1.0f64..10_000.0,
        write_rate in 1.0f64..10_000.0,
        tp in 1e-6f64..0.05,
    ) {
        let m = StaleReadModel::new(n);
        let x = m.required_replicas(asr, read_rate, write_rate, tp);
        prop_assert!(x >= 1 && x <= n);
        if x < n {
            let p = m.stale_probability_with_replicas(x, read_rate, write_rate, tp);
            prop_assert!(p <= asr + 1e-9, "x={x} p={p} asr={asr}");
        }
        // One fewer replica (if possible) must NOT satisfy the tolerance,
        // i.e. the result is minimal.
        if x > 1 {
            let p_less = m.stale_probability_with_replicas(x - 1, read_rate, write_rate, tp);
            prop_assert!(p_less > asr - 1e-9, "x={x} p_less={p_less} asr={asr}");
        }
    }

    #[test]
    fn decision_matches_model(
        asr in 0.0f64..1.0,
        read_rate in 1.0f64..10_000.0,
        write_rate in 1.0f64..10_000.0,
        tp in 1e-6f64..0.05,
    ) {
        let m = StaleReadModel::new(5);
        let d = decide(&m, asr, read_rate, write_rate, tp);
        let theta = m.stale_probability(read_rate, write_rate, tp);
        match d {
            ConsistencyDecision::Eventual => {
                // Either the tolerance covers the estimate, or one replica is enough anyway.
                prop_assert!(asr >= theta || m.required_replicas(asr, read_rate, write_rate, tp) <= 1);
            }
            ConsistencyDecision::Replicas(x) => {
                prop_assert!(asr < theta);
                prop_assert!((2..=5).contains(&x));
            }
        }
    }

    #[test]
    fn propagation_time_monotone(
        lat_a in 0.0f64..50.0,
        lat_b in 0.0f64..50.0,
        size_a in 0.0f64..1e7,
        size_b in 0.0f64..1e7,
    ) {
        let p = PropagationModel::default();
        let (lo_lat, hi_lat) = if lat_a <= lat_b { (lat_a, lat_b) } else { (lat_b, lat_a) };
        let (lo_sz, hi_sz) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        prop_assert!(p.propagation_time_secs(lo_lat, 100.0) <= p.propagation_time_secs(hi_lat, 100.0));
        prop_assert!(p.propagation_time_secs(1.0, lo_sz) <= p.propagation_time_secs(1.0, hi_sz));
    }

    #[test]
    fn sliding_window_rates_are_never_negative(
        samples in prop::collection::vec((0.01f64..5.0, 0u64..10_000, 0u64..10_000), 1..50),
        window in 0.5f64..30.0,
    ) {
        let mut est = SlidingWindowRate::new(window);
        for (e, r, w) in samples {
            est.observe(e, r, w);
            let v = est.estimate();
            prop_assert!(v.reads_per_sec >= 0.0);
            prop_assert!(v.writes_per_sec >= 0.0);
        }
    }

    #[test]
    fn ewma_stays_within_observed_range(
        rates in prop::collection::vec(0.0f64..10_000.0, 1..50),
        alpha in 0.01f64..1.0,
    ) {
        let mut est = EwmaRate::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in &rates {
            lo = lo.min(*r);
            hi = hi.max(*r);
            est.observe(1.0, r.round() as u64, 0);
            let v = est.estimate().reads_per_sec;
            prop_assert!(v >= lo - 1.0 && v <= hi + 1.0, "v={v} lo={lo} hi={hi}");
        }
    }
}

/// Monte-Carlo cross-check of Eq. (6), simulating exactly the probabilistic
/// situation of the paper's Figure 2 / Eq. (1).
///
/// The paper's model is anchored at the time of the *last write* (the write at
/// the origin in Figure 2): the next read arrives `Xr ~ Exp(λr)` later, the
/// i-th subsequent write arrives at `Xw^i ~ Gamma(i, 1/λw)`, and the read may
/// be stale when it falls inside a propagation window `[Xw^i, Xw^i + Tp]`
/// (including the window of the anchoring write at the origin, the `i = 0`
/// term of the sum), landing on a not-yet-updated replica with probability
/// `(N-1)/N`. The Monte-Carlo estimate of that event must match the closed
/// form. Note this quantity is *conditioned on a write having just happened*
/// and therefore deliberately overestimates the steady-state stale fraction —
/// a conservative bias that pushes Harmony towards stronger consistency.
#[test]
fn monte_carlo_agrees_with_closed_form() {
    let n = 5usize;
    let model = StaleReadModel::new(n);
    let read_rate = 200.0;
    let write_rate = 40.0;
    let tp = 0.001; // 1 ms

    let mut rng = StdRng::seed_from_u64(20120917); // CLUSTER 2012 submission date
    let trials = 400_000u64;
    let mut stale = 0u64;
    for _ in 0..trials {
        // Next read, measured from the anchoring write at t = 0.
        let xr = -(1.0 - rng.gen::<f64>()).ln() / read_rate;
        // Walk subsequent writes until they pass the read time.
        let mut in_window = xr < tp; // window of the anchoring write (i = 0 term)
        let mut t_write = 0.0;
        loop {
            t_write += -(1.0 - rng.gen::<f64>()).ln() / write_rate;
            if t_write > xr {
                break;
            }
            if xr - t_write < tp {
                in_window = true;
            }
        }
        if in_window && rng.gen_range(0..n) != 0 {
            stale += 1;
        }
    }
    let empirical = stale as f64 / trials as f64;
    let predicted = model.stale_probability(read_rate, write_rate, tp);
    let diff = (empirical - predicted).abs();
    // The closed form sums per-write window probabilities; the Monte-Carlo
    // measures their union, so a small positive gap (overlapping windows) is
    // expected on top of sampling noise.
    assert!(
        diff < 0.02,
        "empirical={empirical:.4} predicted={predicted:.4} diff={diff:.4}"
    );
}

/// The paper's Figure 4(a) observation: workload B (few writes) must always
/// have a lower estimated stale-read probability than workload A (heavy
/// read-update mix) at the same total throughput.
#[test]
fn workload_b_estimates_below_workload_a() {
    let model = StaleReadModel::new(5);
    let tp = 0.0005;
    for total_ops in [100.0, 1000.0, 10_000.0] {
        // Workload A: 50% reads / 50% updates; workload B: 95% reads / 5% updates.
        let a = model.stale_probability(total_ops * 0.5, total_ops * 0.5, tp);
        let b = model.stale_probability(total_ops * 0.95, total_ops * 0.05, tp);
        assert!(b < a, "total={total_ops} a={a} b={b}");
    }
}

/// Figure 4(b) observation: higher network latency (hence higher Tp) dominates
/// the stale-read estimate regardless of thread count / rates.
#[test]
fn latency_dominates_estimate() {
    let model = StaleReadModel::new(5);
    let prop = PropagationModel::default();
    for rates in [(100.0, 50.0), (1000.0, 500.0), (10_000.0, 5_000.0)] {
        let p_low =
            model.stale_probability(rates.0, rates.1, prop.propagation_time_secs(0.2, 1024.0));
        let p_high =
            model.stale_probability(rates.0, rates.1, prop.propagation_time_secs(40.0, 1024.0));
        assert!(p_high >= p_low);
        assert!(
            p_high > 0.9,
            "40ms latency should push the estimate close to its ceiling"
        );
    }
}

//! The queueing-aware staleness model: the write stage of each replica as an
//! M/G/1 queue, and the update propagation time `Tp` as a *distribution*
//! rather than a single number.
//!
//! ## Why a queue model
//!
//! The scalar model of [`crate::staleness`] folds the replica-side mutation
//! backlog straight into `Tp`. That is the right thing to do while the write
//! stage is far from saturation (the backlog then *is* extra propagation
//! delay), but past the saturation knee it conflates two situations the
//! controller must tell apart:
//!
//! * **High but stable backlog.** Every replica's mutation queue is equally
//!   long. A write reaches its first replica late — but it reaches the *other*
//!   replicas essentially at the same time, so the window during which a
//!   partial read can observe stale data is still only the *spread* of the
//!   per-replica waits, not their absolute size. Escalating to near-ALL reads
//!   here costs the entire Figure 5(c)/(d) throughput gap for no staleness
//!   benefit.
//! * **Diverging queue.** Arrivals exceed the service capacity (`ρ ≥ 1`) and
//!   the backlog grows without bound, or individual replicas fall behind
//!   their peers. The propagation window really is exploding and strong
//!   consistency is the only safe answer.
//!
//! The write stage of a replica is modelled as an M/G/1 queue (Poisson
//! mutation arrivals — the same assumption the paper makes for client writes —
//! with a general service-time distribution summarised by its mean and squared
//! coefficient of variation). The Pollaczek–Khinchine formulas give the mean
//! and variance of the queueing delay; the monitored cross-replica backlog
//! dispersion grounds the model in what the cluster actually does.
//!
//! ## The `Tp` distribution
//!
//! `Tp = T_net + D`, where `T_net` is the deterministic network-transfer
//! component (the old model's `Tp`) and `D ≥ 0` is the *queue-wait spread*:
//! the extra time the laggard replicas need beyond the replica whose
//! acknowledgement completed the write. `D` is modelled as a Gamma variable
//! with fixed shape and a mean proportional to the standard deviation of the
//! per-replica queue waits (the expected range of `N` i.i.d. waits is
//! `≈ κ_N · σ` with `κ_N` the range coefficient). The stale-read probability
//! then *integrates* the closed form over `D` instead of point-estimating it;
//! the integral has an exact expression through the Laplace transform of the
//! Gamma distribution, so no numerics are involved.
//!
//! With zero queue-wait variance the distribution collapses to a point mass
//! and every formula reduces exactly to the closed form of
//! [`crate::staleness::StaleReadModel`].

use serde::{Deserialize, Serialize};

/// An M/G/1 queue: Poisson arrivals at `arrival_rate`, service times with the
/// given mean and squared coefficient of variation (SCV; 1 = exponential,
/// 0 = deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MG1Queue {
    /// Arrival rate λ (jobs per second).
    pub arrival_rate: f64,
    /// Mean service time E\[S\] in seconds.
    pub service_mean_secs: f64,
    /// Squared coefficient of variation of the service time,
    /// `c² = Var[S] / E[S]²`.
    pub service_scv: f64,
}

impl MG1Queue {
    /// Creates a queue description; negative inputs are clamped to zero.
    pub fn new(arrival_rate: f64, service_mean_secs: f64, service_scv: f64) -> Self {
        MG1Queue {
            arrival_rate: arrival_rate.max(0.0),
            service_mean_secs: service_mean_secs.max(0.0),
            service_scv: service_scv.max(0.0),
        }
    }

    /// The offered load `ρ = λ · E[S]`.
    pub fn utilization(&self) -> f64 {
        self.arrival_rate * self.service_mean_secs
    }

    /// True if the queue is stable (`ρ < 1`), i.e. the expected wait is finite.
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Mean waiting time in queue (Pollaczek–Khinchine):
    /// `Wq = ρ (1 + c²) / 2 · E[S] / (1 - ρ)`.
    /// Returns `f64::INFINITY` for an unstable queue.
    pub fn mean_wait_secs(&self) -> f64 {
        let rho = self.utilization();
        if rho <= 0.0 || self.service_mean_secs <= 0.0 {
            return 0.0;
        }
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        rho * (1.0 + self.service_scv) / 2.0 * self.service_mean_secs / (1.0 - rho)
    }

    /// Variance of the waiting time in queue. Uses the M/G/1 transform moments
    /// `E[Wq²] = 2·Wq² + λ·E[S³] / (3 (1 - ρ))`, with the third service moment
    /// taken from a Gamma fit to (mean, SCV):
    /// `E[S³] = E[S]³ (1 + c²)(1 + 2c²)`.
    /// Returns `f64::INFINITY` for an unstable queue.
    pub fn wait_variance_secs2(&self) -> f64 {
        let rho = self.utilization();
        if rho <= 0.0 || self.service_mean_secs <= 0.0 {
            return 0.0;
        }
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        let wq = self.mean_wait_secs();
        let m = self.service_mean_secs;
        let c2 = self.service_scv;
        let s3 = m * m * m * (1.0 + c2) * (1.0 + 2.0 * c2);
        let second_moment = 2.0 * wq * wq + self.arrival_rate * s3 / (3.0 * (1.0 - rho));
        (second_moment - wq * wq).max(0.0)
    }

    /// [`MG1Queue::mean_wait_secs`] clamped to `cap_secs` — the propagation-
    /// window worst case the caller is prepared to reason about. An unstable
    /// queue (`ρ ≥ 1`) reports the cap instead of `f64::INFINITY`: within any
    /// finite observation window the backlog a diverging queue can build is
    /// bounded by the window itself, and a finite value keeps EWMAs, trend
    /// slopes and decision inputs free of `inf - inf = NaN`.
    pub fn mean_wait_secs_saturating(&self, cap_secs: f64) -> f64 {
        let cap = cap_secs.max(0.0);
        let w = self.mean_wait_secs();
        if w.is_finite() {
            w.min(cap)
        } else {
            cap
        }
    }

    /// Standard deviation of the waiting time, clamped to `cap_secs` (see
    /// [`MG1Queue::mean_wait_secs_saturating`] for the saturation rationale).
    pub fn wait_std_secs_saturating(&self, cap_secs: f64) -> f64 {
        let cap = cap_secs.max(0.0);
        let v = self.wait_variance_secs2();
        if v.is_finite() {
            v.sqrt().min(cap)
        } else {
            cap
        }
    }
}

/// One monitoring sweep's view of the write stage, aggregated over replicas.
/// All fields are clamped to be non-negative by consumers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WriteStageObservation {
    /// Replica-write arrival rate *per replica service slot group*, i.e. the
    /// arrival rate one node's mutation stage sees (jobs/s).
    pub arrival_rate_per_replica: f64,
    /// Measured mean mutation service time (milliseconds), normalised by the
    /// per-node service concurrency.
    pub service_mean_ms: f64,
    /// Squared coefficient of variation of the mutation service time.
    pub service_scv: f64,
    /// Mean pending-mutation wait per replica (milliseconds) — the absolute
    /// backlog (`nodetool tpstats` analogue).
    pub backlog_mean_ms: f64,
    /// Variance of the pending-mutation wait *across* replicas (ms²) — the
    /// queue-wait dispersion that actually widens the staleness window.
    pub backlog_variance_ms2: f64,
    /// Rate of change of the mean backlog (ms of backlog per second of run
    /// time). A sustained positive trend at high utilization means the queue
    /// is diverging rather than merely full.
    pub backlog_trend_ms_per_s: f64,
    /// M/G/1 *predicted* mean queue wait (milliseconds), derived by the
    /// monitor from the arrival/service telemetry of the same sweep via the
    /// saturating accessors — always finite, even at ρ ≥ 1. Zero when the
    /// backend publishes no prediction.
    pub predicted_wait_ms: f64,
    /// Rate of change of the predicted wait (ms per second of run time). The
    /// prediction moves one monitoring period before the measured backlog, so
    /// its trend is the earliest divergence signal available.
    pub predicted_wait_trend_ms_per_s: f64,
}

/// Configuration of the proactive (predicted-wait) control path.
///
/// Disabled by default; with `enabled = false` every estimate is bit-for-bit
/// identical to the reactive model — the proactive terms are never even
/// computed, so no `0·∞` arithmetic can leak a NaN into the reactive path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProactiveConfig {
    /// Master switch. Off ⇒ the reactive estimate, byte-identically.
    pub enabled: bool,
    /// Weight `[0, 1]` of the predicted wait dispersion in the blended spread
    /// once the prediction is fully confident. The effective weight is this
    /// value scaled by the confidence ramp, so the blend always discounts
    /// toward the measured (reactive) dispersion when telemetry is thin.
    pub prediction_weight: f64,
    /// Utilization below which the prediction carries zero confidence: an
    /// almost-idle M/G/1 fit says nothing the measured dispersion doesn't.
    pub min_utilization: f64,
    /// Saturation cap (seconds) for the predicted wait moments — the
    /// propagation-window worst case. Caps the P-K wait near ρ = 1 and
    /// replaces the infinite wait at ρ ≥ 1 (see
    /// [`MG1Queue::mean_wait_secs_saturating`]).
    pub horizon_secs: f64,
}

impl Default for ProactiveConfig {
    fn default() -> Self {
        ProactiveConfig {
            enabled: false,
            prediction_weight: 0.5,
            min_utilization: 0.3,
            horizon_secs: 1.0,
        }
    }
}

impl ProactiveConfig {
    /// The default knobs with the master switch on.
    pub fn enabled() -> Self {
        ProactiveConfig {
            enabled: true,
            ..ProactiveConfig::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.prediction_weight) {
            return Err("prediction_weight must be within [0, 1]".into());
        }
        if !(0.0..1.0).contains(&self.min_utilization) {
            return Err("min_utilization must be within [0, 1)".into());
        }
        if self.horizon_secs <= 0.0 {
            return Err("horizon_secs must be positive".into());
        }
        Ok(())
    }

    /// Confidence `[0, 1]` of the M/G/1 prediction for the given queue fit.
    ///
    /// Zero when the telemetry is sparse (no arrivals or no measured service
    /// time), when the fit is below `min_utilization`, or at ρ ≥ 1 — there
    /// the P-K formulas no longer describe a steady state, so the magnitude
    /// discounts fully toward the reactive estimate (the *divergence flag*
    /// still fires; only the blended spread falls back). In between the
    /// confidence ramps linearly from `min_utilization` to 1.
    pub fn confidence(&self, queue: &MG1Queue) -> f64 {
        if queue.arrival_rate <= 0.0 || queue.service_mean_secs <= 0.0 {
            return 0.0;
        }
        let rho = queue.utilization();
        if rho >= 1.0 {
            return 0.0;
        }
        ((rho - self.min_utilization) / (1.0 - self.min_utilization)).clamp(0.0, 1.0)
    }
}

/// The queueing-aware staleness model configuration.
///
/// `spread_fraction` plays the same role for queueing delay that
/// [`crate::staleness::PropagationModel::latency_fraction`] plays for network
/// latency: writes are acknowledged by the *first* replica to apply them, so
/// only a calibrated fraction of the measured dispersion contributes to the
/// window during which the remaining replicas lag. The default of 1.0 is the
/// conservative interpretation; the experiment harness calibrates it per
/// platform exactly like the latency fraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingModel {
    /// Fraction of the measured queue-wait dispersion entering the staleness
    /// window (calibration knob, `[0, 1]`).
    pub spread_fraction: f64,
    /// Gamma shape of the spread distribution `D`. Smaller values model a
    /// heavier-tailed spread; the mean-to-variance relation is
    /// `Var[D] = E[D]² / shape`.
    pub spread_shape: f64,
    /// Utilization above which a sustained backlog growth is interpreted as a
    /// diverging queue.
    pub divergence_utilization: f64,
    /// Relative backlog growth per second (fraction of the current backlog,
    /// floored by one service time) above which the queue counts as diverging
    /// when utilization is also high.
    pub divergence_growth: f64,
}

impl Default for QueueingModel {
    fn default() -> Self {
        QueueingModel {
            spread_fraction: 1.0,
            spread_shape: 2.0,
            divergence_utilization: 0.9,
            divergence_growth: 1.0,
        }
    }
}

impl QueueingModel {
    /// A model using only `spread_fraction` of the measured queue-wait
    /// dispersion (the analogue of
    /// [`crate::staleness::PropagationModel::differential`]).
    pub fn differential(spread_fraction: f64) -> Self {
        QueueingModel {
            spread_fraction: spread_fraction.clamp(0.0, 1.0),
            ..QueueingModel::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.spread_fraction) {
            return Err("spread_fraction must be within [0, 1]".into());
        }
        if self.spread_shape <= 0.0 {
            return Err("spread_shape must be positive".into());
        }
        if self.divergence_utilization < 0.0 {
            return Err("divergence_utilization must be non-negative".into());
        }
        if self.divergence_growth <= 0.0 {
            return Err("divergence_growth must be positive".into());
        }
        Ok(())
    }

    /// The expected min-to-max spread of `n` i.i.d. exponential waits in units
    /// of their standard deviation: `κ_n = Σ_{i=1}^{n-1} 1/i` (the harmonic
    /// range coefficient; 0 for n ≤ 1).
    pub fn range_coefficient(n: usize) -> f64 {
        (1..n).map(|i| 1.0 / i as f64).sum()
    }

    /// Builds the staleness estimate for one monitoring sweep.
    ///
    /// * `obs` — the monitored write-stage signals;
    /// * `tp_network_secs` — the deterministic network-transfer component of
    ///   `Tp` (the old model's entire `Tp`);
    /// * `replication_factor` — `N`, used for the range coefficient.
    pub fn estimate(
        &self,
        obs: &WriteStageObservation,
        tp_network_secs: f64,
        replication_factor: usize,
    ) -> StalenessEstimate {
        self.estimate_with_prediction(
            obs,
            tp_network_secs,
            replication_factor,
            &ProactiveConfig::default(),
        )
    }

    /// [`QueueingModel::estimate`] with the proactive (predicted-wait) path.
    ///
    /// With `proactive.enabled = false` this is byte-for-byte the reactive
    /// estimate (apart from carrying the observation's predicted wait along
    /// as an informational field). Enabled, it makes two additions:
    ///
    /// * the spread standard deviation becomes a confidence-weighted blend of
    ///   the *measured* cross-replica dispersion and the M/G/1 *predicted*
    ///   wait dispersion, so the window widens one monitoring period before
    ///   the backlog materialises — and narrows again as soon as the fit
    ///   predicts drain, before the measured backlog has fully cleared;
    /// * divergence additionally fires on predicted signals: ρ ≥ 1 (the fit
    ///   says the queue cannot reach a steady state at all), or high
    ///   utilization with the *predicted* wait growing faster than
    ///   `divergence_growth` times its own magnitude per second.
    pub fn estimate_with_prediction(
        &self,
        obs: &WriteStageObservation,
        tp_network_secs: f64,
        replication_factor: usize,
        proactive: &ProactiveConfig,
    ) -> StalenessEstimate {
        let service_mean_ms = obs.service_mean_ms.max(0.0);
        let queue = MG1Queue::new(
            obs.arrival_rate_per_replica,
            service_mean_ms / 1e3,
            obs.service_scv,
        );
        let utilization = queue.utilization();

        // Queue-wait dispersion: the monitored cross-replica variance is the
        // reactive signal. A backend that cannot measure per-replica backlogs
        // reports zero variance and degrades to the pure network model.
        let sigma_s = (obs.backlog_variance_ms2.max(0.0) / 1e6).sqrt();

        // Proactive blend: mix in the predicted wait dispersion, discounted
        // by the prediction confidence. Guarded so the disabled (and the
        // zero-confidence) path performs *no* extra arithmetic on sigma —
        // `0.0 · ∞` would be NaN, and the reactive estimate must stay
        // bit-identical when the prediction contributes nothing.
        //
        // The blend is directional. A prediction *above* the measurement is
        // the fit seeing arrivals whose waits have not materialised yet —
        // widen ahead of the backlog. A prediction *below* it discounts the
        // measured dispersion only while the fit says the queue is
        // *draining* — the predicted wait falling faster than
        // `divergence_growth` times its own magnitude, the mirror image of
        // the divergence criterion, so sweep-to-sweep jitter never counts.
        // In a steady state a small predicted wait is not evidence against
        // the measured cross-replica spread: the aggregate M/G/1 fit is
        // blind to a single laggard replica.
        let mut spread_sigma = sigma_s;
        let mut predicted_diverging = false;
        if proactive.enabled {
            let weight = proactive.prediction_weight.clamp(0.0, 1.0) * proactive.confidence(&queue);
            if weight > 0.0 {
                let sigma_pred = queue.wait_std_secs_saturating(proactive.horizon_secs);
                let drain_floor = obs.predicted_wait_ms.max(service_mean_ms).max(1e-9);
                let draining =
                    obs.predicted_wait_trend_ms_per_s < -self.divergence_growth * drain_floor;
                if sigma_pred >= sigma_s || draining {
                    spread_sigma = (1.0 - weight) * sigma_s + weight * sigma_pred;
                }
            }
            // Predicted divergence: an unstable fit is diverging by
            // definition; below that, a predicted wait growing faster than
            // its own magnitude (floored by one service time) at high
            // utilization flags the escalation one sweep before the measured
            // backlog trend can.
            if utilization >= 1.0 {
                predicted_diverging = true;
            } else if utilization >= self.divergence_utilization {
                let predicted_floor = obs.predicted_wait_ms.max(service_mean_ms).max(1e-9);
                predicted_diverging =
                    obs.predicted_wait_trend_ms_per_s > self.divergence_growth * predicted_floor;
            }
        }

        let kappa = Self::range_coefficient(replication_factor.max(1));
        let spread_mean_secs = self.spread_fraction.clamp(0.0, 1.0) * kappa * spread_sigma;
        let spread_variance_secs2 = spread_mean_secs * spread_mean_secs / self.spread_shape;

        // Divergence: high utilization plus a backlog growing faster than
        // `divergence_growth` times its own magnitude per second (floored by
        // one service time so an empty queue ramping up still registers).
        let growth_floor = obs.backlog_mean_ms.max(service_mean_ms).max(1e-9);
        let growing = obs.backlog_trend_ms_per_s > self.divergence_growth * growth_floor;
        let diverging =
            (utilization >= self.divergence_utilization && growing) || predicted_diverging;

        StalenessEstimate {
            tp_network_secs: tp_network_secs.max(0.0),
            queue_wait_secs: obs.backlog_mean_ms.max(0.0) / 1e3,
            spread_mean_secs,
            spread_variance_secs2,
            utilization,
            diverging,
            predicted_wait_secs: obs.predicted_wait_ms.max(0.0) / 1e3,
        }
    }
}

/// The update propagation time as a distribution: a deterministic network
/// component plus a Gamma-distributed queue-wait spread, along with the queue
/// health indicators the policy consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StalenessEstimate {
    /// Deterministic network-transfer component of `Tp` (seconds).
    pub tp_network_secs: f64,
    /// Mean absolute queue wait per replica (seconds) — informational; it does
    /// *not* widen the staleness window (only the spread does).
    pub queue_wait_secs: f64,
    /// Mean of the queue-wait spread `D` (seconds).
    pub spread_mean_secs: f64,
    /// Variance of the queue-wait spread `D` (seconds²).
    pub spread_variance_secs2: f64,
    /// Offered load `ρ` of the write stage.
    pub utilization: f64,
    /// True if the write-stage queue is diverging (unbounded wait): the stale
    /// probability is pinned at its ceiling and the policy should go strong.
    pub diverging: bool,
    /// M/G/1 predicted mean queue wait (seconds), saturated to the
    /// propagation-window worst case — informational like
    /// [`StalenessEstimate::queue_wait_secs`]; the prediction enters the
    /// window through the blended spread, not through this field.
    pub predicted_wait_secs: f64,
}

impl Default for StalenessEstimate {
    fn default() -> Self {
        StalenessEstimate::deterministic(0.0)
    }
}

impl StalenessEstimate {
    /// A point-mass estimate: `Tp = tp_secs` exactly (zero spread). With this
    /// estimate every queueing-aware formula reduces to the scalar closed
    /// form, which is how the legacy scalar path is expressed.
    pub fn deterministic(tp_secs: f64) -> Self {
        StalenessEstimate {
            tp_network_secs: tp_secs.max(0.0),
            queue_wait_secs: 0.0,
            spread_mean_secs: 0.0,
            spread_variance_secs2: 0.0,
            utilization: 0.0,
            diverging: false,
            predicted_wait_secs: 0.0,
        }
    }

    /// The mean of the `Tp` distribution (seconds).
    pub fn tp_mean_secs(&self) -> f64 {
        self.tp_network_secs + self.spread_mean_secs
    }

    /// Tightens the estimate for active anti-entropy repair running at
    /// `rate_per_sec` rounds per second: a lagging replica is healed by
    /// whichever comes first, normal propagation (window `Tp`) or the next
    /// repair round (mean gap `1/ρ`), so the effective mean window is
    /// `Tp / (1 + ρ·Tp)` — the same transform as
    /// `StaleReadModel::stale_probability_with_repair`. Every `Tp` component
    /// is scaled by the common factor (variance by its square), so a
    /// zero-spread estimate reduces exactly to the scalar formula.
    ///
    /// A non-positive rate returns the estimate **unchanged** (same bits) —
    /// repair disabled is provably free. A diverging estimate is also
    /// returned unchanged: periodic repair bounds the *mean* lag, but the
    /// policy's go-strong reaction to an unbounded queue must not be
    /// softened by a background repair promise.
    pub fn with_repair(self, rate_per_sec: f64) -> Self {
        if rate_per_sec <= 0.0 || self.diverging {
            return self;
        }
        let tp = self.tp_mean_secs();
        if tp <= 0.0 {
            return self;
        }
        let factor = 1.0 / (1.0 + rate_per_sec * tp);
        StalenessEstimate {
            tp_network_secs: self.tp_network_secs * factor,
            spread_mean_secs: self.spread_mean_secs * factor,
            spread_variance_secs2: self.spread_variance_secs2 * factor * factor,
            ..self
        }
    }

    /// The Laplace transform `E[e^{-s·Tp}]` of the propagation-time
    /// distribution, exact for the deterministic + Gamma decomposition:
    ///
    /// `E[e^{-s·Tp}] = e^{-s·T_net} · (1 + s·Var[D]/E[D])^{-E[D]²/Var[D]}`
    ///
    /// For zero spread variance the Gamma factor degenerates to
    /// `e^{-s·E[D]}`, recovering the scalar closed form exactly.
    pub fn laplace(&self, s: f64) -> f64 {
        if s <= 0.0 {
            return 1.0;
        }
        let net = (-s * self.tp_network_secs.max(0.0)).exp();
        let m = self.spread_mean_secs.max(0.0);
        let v = self.spread_variance_secs2.max(0.0);
        let spread = if m <= 0.0 {
            1.0
        } else if v <= 0.0 {
            (-s * m).exp()
        } else {
            let shape = m * m / v;
            let x = s * v / m; // s / rate
            (-shape * x.ln_1p()).exp()
        };
        net * spread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    /// `with_repair` at a non-positive rate is the identity (same bits), and
    /// on a deterministic estimate it reproduces the scalar
    /// `Tp / (1 + ρ·Tp)` transform exactly.
    #[test]
    fn with_repair_identity_and_scalar_equivalence() {
        let est = StalenessEstimate {
            tp_network_secs: 0.002,
            spread_mean_secs: 0.001,
            spread_variance_secs2: 5e-7,
            ..StalenessEstimate::default()
        };
        assert_eq!(est.with_repair(0.0), est);
        assert_eq!(est.with_repair(-1.0), est);

        let det = StalenessEstimate::deterministic(0.004);
        let repaired = det.with_repair(50.0);
        let expected = 0.004 / (1.0 + 50.0 * 0.004);
        assert!(close(repaired.tp_mean_secs(), expected, 1e-15));

        // The mean of the full distribution contracts by the same factor.
        let r = est.with_repair(100.0);
        let tp = est.tp_mean_secs();
        assert!(close(r.tp_mean_secs(), tp / (1.0 + 100.0 * tp), 1e-15));
        assert!(r.spread_variance_secs2 < est.spread_variance_secs2);
    }

    /// Repair must not soften the go-strong reaction to a diverging queue.
    #[test]
    fn with_repair_leaves_diverging_estimates_alone() {
        let est = StalenessEstimate {
            diverging: true,
            ..StalenessEstimate::deterministic(0.01)
        };
        assert_eq!(est.with_repair(1000.0), est);
    }

    #[test]
    fn mg1_idle_and_degenerate() {
        let q = MG1Queue::new(0.0, 0.001, 1.0);
        assert_eq!(q.utilization(), 0.0);
        assert!(q.is_stable());
        assert_eq!(q.mean_wait_secs(), 0.0);
        assert_eq!(q.wait_variance_secs2(), 0.0);
        // Negative inputs clamp.
        let q = MG1Queue::new(-5.0, -1.0, -0.5);
        assert_eq!(q.utilization(), 0.0);
    }

    #[test]
    fn mg1_matches_mm1_closed_form() {
        // c² = 1 (exponential service): Wq = ρ/(1-ρ) · E[S].
        let q = MG1Queue::new(500.0, 0.001, 1.0); // ρ = 0.5
        assert!(close(q.mean_wait_secs(), 0.001, 1e-12));
        // M/M/1 wait variance: E[Wq²] = 2ρ E[S]² / (1-ρ)² ... cross-check the
        // transform-moment formula against the known M/M/1 value
        // Var[Wq] = ρ(2-ρ) E[S]²/(1-ρ)².
        let rho: f64 = 0.5;
        let es = 0.001f64;
        let expected = rho * (2.0 - rho) * es * es / ((1.0 - rho) * (1.0 - rho));
        assert!(
            close(q.wait_variance_secs2(), expected, 1e-12),
            "got {} expected {}",
            q.wait_variance_secs2(),
            expected
        );
    }

    #[test]
    fn mg1_deterministic_service_halves_the_wait() {
        let exp = MG1Queue::new(500.0, 0.001, 1.0);
        let det = MG1Queue::new(500.0, 0.001, 0.0);
        assert!(close(
            det.mean_wait_secs(),
            exp.mean_wait_secs() / 2.0,
            1e-12
        ));
    }

    #[test]
    fn mg1_wait_grows_with_utilization_and_diverges() {
        let mut prev = 0.0;
        for rho in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let q = MG1Queue::new(rho * 1000.0, 0.001, 1.0);
            let w = q.mean_wait_secs();
            assert!(w > prev, "rho={rho}");
            assert!(w.is_finite());
            prev = w;
        }
        let unstable = MG1Queue::new(1100.0, 0.001, 1.0);
        assert!(!unstable.is_stable());
        assert_eq!(unstable.mean_wait_secs(), f64::INFINITY);
        assert_eq!(unstable.wait_variance_secs2(), f64::INFINITY);
    }

    #[test]
    fn range_coefficient_is_harmonic() {
        assert_eq!(QueueingModel::range_coefficient(0), 0.0);
        assert_eq!(QueueingModel::range_coefficient(1), 0.0);
        assert_eq!(QueueingModel::range_coefficient(2), 1.0);
        assert!(close(
            QueueingModel::range_coefficient(5),
            1.0 + 0.5 + 1.0 / 3.0 + 0.25,
            1e-12
        ));
    }

    #[test]
    fn default_config_is_valid() {
        assert!(QueueingModel::default().validate().is_ok());
        assert!(QueueingModel::differential(0.02).validate().is_ok());
        assert_eq!(QueueingModel::differential(7.0).spread_fraction, 1.0);
    }

    #[test]
    fn validation_catches_bad_values() {
        let q = QueueingModel {
            spread_fraction: 1.5,
            ..QueueingModel::default()
        };
        assert!(q.validate().is_err());
        let q = QueueingModel {
            spread_shape: 0.0,
            ..QueueingModel::default()
        };
        assert!(q.validate().is_err());
        let q = QueueingModel {
            divergence_growth: 0.0,
            ..QueueingModel::default()
        };
        assert!(q.validate().is_err());
    }

    #[test]
    fn estimate_with_no_queue_signal_is_the_network_model() {
        let est = QueueingModel::default().estimate(&WriteStageObservation::default(), 0.0005, 5);
        assert_eq!(est.tp_network_secs, 0.0005);
        assert_eq!(est.spread_mean_secs, 0.0);
        assert_eq!(est.spread_variance_secs2, 0.0);
        assert!(!est.diverging);
        assert_eq!(est.tp_mean_secs(), 0.0005);
    }

    #[test]
    fn stable_backlog_does_not_widen_the_window() {
        // Huge but perfectly uniform backlog: zero cross-replica variance and
        // a stable queue — the window stays the network component.
        let obs = WriteStageObservation {
            arrival_rate_per_replica: 500.0,
            service_mean_ms: 1.0, // ρ = 0.5
            service_scv: 1.0,
            backlog_mean_ms: 50.0,
            ..Default::default()
        };
        let est = QueueingModel::default().estimate(&obs, 0.0001, 5);
        assert_eq!(est.spread_mean_secs, 0.0);
        assert!(!est.diverging);
        assert!(close(est.queue_wait_secs, 0.05, 1e-12));
    }

    #[test]
    fn cross_replica_variance_widens_the_window() {
        let mut obs = WriteStageObservation {
            arrival_rate_per_replica: 100.0,
            service_mean_ms: 1.0,
            service_scv: 1.0,
            backlog_mean_ms: 5.0,
            ..Default::default()
        };
        let model = QueueingModel::default();
        obs.backlog_variance_ms2 = 1.0;
        let narrow = model.estimate(&obs, 0.0001, 5);
        obs.backlog_variance_ms2 = 9.0;
        let wide = model.estimate(&obs, 0.0001, 5);
        assert!(wide.spread_mean_secs > narrow.spread_mean_secs);
        // spread mean = fraction · κ_5 · σ.
        let kappa = QueueingModel::range_coefficient(5);
        assert!(close(narrow.spread_mean_secs, kappa * 1e-3, 1e-12));
        assert!(close(wide.spread_mean_secs, kappa * 3e-3, 1e-12));
    }

    #[test]
    fn growing_backlog_at_high_utilization_is_diverging() {
        let obs = WriteStageObservation {
            arrival_rate_per_replica: 980.0,
            service_mean_ms: 1.0, // ρ = 0.98
            service_scv: 1.0,
            backlog_mean_ms: 10.0,
            backlog_variance_ms2: 1.0,
            backlog_trend_ms_per_s: 50.0, // growing by 5x its size per second
            ..Default::default()
        };
        let model = QueueingModel::default();
        assert!(model.estimate(&obs, 0.0001, 5).diverging);
        // The same growth at low utilization is a transient, not divergence.
        let calm = WriteStageObservation {
            arrival_rate_per_replica: 100.0,
            service_mean_ms: 1.0,
            ..obs
        };
        assert!(!model.estimate(&calm, 0.0001, 5).diverging);
        // High utilization with a flat backlog is saturated-but-stable.
        let flat = WriteStageObservation {
            backlog_trend_ms_per_s: 0.0,
            ..obs
        };
        assert!(!model.estimate(&flat, 0.0001, 5).diverging);
    }

    #[test]
    fn unstable_queue_with_growth_diverges_but_stays_finite() {
        let obs = WriteStageObservation {
            arrival_rate_per_replica: 2000.0,
            service_mean_ms: 1.0, // ρ = 2
            service_scv: 1.0,
            backlog_mean_ms: 2.0,
            backlog_variance_ms2: 0.5,
            backlog_trend_ms_per_s: 40.0,
            ..Default::default()
        };
        let est = QueueingModel::default().estimate(&obs, 0.0001, 5);
        assert!(est.diverging);
        assert!(est.utilization >= 1.0);
        // The estimate's fields stay finite even though the M/G/1 wait is
        // unbounded (`mean_wait_secs` returns infinity for ρ ≥ 1).
        assert!(est.spread_mean_secs.is_finite());
        assert!(est.tp_mean_secs().is_finite());
    }

    #[test]
    fn laplace_transform_basics() {
        let det = StalenessEstimate::deterministic(0.002);
        assert!(close(det.laplace(1000.0), (-2.0f64).exp(), 1e-15));
        assert_eq!(det.laplace(0.0), 1.0);
        // Gamma spread: matches (1 + s/β)^{-k}.
        let est = StalenessEstimate {
            tp_network_secs: 0.0,
            spread_mean_secs: 0.001,
            spread_variance_secs2: 0.5e-6, // shape 2
            utilization: 0.5,
            ..StalenessEstimate::default()
        };
        let s = 1000.0;
        let expected = (1.0f64 + s * 0.5e-6 / 0.001).powf(-2.0);
        assert!(close(est.laplace(s), expected, 1e-12));
        // More spread variance at the same mean ⇒ larger transform (Jensen).
        let spikier = StalenessEstimate {
            spread_variance_secs2: 2e-6,
            ..est
        };
        assert!(spikier.laplace(s) > est.laplace(s));
    }

    #[test]
    fn saturating_accessors_never_return_inf_or_nan() {
        let cap = 2.5;
        for arrivals in [0.0, 100.0, 500.0, 990.0, 1000.0, 1500.0, 1e9] {
            for scv in [0.0, 1.0, 4.0] {
                let q = MG1Queue::new(arrivals, 0.001, scv);
                let w = q.mean_wait_secs_saturating(cap);
                let s = q.wait_std_secs_saturating(cap);
                assert!(w.is_finite() && (0.0..=cap).contains(&w), "w={w}");
                assert!(s.is_finite() && (0.0..=cap).contains(&s), "s={s}");
                if q.is_stable() && q.mean_wait_secs() <= cap {
                    assert_eq!(w, q.mean_wait_secs());
                }
                if !q.is_stable() {
                    assert_eq!(w, cap);
                    assert_eq!(s, cap);
                }
            }
        }
        // A negative cap clamps to zero rather than going negative.
        let unstable = MG1Queue::new(2000.0, 0.001, 1.0);
        assert_eq!(unstable.mean_wait_secs_saturating(-1.0), 0.0);
    }

    #[test]
    fn saturated_waits_mix_into_running_statistics_without_nan() {
        // The regression the saturating accessors exist for: an EWMA and a
        // difference-based trend fed across the stability boundary must stay
        // finite (`inf - inf` and `0 · inf` both poison them as NaN).
        let cap = 5.0;
        let mut ewma = 0.0;
        let mut prev = 0.0;
        for arrivals in [800.0, 950.0, 1000.0, 1200.0, 900.0, 400.0] {
            let q = MG1Queue::new(arrivals, 0.001, 1.0);
            let w = q.mean_wait_secs_saturating(cap);
            ewma = 0.7 * ewma + 0.3 * w;
            let trend = w - prev;
            prev = w;
            assert!(ewma.is_finite());
            assert!(trend.is_finite());
        }
    }

    #[test]
    fn proactive_config_validation() {
        assert!(ProactiveConfig::default().validate().is_ok());
        assert!(ProactiveConfig::enabled().validate().is_ok());
        assert!(ProactiveConfig::enabled().enabled);
        let bad = ProactiveConfig {
            prediction_weight: 1.5,
            ..ProactiveConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ProactiveConfig {
            min_utilization: 1.0,
            ..ProactiveConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ProactiveConfig {
            horizon_secs: 0.0,
            ..ProactiveConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn prediction_confidence_ramps_and_discounts() {
        let p = ProactiveConfig::enabled();
        // Sparse telemetry ⇒ zero confidence.
        assert_eq!(p.confidence(&MG1Queue::new(0.0, 0.001, 1.0)), 0.0);
        assert_eq!(p.confidence(&MG1Queue::new(100.0, 0.0, 1.0)), 0.0);
        // Below min_utilization ⇒ zero; above ⇒ ramps toward 1.
        assert_eq!(p.confidence(&MG1Queue::new(100.0, 0.001, 1.0)), 0.0); // ρ=0.1
        let mid = p.confidence(&MG1Queue::new(650.0, 0.001, 1.0)); // ρ=0.65
        let high = p.confidence(&MG1Queue::new(950.0, 0.001, 1.0)); // ρ=0.95
        assert!(mid > 0.0 && mid < high && high < 1.0);
        // At and beyond saturation the magnitude discounts fully.
        assert_eq!(p.confidence(&MG1Queue::new(1000.0, 0.001, 1.0)), 0.0);
        assert_eq!(p.confidence(&MG1Queue::new(5000.0, 0.001, 1.0)), 0.0);
    }

    #[test]
    fn disabled_proactive_estimate_is_bit_identical_to_reactive() {
        let model = QueueingModel::differential(0.02);
        let disabled = ProactiveConfig {
            enabled: false,
            prediction_weight: 0.9, // tuned knobs must be inert when disabled
            min_utilization: 0.0,
            horizon_secs: 10.0,
        };
        for arrivals in [0.0, 100.0, 900.0, 980.0, 1200.0] {
            let obs = WriteStageObservation {
                arrival_rate_per_replica: arrivals,
                service_mean_ms: 1.0,
                service_scv: 1.3,
                backlog_mean_ms: 4.0,
                backlog_variance_ms2: 2.0,
                backlog_trend_ms_per_s: 6.0,
                predicted_wait_ms: 42.0,
                predicted_wait_trend_ms_per_s: 100.0,
            };
            let reactive = model.estimate(&obs, 0.0002, 5);
            let proactive_off = model.estimate_with_prediction(&obs, 0.0002, 5, &disabled);
            assert_eq!(reactive, proactive_off);
        }
    }

    #[test]
    fn proactive_estimate_widens_before_the_backlog_materialises() {
        // High utilization, but the measured cross-replica dispersion has not
        // yet moved: the reactive window stays narrow, the proactive one
        // already widens from the predicted wait dispersion.
        let obs = WriteStageObservation {
            arrival_rate_per_replica: 950.0,
            service_mean_ms: 1.0, // ρ = 0.95
            service_scv: 1.0,
            backlog_mean_ms: 1.0,
            backlog_variance_ms2: 0.0,
            ..Default::default()
        };
        let model = QueueingModel::default();
        let reactive = model.estimate(&obs, 0.0001, 5);
        let proactive =
            model.estimate_with_prediction(&obs, 0.0001, 5, &ProactiveConfig::enabled());
        assert_eq!(reactive.spread_mean_secs, 0.0);
        assert!(proactive.spread_mean_secs > 0.0);
        assert!(proactive.spread_mean_secs.is_finite());
        // And as the fit drains (ρ drops below min_utilization), the
        // proactive window relaxes back to the reactive one immediately.
        let drained = WriteStageObservation {
            arrival_rate_per_replica: 100.0,
            ..obs
        };
        let relaxed =
            model.estimate_with_prediction(&drained, 0.0001, 5, &ProactiveConfig::enabled());
        assert_eq!(relaxed.spread_mean_secs, 0.0);
    }

    #[test]
    fn proactive_estimate_flags_divergence_at_saturation() {
        // ρ ≥ 1 with no measured backlog trend yet: reactive says stable,
        // proactive flags divergence — and every field stays finite.
        let obs = WriteStageObservation {
            arrival_rate_per_replica: 1200.0,
            service_mean_ms: 1.0, // ρ = 1.2
            service_scv: 1.0,
            backlog_mean_ms: 0.5,
            ..Default::default()
        };
        let model = QueueingModel::default();
        assert!(!model.estimate(&obs, 0.0001, 5).diverging);
        let proactive =
            model.estimate_with_prediction(&obs, 0.0001, 5, &ProactiveConfig::enabled());
        assert!(proactive.diverging);
        assert!(proactive.spread_mean_secs.is_finite());
        assert!(proactive.spread_variance_secs2.is_finite());
        assert!(proactive.tp_mean_secs().is_finite());
    }

    #[test]
    fn proactive_estimate_flags_divergence_on_predicted_growth() {
        // ρ in the divergence band, measured backlog still flat, but the
        // *predicted* wait is growing faster than its own magnitude: the
        // proactive path escalates one sweep before the measured trend can.
        let obs = WriteStageObservation {
            arrival_rate_per_replica: 950.0,
            service_mean_ms: 1.0, // ρ = 0.95
            service_scv: 1.0,
            backlog_mean_ms: 10.0,
            backlog_trend_ms_per_s: 0.0,
            predicted_wait_ms: 8.0,
            predicted_wait_trend_ms_per_s: 30.0,
            ..Default::default()
        };
        let model = QueueingModel::default();
        assert!(!model.estimate(&obs, 0.0001, 5).diverging);
        let proactive =
            model.estimate_with_prediction(&obs, 0.0001, 5, &ProactiveConfig::enabled());
        assert!(proactive.diverging);
        // A flat prediction at the same utilization does not escalate.
        let flat = WriteStageObservation {
            predicted_wait_trend_ms_per_s: 0.0,
            ..obs
        };
        let calm = model.estimate_with_prediction(&flat, 0.0001, 5, &ProactiveConfig::enabled());
        assert!(!calm.diverging);
    }

    #[test]
    fn laplace_zero_variance_matches_point_mass() {
        let est = StalenessEstimate {
            tp_network_secs: 0.0005,
            spread_mean_secs: 0.0015,
            ..StalenessEstimate::default()
        };
        assert!(close(est.laplace(700.0), (-700.0f64 * 0.002).exp(), 1e-15));
    }
}

//! Access-rate estimation from monitored counters.
//!
//! The paper's monitoring module periodically reads cumulative read/write
//! counters from every node ("Cassandra Nodetool") and converts the deltas to
//! rates, explicitly accounting for the time the monitoring sweep itself took
//! (§V.A). Two estimators are provided:
//!
//! * [`SlidingWindowRate`] — rates over the last `window` seconds of samples,
//!   the behaviour closest to the paper's periodic collection;
//! * [`EwmaRate`] — an exponentially weighted moving average, which smooths
//!   bursty workloads at the cost of reacting more slowly to phase changes
//!   (used by the ablation benchmark `ablation_rate_estimator`).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A point-in-time estimate of the cluster-wide access rates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RateEstimate {
    /// Read operations per second.
    pub reads_per_sec: f64,
    /// Write/update operations per second.
    pub writes_per_sec: f64,
}

impl RateEstimate {
    /// A zero-rate estimate (idle system).
    pub fn idle() -> Self {
        RateEstimate::default()
    }

    /// True if either rate is non-zero.
    pub fn is_active(&self) -> bool {
        self.reads_per_sec > 0.0 || self.writes_per_sec > 0.0
    }
}

/// A rate estimator; implementations consume `(elapsed, reads, writes)`
/// deltas and produce a [`RateEstimate`].
pub trait RateEstimator {
    /// Records that `reads` read operations and `writes` write operations
    /// were counted over the last `elapsed_secs` seconds.
    fn observe(&mut self, elapsed_secs: f64, reads: u64, writes: u64);
    /// The current estimate.
    fn estimate(&self) -> RateEstimate;
    /// Forgets all history.
    fn reset(&mut self);
}

/// Rates computed over a sliding window of recent samples.
#[derive(Debug, Clone)]
pub struct SlidingWindowRate {
    window_secs: f64,
    samples: VecDeque<(f64, u64, u64)>, // (elapsed, reads, writes)
    total_elapsed: f64,
    total_reads: u64,
    total_writes: u64,
}

impl SlidingWindowRate {
    /// Creates an estimator keeping roughly the last `window_secs` seconds of
    /// samples.
    ///
    /// # Panics
    /// Panics if `window_secs` is not strictly positive.
    pub fn new(window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window must be positive");
        SlidingWindowRate {
            window_secs,
            samples: VecDeque::new(),
            total_elapsed: 0.0,
            total_reads: 0,
            total_writes: 0,
        }
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been observed (or all have expired).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn evict(&mut self) {
        while self.total_elapsed > self.window_secs && self.samples.len() > 1 {
            if let Some((e, r, w)) = self.samples.pop_front() {
                self.total_elapsed -= e;
                self.total_reads -= r;
                self.total_writes -= w;
            }
        }
    }
}

impl RateEstimator for SlidingWindowRate {
    fn observe(&mut self, elapsed_secs: f64, reads: u64, writes: u64) {
        if elapsed_secs <= 0.0 {
            return;
        }
        self.samples.push_back((elapsed_secs, reads, writes));
        self.total_elapsed += elapsed_secs;
        self.total_reads += reads;
        self.total_writes += writes;
        self.evict();
    }

    fn estimate(&self) -> RateEstimate {
        if self.total_elapsed <= 0.0 {
            return RateEstimate::idle();
        }
        RateEstimate {
            reads_per_sec: self.total_reads as f64 / self.total_elapsed,
            writes_per_sec: self.total_writes as f64 / self.total_elapsed,
        }
    }

    fn reset(&mut self) {
        self.samples.clear();
        self.total_elapsed = 0.0;
        self.total_reads = 0;
        self.total_writes = 0;
    }
}

/// Exponentially weighted moving-average rates.
#[derive(Debug, Clone)]
pub struct EwmaRate {
    alpha: f64,
    current: Option<RateEstimate>,
}

impl EwmaRate {
    /// Creates an EWMA estimator with smoothing factor `alpha` in `(0, 1]`.
    /// `alpha = 1` degenerates to "use only the latest sample".
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaRate {
            alpha,
            current: None,
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl RateEstimator for EwmaRate {
    fn observe(&mut self, elapsed_secs: f64, reads: u64, writes: u64) {
        if elapsed_secs <= 0.0 {
            return;
        }
        let sample = RateEstimate {
            reads_per_sec: reads as f64 / elapsed_secs,
            writes_per_sec: writes as f64 / elapsed_secs,
        };
        self.current = Some(match self.current {
            None => sample,
            Some(prev) => RateEstimate {
                reads_per_sec: self.alpha * sample.reads_per_sec
                    + (1.0 - self.alpha) * prev.reads_per_sec,
                writes_per_sec: self.alpha * sample.writes_per_sec
                    + (1.0 - self.alpha) * prev.writes_per_sec,
            },
        });
    }

    fn estimate(&self) -> RateEstimate {
        self.current.unwrap_or_default()
    }

    fn reset(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_estimate() {
        let e = RateEstimate::idle();
        assert!(!e.is_active());
        assert!(RateEstimate {
            reads_per_sec: 1.0,
            writes_per_sec: 0.0
        }
        .is_active());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        SlidingWindowRate::new(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        EwmaRate::new(1.5);
    }

    #[test]
    fn sliding_window_basic_rates() {
        let mut est = SlidingWindowRate::new(10.0);
        est.observe(1.0, 100, 50);
        est.observe(1.0, 300, 150);
        let e = est.estimate();
        assert!((e.reads_per_sec - 200.0).abs() < 1e-9);
        assert!((e.writes_per_sec - 100.0).abs() < 1e-9);
        assert_eq!(est.len(), 2);
    }

    #[test]
    fn sliding_window_evicts_old_samples() {
        let mut est = SlidingWindowRate::new(2.0);
        est.observe(1.0, 1000, 0); // will be evicted
        est.observe(1.0, 0, 0);
        est.observe(1.0, 0, 0);
        let e = est.estimate();
        // Only the last two 1-second samples remain, both with zero ops.
        assert!(e.reads_per_sec < 1e-9, "reads={}", e.reads_per_sec);
        assert_eq!(est.len(), 2);
    }

    #[test]
    fn sliding_window_keeps_at_least_one_sample() {
        let mut est = SlidingWindowRate::new(1.0);
        est.observe(10.0, 500, 100);
        let e = est.estimate();
        assert!((e.reads_per_sec - 50.0).abs() < 1e-9);
        assert_eq!(est.len(), 1);
    }

    #[test]
    fn sliding_window_ignores_nonpositive_elapsed() {
        let mut est = SlidingWindowRate::new(5.0);
        est.observe(0.0, 100, 100);
        est.observe(-1.0, 100, 100);
        assert!(est.is_empty());
        assert_eq!(est.estimate(), RateEstimate::idle());
    }

    #[test]
    fn sliding_window_reset() {
        let mut est = SlidingWindowRate::new(5.0);
        est.observe(1.0, 10, 10);
        est.reset();
        assert!(est.is_empty());
        assert_eq!(est.estimate(), RateEstimate::idle());
    }

    #[test]
    fn ewma_first_sample_is_taken_verbatim() {
        let mut est = EwmaRate::new(0.3);
        est.observe(2.0, 200, 100);
        let e = est.estimate();
        assert!((e.reads_per_sec - 100.0).abs() < 1e-9);
        assert!((e.writes_per_sec - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_smooths_towards_new_samples() {
        let mut est = EwmaRate::new(0.5);
        est.observe(1.0, 100, 0);
        est.observe(1.0, 300, 0);
        let e = est.estimate();
        assert!((e.reads_per_sec - 200.0).abs() < 1e-9);
        // Converges towards a sustained new level.
        for _ in 0..32 {
            est.observe(1.0, 300, 0);
        }
        assert!((est.estimate().reads_per_sec - 300.0).abs() < 0.01);
    }

    #[test]
    fn ewma_alpha_one_tracks_latest() {
        let mut est = EwmaRate::new(1.0);
        est.observe(1.0, 100, 10);
        est.observe(1.0, 700, 70);
        let e = est.estimate();
        assert!((e.reads_per_sec - 700.0).abs() < 1e-9);
        assert!((e.writes_per_sec - 70.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_reset_and_degenerate_input() {
        let mut est = EwmaRate::new(0.5);
        est.observe(0.0, 100, 100);
        assert_eq!(est.estimate(), RateEstimate::idle());
        est.observe(1.0, 10, 10);
        est.reset();
        assert_eq!(est.estimate(), RateEstimate::idle());
    }

    #[test]
    fn window_accessor() {
        assert_eq!(SlidingWindowRate::new(7.5).window_secs(), 7.5);
        assert_eq!(EwmaRate::new(0.25).alpha(), 0.25);
    }
}

//! Per-key (hot-spot) staleness: specialising the queueing-aware estimate
//! with one key's own arrival intensity and mutation backlog.
//!
//! The cluster-wide model of [`crate::staleness`] and [`crate::queueing`]
//! works with aggregate rates, so under skewed (Zipfian / hotspot) key
//! popularity it faces an impossible trade-off: tuned for the hot keys it
//! forces strong reads on the entire keyspace; tuned for the aggregate it
//! lets the hot keys read stale. The per-key layer resolves this by
//! evaluating the *same* closed form with per-key inputs:
//!
//! * the key's own read and write arrival rates (`λr`, `λw` of paper Eq. 6
//!   restricted to the key) — for a hot key the write rate is far above the
//!   per-key average, which raises the staleness-window intensity;
//! * the key's own mutation backlog: mutations queued for the key on its
//!   laggard replica *are* propagation delay for that key, so they widen the
//!   key's `Tp` distribution (they are added to the queue-wait spread rather
//!   than to the deterministic component, preserving the integrate-over-the-
//!   spread behaviour of the global model).
//!
//! Untracked keys fall back to the global estimate unchanged: with a zero
//! per-key backlog the specialised estimate *is* the global estimate, so the
//! layer degrades gracefully on unskewed workloads and on backends without
//! per-key telemetry.

use crate::queueing::StalenessEstimate;
use crate::staleness::StaleReadModel;
use serde::{Deserialize, Serialize};

/// One key's monitored load: the inputs the per-key model specialises on.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KeyLoad {
    /// The key's read arrival rate (reads/second).
    pub read_rate: f64,
    /// The key's write arrival rate (writes/second).
    pub write_rate: f64,
    /// Deepest per-replica pending-mutation backlog for the key (ms).
    pub backlog_ms: f64,
}

/// Configuration of the per-key staleness specialisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerKeyModel {
    /// Fraction of the key's pending-mutation backlog entering the key's
    /// staleness window (`[0, 1]`; the per-key analogue of the propagation
    /// model's `latency_fraction` calibration knob).
    pub backlog_fraction: f64,
    /// Gamma shape used for the key's queue-wait spread when the global
    /// estimate carries no spread of its own to inherit a shape from.
    pub spread_shape: f64,
}

impl Default for PerKeyModel {
    fn default() -> Self {
        PerKeyModel {
            backlog_fraction: 1.0,
            spread_shape: 2.0,
        }
    }
}

impl PerKeyModel {
    /// A model feeding only `backlog_fraction` of the per-key backlog into
    /// the window (the analogue of `PropagationModel::differential`).
    pub fn differential(backlog_fraction: f64) -> Self {
        PerKeyModel {
            backlog_fraction: backlog_fraction.clamp(0.0, 1.0),
            ..PerKeyModel::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.backlog_fraction) {
            return Err("backlog_fraction must be within [0, 1]".into());
        }
        if self.spread_shape <= 0.0 {
            return Err("spread_shape must be positive".into());
        }
        Ok(())
    }

    /// Specialises the global propagation-time distribution for one key: the
    /// key's backlog widens the queue-wait spread; everything else (network
    /// component, utilisation, divergence flag) is inherited. With a zero
    /// backlog contribution the result is exactly the global estimate.
    pub fn specialise(&self, global: &StalenessEstimate, load: &KeyLoad) -> StalenessEstimate {
        let extra_secs = self.backlog_fraction.clamp(0.0, 1.0) * load.backlog_ms.max(0.0) / 1e3;
        if extra_secs <= 0.0 {
            return *global;
        }
        let mean = global.spread_mean_secs.max(0.0) + extra_secs;
        // Keep the global spread's Gamma shape if it has one; otherwise use
        // the configured default (the mean-to-variance relation of a Gamma is
        // `Var = mean² / shape`).
        let shape = if global.spread_mean_secs > 0.0 && global.spread_variance_secs2 > 0.0 {
            global.spread_mean_secs * global.spread_mean_secs / global.spread_variance_secs2
        } else {
            self.spread_shape
        };
        StalenessEstimate {
            spread_mean_secs: mean,
            spread_variance_secs2: mean * mean / shape.max(1e-12),
            ..*global
        }
    }

    /// The key's stale-read probability: the queueing-aware closed form with
    /// the key's own rates over the key's specialised `Tp` distribution.
    pub fn stale_probability(
        &self,
        model: &StaleReadModel,
        global: &StalenessEstimate,
        load: &KeyLoad,
    ) -> f64 {
        let est = self.specialise(global, load);
        model.stale_probability_estimate(load.read_rate.max(0.0), load.write_rate.max(0.0), &est)
    }

    /// The minimal replica count keeping the key's stale-read estimate within
    /// `app_stale_rate` (the per-key counterpart of paper Eq. 8).
    pub fn required_replicas(
        &self,
        model: &StaleReadModel,
        app_stale_rate: f64,
        global: &StalenessEstimate,
        load: &KeyLoad,
    ) -> usize {
        let est = self.specialise(global, load);
        model.required_replicas_estimate(
            app_stale_rate,
            load.read_rate.max(0.0),
            load.write_rate.max(0.0),
            &est,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn global() -> StalenessEstimate {
        StalenessEstimate {
            tp_network_secs: 0.0004,
            queue_wait_secs: 0.002,
            spread_mean_secs: 0.0002,
            spread_variance_secs2: 0.0002f64.powi(2) / 2.0,
            utilization: 0.6,
            diverging: false,
            predicted_wait_secs: 0.0,
        }
    }

    #[test]
    fn default_is_valid_and_clamped() {
        assert!(PerKeyModel::default().validate().is_ok());
        assert_eq!(PerKeyModel::differential(3.0).backlog_fraction, 1.0);
        assert!(PerKeyModel {
            backlog_fraction: -0.1,
            ..PerKeyModel::default()
        }
        .validate()
        .is_err());
        assert!(PerKeyModel {
            spread_shape: 0.0,
            ..PerKeyModel::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn zero_backlog_specialisation_is_the_global_estimate() {
        let m = PerKeyModel::default();
        let g = global();
        let load = KeyLoad {
            read_rate: 120.0,
            write_rate: 80.0,
            backlog_ms: 0.0,
        };
        assert_eq!(m.specialise(&g, &load), g);
        // And the probability at equal rates is exactly the global model's.
        let model = StaleReadModel::new(5);
        assert_eq!(
            m.stale_probability(&model, &g, &load),
            model.stale_probability_estimate(120.0, 80.0, &g)
        );
    }

    #[test]
    fn backlog_widens_the_window_monotonically() {
        let m = PerKeyModel::default();
        let model = StaleReadModel::new(5);
        let g = global();
        let mut prev = -1.0;
        for backlog in [0.0, 0.5, 2.0, 10.0, 50.0] {
            let load = KeyLoad {
                read_rate: 400.0,
                write_rate: 300.0,
                backlog_ms: backlog,
            };
            let p = m.stale_probability(&model, &g, &load);
            assert!(p >= prev, "backlog={backlog} p={p} prev={prev}");
            prev = p;
        }
        assert!(prev > model.stale_probability_estimate(400.0, 300.0, &g));
    }

    #[test]
    fn hotter_keys_need_more_replicas() {
        let m = PerKeyModel::default();
        let model = StaleReadModel::new(5);
        let g = global();
        let cold = KeyLoad {
            read_rate: 5.0,
            write_rate: 2.0,
            backlog_ms: 0.0,
        };
        let hot = KeyLoad {
            read_rate: 900.0,
            write_rate: 700.0,
            backlog_ms: 8.0,
        };
        let x_cold = m.required_replicas(&model, 0.2, &g, &cold);
        let x_hot = m.required_replicas(&model, 0.2, &g, &hot);
        assert!(x_hot > x_cold, "hot={x_hot} cold={x_cold}");
        assert!(x_hot > 1);
    }

    #[test]
    fn backlog_fraction_scales_the_contribution() {
        let g = global();
        let load = KeyLoad {
            read_rate: 300.0,
            write_rate: 250.0,
            backlog_ms: 20.0,
        };
        let full = PerKeyModel::default().specialise(&g, &load);
        let tenth = PerKeyModel::differential(0.1).specialise(&g, &load);
        let none = PerKeyModel::differential(0.0).specialise(&g, &load);
        assert!(full.spread_mean_secs > tenth.spread_mean_secs);
        assert!(tenth.spread_mean_secs > none.spread_mean_secs);
        assert_eq!(none, g);
    }

    #[test]
    fn inherits_the_global_spread_shape_when_present() {
        let g = global(); // shape 2 by construction
        let load = KeyLoad {
            read_rate: 100.0,
            write_rate: 100.0,
            backlog_ms: 5.0,
        };
        let est = PerKeyModel::default().specialise(&g, &load);
        let shape = est.spread_mean_secs * est.spread_mean_secs / est.spread_variance_secs2;
        assert!((shape - 2.0).abs() < 1e-9, "shape = {shape}");
        // Without a global spread, the configured default shape applies.
        let flat = StalenessEstimate {
            spread_mean_secs: 0.0,
            spread_variance_secs2: 0.0,
            ..g
        };
        let est = PerKeyModel {
            spread_shape: 4.0,
            ..PerKeyModel::default()
        }
        .specialise(&flat, &load);
        let shape = est.spread_mean_secs * est.spread_mean_secs / est.spread_variance_secs2;
        assert!((shape - 4.0).abs() < 1e-9, "shape = {shape}");
    }

    #[test]
    fn divergence_is_inherited() {
        let g = StalenessEstimate {
            diverging: true,
            ..global()
        };
        let load = KeyLoad {
            read_rate: 100.0,
            write_rate: 100.0,
            backlog_ms: 3.0,
        };
        let m = PerKeyModel::default();
        assert!(m.specialise(&g, &load).diverging);
        // A diverging queue forces all replicas for a strict tolerance.
        let model = StaleReadModel::new(5);
        assert_eq!(m.required_replicas(&model, 0.0, &g, &load), 5);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let m = PerKeyModel::default();
        let model = StaleReadModel::new(5);
        let g = global();
        let load = KeyLoad {
            read_rate: -5.0,
            write_rate: -3.0,
            backlog_ms: -10.0,
        };
        assert_eq!(m.stale_probability(&model, &g, &load), 0.0);
        assert_eq!(m.required_replicas(&model, 0.5, &g, &load), 1);
    }
}

//! The high-level consistency decision scheme (paper §III).
//!
//! ```text
//! if app_stale_rate >= θ_stale:
//!     choose eventual consistency (consistency level ONE)
//! else:
//!     compute Xn, the number of replicas needed so that the estimated
//!     stale-read rate stays below app_stale_rate, and read at level Xn
//! ```

use crate::queueing::StalenessEstimate;
use crate::staleness::StaleReadModel;
use serde::{Deserialize, Serialize};

/// The outcome of the Harmony decision scheme for the next batch of reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyDecision {
    /// The estimated stale-read rate is already within the tolerated rate:
    /// read from a single replica (consistency level ONE).
    Eventual,
    /// Read from this many replicas to keep the estimate within tolerance.
    Replicas(usize),
}

impl ConsistencyDecision {
    /// The number of replicas a read should contact under this decision.
    pub fn replicas(&self) -> usize {
        match self {
            ConsistencyDecision::Eventual => 1,
            ConsistencyDecision::Replicas(x) => *x,
        }
    }
}

/// Applies the paper's decision scheme.
///
/// * `app_stale_rate` — the fraction of stale reads the application tolerates
///   (0.0 = strong consistency required, 1.0 = anything goes).
/// * `read_rate`, `write_rate` — monitored access rates (operations/second).
/// * `tp_secs` — the estimated update propagation time in seconds.
pub fn decide(
    model: &StaleReadModel,
    app_stale_rate: f64,
    read_rate: f64,
    write_rate: f64,
    tp_secs: f64,
) -> ConsistencyDecision {
    let asr = app_stale_rate.clamp(0.0, 1.0);
    let theta = model.stale_probability(read_rate, write_rate, tp_secs);
    if asr >= theta {
        ConsistencyDecision::Eventual
    } else {
        let xn = model.required_replicas(asr, read_rate, write_rate, tp_secs);
        if xn <= 1 {
            ConsistencyDecision::Eventual
        } else {
            ConsistencyDecision::Replicas(xn)
        }
    }
}

/// The queueing-aware decision scheme: identical control flow to [`decide`],
/// but the stale-read estimate integrates over the propagation-time
/// distribution of a [`StalenessEstimate`] instead of point-estimating `Tp`.
/// With a zero-spread estimate this is exactly [`decide`] at
/// `tp_secs = estimate.tp_mean_secs()`.
pub fn decide_with_estimate(
    model: &StaleReadModel,
    app_stale_rate: f64,
    read_rate: f64,
    write_rate: f64,
    estimate: &StalenessEstimate,
) -> ConsistencyDecision {
    let asr = app_stale_rate.clamp(0.0, 1.0);
    let theta = model.stale_probability_estimate(read_rate, write_rate, estimate);
    if asr >= theta {
        ConsistencyDecision::Eventual
    } else {
        let xn = model.required_replicas_estimate(asr, read_rate, write_rate, estimate);
        if xn <= 1 {
            ConsistencyDecision::Eventual
        } else {
            ConsistencyDecision::Replicas(xn)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerant_application_gets_eventual_consistency() {
        let model = StaleReadModel::new(5);
        // 100% tolerance = archival workload of the paper's example.
        let d = decide(&model, 1.0, 5000.0, 4000.0, 0.01);
        assert_eq!(d, ConsistencyDecision::Eventual);
        assert_eq!(d.replicas(), 1);
    }

    #[test]
    fn idle_system_gets_eventual_consistency() {
        let model = StaleReadModel::new(5);
        assert_eq!(
            decide(&model, 0.0, 0.0, 0.0, 0.0),
            ConsistencyDecision::Eventual
        );
    }

    #[test]
    fn strict_application_under_load_gets_more_replicas() {
        let model = StaleReadModel::new(5);
        let d = decide(&model, 0.05, 2000.0, 1500.0, 0.002);
        match d {
            ConsistencyDecision::Replicas(x) => assert!(x > 1 && x <= 5),
            ConsistencyDecision::Eventual => panic!("expected elevated consistency"),
        }
    }

    #[test]
    fn zero_tolerance_under_load_reads_all_replicas() {
        let model = StaleReadModel::new(5);
        assert_eq!(
            decide(&model, 0.0, 2000.0, 1500.0, 0.002),
            ConsistencyDecision::Replicas(5)
        );
    }

    #[test]
    fn decision_replica_count_is_monotone_in_tolerance() {
        let model = StaleReadModel::new(5);
        let mut prev = usize::MAX;
        for asr in [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let x = decide(&model, asr, 3000.0, 2500.0, 0.0015).replicas();
            assert!(x <= prev, "asr={asr} x={x} prev={prev}");
            prev = x;
        }
    }

    #[test]
    fn decision_is_consistent_with_model_estimate() {
        // Whenever the decision is Replicas(x) with x < N, the resulting
        // estimated stale rate must be within tolerance.
        let model = StaleReadModel::new(5);
        for &(r, w, tp) in &[(500.0, 300.0, 0.001), (4000.0, 3500.0, 0.0025)] {
            for asr in [0.1, 0.2, 0.4, 0.6] {
                let d = decide(&model, asr, r, w, tp);
                let p = model.stale_probability_with_replicas(d.replicas(), r, w, tp);
                if d.replicas() < 5 {
                    assert!(p <= asr + 1e-9, "asr={asr} p={p} d={d:?}");
                }
            }
        }
    }

    #[test]
    fn estimate_decision_matches_scalar_decision_at_zero_spread() {
        let model = StaleReadModel::new(5);
        for &(r, w, tp) in &[(500.0, 300.0, 0.001), (4000.0, 3500.0, 0.0025)] {
            for asr in [0.0, 0.1, 0.4, 1.0] {
                let est = StalenessEstimate::deterministic(tp);
                assert_eq!(
                    decide_with_estimate(&model, asr, r, w, &est),
                    decide(&model, asr, r, w, tp),
                    "asr={asr} r={r} w={w} tp={tp}"
                );
            }
        }
    }

    #[test]
    fn diverging_estimate_decides_strong_for_strict_tolerance() {
        let model = StaleReadModel::new(5);
        let est = StalenessEstimate {
            diverging: true,
            ..StalenessEstimate::deterministic(0.0001)
        };
        assert_eq!(
            decide_with_estimate(&model, 0.0, 2000.0, 1500.0, &est),
            ConsistencyDecision::Replicas(5)
        );
        // Mid-range tolerances get ALL replicas too, not the N-1 the finite
        // intensity ceiling alone would permit: while the queue diverges the
        // real propagation window is unbounded.
        for asr in [0.1, 0.3, 0.6, 0.9] {
            assert_eq!(
                decide_with_estimate(&model, asr, 2000.0, 1500.0, &est),
                ConsistencyDecision::Replicas(5),
                "asr={asr}"
            );
        }
        // A fully tolerant application still reads at ONE.
        assert_eq!(
            decide_with_estimate(&model, 1.0, 2000.0, 1500.0, &est),
            ConsistencyDecision::Eventual
        );
    }

    #[test]
    fn out_of_range_tolerance_is_clamped() {
        let model = StaleReadModel::new(5);
        assert_eq!(
            decide(&model, 7.3, 2000.0, 1500.0, 0.002),
            ConsistencyDecision::Eventual
        );
        assert_eq!(
            decide(&model, -0.5, 2000.0, 1500.0, 0.002),
            ConsistencyDecision::Replicas(5)
        );
    }
}

//! # harmony-model
//!
//! The probabilistic heart of Harmony (CLUSTER 2012, §III-IV): an estimation
//! of the stale-read rate of a quorum-replicated store under eventual
//! consistency, and the computation of the minimal number of replicas `Xn`
//! that must participate in a read to keep the stale-read rate below the rate
//! the application tolerates (`app_stale_rate`).
//!
//! The model's inputs are the ones the paper's monitoring module collects at
//! run time:
//!
//! * the read arrival rate `λr` (reads per second),
//! * the write/update arrival rate (the paper parameterises it as `1/λw`),
//! * the update propagation time `Tp`, itself derived from the inter-replica
//!   network latency and the average write size,
//! * the replication factor `N`.
//!
//! The closed form of the stale-read probability (paper Eq. 6) is
//!
//! ```text
//! Pr(stale) = (N - 1) · (1 - e^{-λr·Tp}) · (1 + λr·λw) / (N · λr · λw)
//! ```
//!
//! and the number of replicas required to keep the estimate below the
//! tolerated rate `ASR` (paper Eq. 8) is
//!
//! ```text
//! Xn ≥ N · ( (1 - e^{-λr·Tp})(1 + λr·λw) - ASR·λr·λw ) / ( (1 - e^{-λr·Tp})(1 + λr·λw) )
//! ```
//!
//! This crate contains no simulation or storage code: it is pure,
//! deterministic math plus the small rate estimators that turn monitored
//! counters into `λr`/`λw`, so it can be embedded both in the simulator and
//! in a real client-side controller.
//!
//! ## Example
//!
//! ```
//! use harmony_model::staleness::{StaleReadModel, PropagationModel};
//! use harmony_model::decision::{decide, ConsistencyDecision};
//!
//! let model = StaleReadModel::new(5); // replication factor 5, as in the paper
//! let tp = PropagationModel::default().propagation_time_secs(0.5, 1024.0);
//! // 1000 reads/s, 800 updates/s, ~0.5 ms latency:
//! let p = model.stale_probability(1000.0, 800.0, tp);
//! assert!(p > 0.0 && p <= 1.0);
//!
//! // Application tolerates 20% stale reads: how many replicas must a read touch?
//! match decide(&model, 0.20, 1000.0, 800.0, tp) {
//!     ConsistencyDecision::Eventual => println!("consistency level ONE"),
//!     ConsistencyDecision::Replicas(x) => println!("consistency level {x}"),
//! }
//! ```

pub mod decision;
pub mod perkey;
pub mod poisson;
pub mod queueing;
pub mod rates;
pub mod staleness;

pub use decision::{decide, decide_with_estimate, ConsistencyDecision};
pub use perkey::{KeyLoad, PerKeyModel};
pub use queueing::{
    MG1Queue, ProactiveConfig, QueueingModel, StalenessEstimate, WriteStageObservation,
};
pub use rates::{EwmaRate, RateEstimate, SlidingWindowRate};
pub use staleness::{PropagationModel, StaleReadModel};

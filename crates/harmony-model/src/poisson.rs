//! Small probability-theory helpers used by the derivation of the stale-read
//! model (paper §IV.1): exponential and Gamma (Erlang) distributions arising
//! from Poisson arrival processes.
//!
//! The paper models read and write arrivals as Poisson processes; the waiting
//! time between arrivals is then exponential, and the arrival time of the
//! i-th write is Gamma(i, λ)-distributed. These helpers are used by the
//! numerical cross-check of the closed-form probability (Eq. 6) and by tests.

/// The exponential probability density `λ e^{-λ x}` for `x ≥ 0`.
pub fn exponential_pdf(rate: f64, x: f64) -> f64 {
    if x < 0.0 || rate <= 0.0 {
        0.0
    } else {
        rate * (-rate * x).exp()
    }
}

/// The exponential cumulative distribution `1 - e^{-λ x}` for `x ≥ 0`.
pub fn exponential_cdf(rate: f64, x: f64) -> f64 {
    if x <= 0.0 || rate <= 0.0 {
        0.0
    } else {
        1.0 - (-rate * x).exp()
    }
}

/// Natural logarithm of the Gamma function, Lanczos approximation
/// (g = 7, n = 9 coefficients). Accurate to ~15 significant digits for
/// positive arguments, which is ample for Erlang shape parameters.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // Lanczos coefficients, quoted exactly
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The Gamma (Erlang when `shape` is integral) probability density with shape
/// `k` and rate `λ`: `λ^k x^{k-1} e^{-λx} / Γ(k)`.
pub fn gamma_pdf(shape: f64, rate: f64, x: f64) -> f64 {
    if x < 0.0 || shape <= 0.0 || rate <= 0.0 {
        return 0.0;
    }
    if x == 0.0 {
        return if shape < 1.0 {
            f64::INFINITY
        } else if shape == 1.0 {
            rate
        } else {
            0.0
        };
    }
    let log_pdf = shape * rate.ln() + (shape - 1.0) * x.ln() - rate * x - ln_gamma(shape);
    log_pdf.exp()
}

/// The regularised lower incomplete Gamma function `P(shape, rate·x)`, i.e.
/// the Gamma CDF. Uses the series expansion for small arguments and the
/// continued fraction for large ones (Numerical-Recipes-style split).
pub fn gamma_cdf(shape: f64, rate: f64, x: f64) -> f64 {
    if x <= 0.0 || shape <= 0.0 || rate <= 0.0 {
        return 0.0;
    }
    let a = shape;
    let z = rate * x;
    if z < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= z / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (-z + a * z.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for the upper incomplete gamma, then complement.
        let mut b = z + 1.0 - a;
        let mut c = 1e308;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-z + a * z.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// The probability mass function of a Poisson distribution with mean `mu`.
pub fn poisson_pmf(mu: f64, k: u64) -> f64 {
    if mu <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    (kf * mu.ln() - mu - ln_gamma(kf + 1.0)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn exponential_basics() {
        assert_eq!(exponential_pdf(2.0, -1.0), 0.0);
        assert!(close(exponential_pdf(2.0, 0.0), 2.0, 1e-12));
        assert!(close(
            exponential_cdf(1.0, 1.0),
            1.0 - (-1.0f64).exp(),
            1e-12
        ));
        assert_eq!(exponential_cdf(1.0, 0.0), 0.0);
        assert_eq!(exponential_cdf(0.0, 1.0), 0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        for (n, fact) in [
            (1u32, 1.0f64),
            (2, 1.0),
            (3, 2.0),
            (4, 6.0),
            (5, 24.0),
            (6, 120.0),
        ] {
            assert!(close(ln_gamma(n as f64), fact.ln(), 1e-12), "n = {n}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn gamma_pdf_shape_one_is_exponential() {
        for x in [0.1, 0.5, 1.0, 3.0] {
            assert!(close(
                gamma_pdf(1.0, 2.0, x),
                exponential_pdf(2.0, x),
                1e-12
            ));
        }
        assert_eq!(gamma_pdf(1.0, 2.0, 0.0), 2.0);
        assert_eq!(gamma_pdf(3.0, 2.0, 0.0), 0.0);
    }

    #[test]
    fn gamma_cdf_shape_one_is_exponential() {
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!(close(
                gamma_cdf(1.0, 2.0, x),
                exponential_cdf(2.0, x),
                1e-10
            ));
        }
    }

    #[test]
    fn gamma_cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let v = gamma_cdf(3.0, 1.5, x);
            assert!((0.0..=1.0).contains(&v));
            assert!(v + 1e-12 >= prev);
            prev = v;
        }
        assert!(gamma_cdf(3.0, 1.5, 100.0) > 0.999999);
    }

    #[test]
    fn erlang_cdf_matches_poisson_tail() {
        // For integer shape k: GammaCDF(k, λ, x) = P(Poisson(λx) >= k).
        let k = 4u64;
        let lambda = 2.0;
        let x = 1.7;
        let mu = lambda * x;
        let poisson_tail: f64 = 1.0 - (0..k).map(|i| poisson_pmf(mu, i)).sum::<f64>();
        assert!(close(gamma_cdf(k as f64, lambda, x), poisson_tail, 1e-10));
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let mu = 3.5;
        let total: f64 = (0..200).map(|k| poisson_pmf(mu, k)).sum();
        assert!(close(total, 1.0, 1e-12));
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
    }

    #[test]
    fn gamma_pdf_integrates_to_cdf() {
        // Trapezoidal integration of the pdf should match the cdf.
        let (shape, rate) = (2.5, 1.3);
        let upper = 4.0;
        let steps = 40_000;
        let h = upper / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            let x0 = i as f64 * h;
            let x1 = x0 + h;
            integral += 0.5 * h * (gamma_pdf(shape, rate, x0) + gamma_pdf(shape, rate, x1));
        }
        assert!(close(integral, gamma_cdf(shape, rate, upper), 1e-4));
    }
}

//! The stale-read probability estimator (paper Eq. 1-6) and the replica-count
//! computation (paper Eq. 7-8).
//!
//! ## Notation
//!
//! The paper models read and write arrivals as Poisson processes. Reads arrive
//! at rate `λr`; writes are parameterised by `λw` such that the write arrival
//! rate is `1/λw` (the inversion is purely to simplify the algebra in the
//! paper, and we keep it internally so the implemented formulas are literally
//! the published ones). The public API takes plain *rates* — reads per second
//! and writes per second — because that is what a monitoring module measures.
//!
//! A read that starts within the propagation window `[Xw, Xw + Tp]` of some
//! write may observe a replica the write has not reached yet; with `X`
//! replicas involved in the read out of `N` total, the probability that the
//! read hits only not-yet-updated replicas is `(N - X)/N` in the paper's
//! single-stale-replica approximation.

use crate::poisson::{exponential_cdf, gamma_pdf};
use crate::queueing::StalenessEstimate;
use serde::{Deserialize, Serialize};

/// Debug-assert that model inputs are physical (non-negative). Release builds
/// clamp instead (see the `*_saturating` entry points), matching the paper's
/// monitor which can only ever produce non-negative rates — a negative value
/// reaching the model is a caller bug worth catching early in development.
macro_rules! debug_check_rates {
    ($read_rate:expr, $write_rate:expr, $tp_secs:expr) => {
        debug_assert!(
            $read_rate >= 0.0,
            "read_rate must be non-negative, got {}",
            $read_rate
        );
        debug_assert!(
            $write_rate >= 0.0,
            "write_rate must be non-negative, got {}",
            $write_rate
        );
        debug_assert!(
            $tp_secs >= 0.0,
            "tp_secs must be non-negative, got {}",
            $tp_secs
        );
    };
}

/// Models the update propagation time `Tp(Ln, avg_write_size)` (paper §IV):
/// the time for a write to reach all replicas once it has been committed on
/// the first one, as a function of the network latency and the payload size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationModel {
    /// Fixed per-replica processing overhead added on top of the network
    /// latency, in milliseconds (commit-log append, memtable insert, ...).
    pub base_overhead_ms: f64,
    /// Effective network bandwidth used to transfer the write payload, in
    /// megabytes per second.
    pub bandwidth_mb_per_s: f64,
    /// The fraction of the one-way network latency `Ln` that contributes to
    /// the staleness window. With writes acknowledged once the *first*
    /// replica has applied them, the window during which other replicas lag
    /// is the *spread* of the per-replica propagation times rather than the
    /// full latency; a fraction below 1 models that differential. The default
    /// of 1.0 is the paper's conservative interpretation (`Tp` = full
    /// propagation time); the experiment harness calibrates it per platform.
    pub latency_fraction: f64,
}

impl Default for PropagationModel {
    fn default() -> Self {
        // Gigabit-Ethernet-class defaults: 0.1 ms processing overhead and
        // ~100 MB/s effective payload bandwidth.
        PropagationModel {
            base_overhead_ms: 0.1,
            bandwidth_mb_per_s: 100.0,
            latency_fraction: 1.0,
        }
    }
}

impl PropagationModel {
    /// A propagation model using only a fraction of the measured latency for
    /// the staleness window (see [`PropagationModel::latency_fraction`]).
    pub fn differential(latency_fraction: f64, base_overhead_ms: f64) -> Self {
        PropagationModel {
            base_overhead_ms,
            latency_fraction: latency_fraction.clamp(0.0, 1.0),
            ..PropagationModel::default()
        }
    }

    /// Computes `Tp` in **seconds** from the one-way network latency `Ln`
    /// (milliseconds) and the average write size (bytes).
    pub fn propagation_time_secs(&self, latency_ms: f64, avg_write_size_bytes: f64) -> f64 {
        let latency_ms = latency_ms.max(0.0) * self.latency_fraction.clamp(0.0, 1.0);
        let transfer_ms = if self.bandwidth_mb_per_s > 0.0 {
            (avg_write_size_bytes.max(0.0) / (self.bandwidth_mb_per_s * 1e6)) * 1e3
        } else {
            0.0
        };
        (latency_ms + self.base_overhead_ms.max(0.0) + transfer_ms) / 1e3
    }

    /// Same as [`PropagationModel::propagation_time_secs`] but returning
    /// milliseconds, convenient for reporting.
    pub fn propagation_time_ms(&self, latency_ms: f64, avg_write_size_bytes: f64) -> f64 {
        self.propagation_time_secs(latency_ms, avg_write_size_bytes) * 1e3
    }
}

/// The stale-read estimation model for a store with a fixed replication factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaleReadModel {
    replication_factor: usize,
}

impl StaleReadModel {
    /// Creates a model for a store with `replication_factor` replicas per key.
    ///
    /// # Panics
    /// Panics if `replication_factor` is zero.
    pub fn new(replication_factor: usize) -> Self {
        assert!(replication_factor >= 1, "replication factor must be >= 1");
        StaleReadModel { replication_factor }
    }

    /// The replication factor `N`.
    pub fn replication_factor(&self) -> usize {
        self.replication_factor
    }

    /// The quorum size `(N / 2) + 1` (paper §II.B).
    pub fn quorum(&self) -> usize {
        self.replication_factor / 2 + 1
    }

    /// The "staleness window intensity" `A = (1 - e^{-λr·Tp}) (1 + λr·λw) / (λr·λw)`.
    ///
    /// The closed-form probability for a read touching `X` replicas is
    /// `(N - X)/N · A` (clamped to `[0, 1]`); `A` itself can exceed 1 under
    /// heavy write load, which is why the clamping lives in the callers.
    fn intensity(&self, read_rate: f64, write_rate: f64, tp_secs: f64) -> f64 {
        if read_rate <= 0.0 || write_rate <= 0.0 || tp_secs <= 0.0 {
            return 0.0;
        }
        let lambda_r = read_rate;
        let lambda_w = 1.0 / write_rate; // paper parameterisation: write rate = 1/λw
        let product = lambda_r * lambda_w; // = read_rate / write_rate
        (1.0 - (-lambda_r * tp_secs).exp()) * (1.0 + product) / product
    }

    /// Paper Eq. (6): the probability that the next read is stale when reads
    /// are served by a single replica (consistency level ONE / basic eventual
    /// consistency). The result is clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Debug builds panic on negative rates or propagation time (degenerate
    /// inputs indicate a caller bug); release builds clamp them to zero, which
    /// yields a zero probability — use
    /// [`StaleReadModel::stale_probability_saturating`] to get the clamped
    /// behaviour without the assertion.
    pub fn stale_probability(&self, read_rate: f64, write_rate: f64, tp_secs: f64) -> f64 {
        debug_check_rates!(read_rate, write_rate, tp_secs);
        self.stale_probability_saturating(read_rate, write_rate, tp_secs)
    }

    /// The non-asserting variant of [`StaleReadModel::stale_probability`]:
    /// degenerate (negative) inputs are clamped to zero instead of tripping a
    /// debug assertion, yielding a zero probability. This is the release-mode
    /// behaviour of every entry point, made available explicitly for callers
    /// that feed the model unsanitised telemetry.
    pub fn stale_probability_saturating(
        &self,
        read_rate: f64,
        write_rate: f64,
        tp_secs: f64,
    ) -> f64 {
        let n = self.replication_factor as f64;
        let a = self.intensity(read_rate.max(0.0), write_rate.max(0.0), tp_secs.max(0.0));
        (((n - 1.0) / n) * a).clamp(0.0, 1.0)
    }

    /// [`StaleReadModel::stale_probability`] under active anti-entropy
    /// repair running at `repair_rate` rounds per second.
    ///
    /// A lagging replica is healed by whichever comes first: normal update
    /// propagation (window `Tp`) or the next anti-entropy round (mean
    /// inter-round gap `1/ρ`). Combining the two healing rates
    /// `1/Tp_eff = 1/Tp + ρ` gives the effective window
    ///
    /// `Tp_eff = Tp / (1 + ρ·Tp)`
    ///
    /// which is what the closed form sees. A non-positive `repair_rate`
    /// delegates to [`StaleReadModel::stale_probability_saturating`]
    /// **exactly** (same code path, bit-identical result) — repair disabled
    /// is provably free. As `ρ → ∞` the window, and with it the stale
    /// probability, collapses to zero.
    pub fn stale_probability_with_repair(
        &self,
        read_rate: f64,
        write_rate: f64,
        tp_secs: f64,
        repair_rate: f64,
    ) -> f64 {
        if repair_rate <= 0.0 {
            return self.stale_probability_saturating(read_rate, write_rate, tp_secs);
        }
        let tp = tp_secs.max(0.0);
        let tp_eff = tp / (1.0 + repair_rate * tp);
        self.stale_probability_saturating(read_rate, write_rate, tp_eff)
    }

    /// [`StaleReadModel::required_replicas`] under active anti-entropy
    /// repair (see [`StaleReadModel::stale_probability_with_repair`] for the
    /// effective-window derivation). A non-positive `repair_rate` delegates
    /// exactly; repair can only shrink the replica count, never grow it.
    pub fn required_replicas_with_repair(
        &self,
        app_stale_rate: f64,
        read_rate: f64,
        write_rate: f64,
        tp_secs: f64,
        repair_rate: f64,
    ) -> usize {
        if repair_rate <= 0.0 {
            return self.required_replicas(app_stale_rate, read_rate, write_rate, tp_secs);
        }
        let tp = tp_secs.max(0.0);
        let tp_eff = tp / (1.0 + repair_rate * tp);
        self.required_replicas(app_stale_rate, read_rate, write_rate, tp_eff)
    }

    /// The generalisation of Eq. (6) to a read touching `replicas_in_read`
    /// replicas (the `X` of Eq. 7). With `X = N` the probability is zero —
    /// reading all replicas always observes the latest committed write.
    ///
    /// # Panics
    /// Debug builds panic on negative rates or propagation time; release
    /// builds clamp (see [`StaleReadModel::stale_probability`]).
    pub fn stale_probability_with_replicas(
        &self,
        replicas_in_read: usize,
        read_rate: f64,
        write_rate: f64,
        tp_secs: f64,
    ) -> f64 {
        debug_check_rates!(read_rate, write_rate, tp_secs);
        let n = self.replication_factor as f64;
        let x = replicas_in_read.clamp(1, self.replication_factor) as f64;
        let a = self.intensity(read_rate, write_rate, tp_secs);
        (((n - x) / n) * a).clamp(0.0, 1.0)
    }

    /// The queueing-aware counterpart of [`StaleReadModel::stale_probability`]:
    /// `Tp` is a distribution (deterministic network component plus the
    /// Gamma-distributed queue-wait spread of a [`StalenessEstimate`]) and the
    /// closed form is integrated over it exactly via the Laplace transform:
    ///
    /// `A = (1 - E[e^{-λr·Tp}]) (1 + λr·λw) / (λr·λw)`
    ///
    /// With zero spread variance this reduces to the scalar closed form at
    /// `Tp = tp_mean_secs()` exactly. A diverging estimate pins the intensity
    /// at its `Tp → ∞` ceiling.
    pub fn stale_probability_estimate(
        &self,
        read_rate: f64,
        write_rate: f64,
        estimate: &StalenessEstimate,
    ) -> f64 {
        self.stale_probability_with_replicas_estimate(1, read_rate, write_rate, estimate)
    }

    /// [`StaleReadModel::stale_probability_with_replicas`] over a `Tp`
    /// distribution (see [`StaleReadModel::stale_probability_estimate`]).
    pub fn stale_probability_with_replicas_estimate(
        &self,
        replicas_in_read: usize,
        read_rate: f64,
        write_rate: f64,
        estimate: &StalenessEstimate,
    ) -> f64 {
        debug_check_rates!(read_rate, write_rate, estimate.tp_mean_secs());
        let n = self.replication_factor as f64;
        let x = replicas_in_read.clamp(1, self.replication_factor) as f64;
        let a = self.intensity_estimate(read_rate, write_rate, estimate);
        (((n - x) / n) * a).clamp(0.0, 1.0)
    }

    /// [`StaleReadModel::required_replicas`] over a `Tp` distribution: the
    /// minimal `Xn` keeping the integrated stale-read estimate within
    /// `app_stale_rate`. A diverging estimate requires all `N` replicas
    /// unless the tolerance already covers the ceiling.
    pub fn required_replicas_estimate(
        &self,
        app_stale_rate: f64,
        read_rate: f64,
        write_rate: f64,
        estimate: &StalenessEstimate,
    ) -> usize {
        let n = self.replication_factor;
        let asr = app_stale_rate.clamp(0.0, 1.0);
        let a = self.intensity_estimate(read_rate, write_rate, estimate);
        if a <= 0.0 {
            return 1;
        }
        if estimate.diverging {
            // The intensity ceiling is finite, so the closed form alone would
            // still permit fewer than N replicas — not safe while the real
            // propagation window is unbounded. Either the tolerance covers
            // the (clamped) ceiling estimate, or every replica must be read.
            let theta = self.stale_probability_estimate(read_rate, write_rate, estimate);
            return if asr >= theta { 1 } else { n };
        }
        let xn = n as f64 * (1.0 - asr / a);
        if xn <= 1.0 {
            1
        } else {
            (xn.ceil() as usize).min(n)
        }
    }

    /// The staleness window intensity `A` integrated over the `Tp`
    /// distribution (exact, via the Laplace transform of the queue-wait
    /// spread).
    fn intensity_estimate(
        &self,
        read_rate: f64,
        write_rate: f64,
        estimate: &StalenessEstimate,
    ) -> f64 {
        let read_rate = read_rate.max(0.0);
        let write_rate = write_rate.max(0.0);
        if read_rate <= 0.0 || write_rate <= 0.0 {
            return 0.0;
        }
        let product = read_rate / write_rate; // λr·λw in the paper's notation
        let ceiling = (1.0 + product) / product;
        if estimate.diverging {
            // Tp → ∞: the transform vanishes and the intensity hits its cap.
            return ceiling;
        }
        if estimate.tp_mean_secs() <= 0.0 {
            return 0.0;
        }
        (1.0 - estimate.laplace(read_rate)) * ceiling
    }

    /// Paper Eq. (8): the minimal number of replicas `Xn` a read must touch so
    /// that the estimated stale-read rate does not exceed the tolerated rate
    /// `app_stale_rate` (a fraction in `[0, 1]`). The result is clamped to
    /// `[1, N]`.
    pub fn required_replicas(
        &self,
        app_stale_rate: f64,
        read_rate: f64,
        write_rate: f64,
        tp_secs: f64,
    ) -> usize {
        debug_check_rates!(read_rate, write_rate, tp_secs);
        let n = self.replication_factor;
        let asr = app_stale_rate.clamp(0.0, 1.0);
        let a = self.intensity(read_rate, write_rate, tp_secs);
        if a <= 0.0 {
            return 1;
        }
        // Xn >= N (1 - ASR / A); equivalently the paper's
        // N ((1-e^{-λrTp})(1+λrλw) - ASR·λrλw) / ((1-e^{-λrTp})(1+λrλw)).
        let xn = n as f64 * (1.0 - asr / a);
        if xn <= 1.0 {
            1
        } else {
            (xn.ceil() as usize).min(n)
        }
    }

    /// Numerical evaluation of the pre-simplification form (paper Eq. 2):
    ///
    /// `Σ_i ∫ f_w^i(t) (Fr(t + Tp) - Fr(t)) dt · (N-1)/N`
    ///
    /// where `f_w^i` is the Gamma(i, 1/λw) density of the i-th write arrival
    /// and `Fr` the exponential CDF of the next read. Used to cross-validate
    /// the closed form; `max_terms` bounds the series and the integration is
    /// a trapezoidal rule over an automatically chosen horizon.
    pub fn stale_probability_numeric(
        &self,
        read_rate: f64,
        write_rate: f64,
        tp_secs: f64,
        max_terms: usize,
    ) -> f64 {
        if read_rate <= 0.0 || write_rate <= 0.0 || tp_secs <= 0.0 {
            return 0.0;
        }
        let n = self.replication_factor as f64;
        let lambda_r = read_rate;
        let gamma_rate = write_rate; // rate parameter of the i-th write arrival time

        // i = 0 term: the "write" at t = 0 (point mass), contributes Fr(Tp) - Fr(0).
        let mut total = exponential_cdf(lambda_r, tp_secs);

        // Integration horizon: far enough that both the Gamma mass and the
        // exponential read CDF have converged.
        let horizon = (max_terms as f64 / gamma_rate) * 2.0 + 10.0 / lambda_r + 10.0 * tp_secs;
        let steps = 4000usize;
        let h = horizon / steps as f64;

        for i in 1..=max_terms {
            let mut term = 0.0;
            for s in 0..steps {
                let t0 = s as f64 * h;
                let t1 = t0 + h;
                let f0 = gamma_pdf(i as f64, gamma_rate, t0)
                    * (exponential_cdf(lambda_r, t0 + tp_secs) - exponential_cdf(lambda_r, t0));
                let f1 = gamma_pdf(i as f64, gamma_rate, t1)
                    * (exponential_cdf(lambda_r, t1 + tp_secs) - exponential_cdf(lambda_r, t1));
                term += 0.5 * h * (f0 + f1);
            }
            total += term;
            if term < 1e-12 {
                break;
            }
        }
        ((n - 1.0) / n * total).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_factor_panics() {
        StaleReadModel::new(0);
    }

    #[test]
    fn quorum_arithmetic() {
        assert_eq!(StaleReadModel::new(1).quorum(), 1);
        assert_eq!(StaleReadModel::new(3).quorum(), 2);
        assert_eq!(StaleReadModel::new(5).quorum(), 3);
        assert_eq!(StaleReadModel::new(6).quorum(), 4);
    }

    #[test]
    fn degenerate_inputs_give_zero_probability() {
        let m = StaleReadModel::new(5);
        assert_eq!(m.stale_probability(0.0, 100.0, 0.001), 0.0);
        assert_eq!(m.stale_probability(100.0, 0.0, 0.001), 0.0);
        assert_eq!(m.stale_probability(100.0, 100.0, 0.0), 0.0);
    }

    /// The release-mode (clamping) contract for negative inputs, available in
    /// all builds through the explicitly saturating entry point.
    #[test]
    fn negative_inputs_saturate_to_zero_probability() {
        let m = StaleReadModel::new(5);
        assert_eq!(m.stale_probability_saturating(-5.0, 100.0, 0.001), 0.0);
        assert_eq!(m.stale_probability_saturating(100.0, -1.0, 0.001), 0.0);
        assert_eq!(m.stale_probability_saturating(100.0, 100.0, -0.2), 0.0);
        // Non-degenerate inputs agree with the asserting entry point.
        assert_eq!(
            m.stale_probability_saturating(100.0, 100.0, 0.001),
            m.stale_probability(100.0, 100.0, 0.001)
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "read_rate must be non-negative")]
    fn negative_read_rate_panics_in_debug() {
        StaleReadModel::new(5).stale_probability(-5.0, 100.0, 0.001);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "write_rate must be non-negative")]
    fn negative_write_rate_panics_in_debug() {
        StaleReadModel::new(5).stale_probability(100.0, -5.0, 0.001);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "tp_secs must be non-negative")]
    fn negative_tp_panics_in_debug() {
        StaleReadModel::new(5).required_replicas(0.2, 100.0, 100.0, -0.001);
    }

    #[test]
    fn probability_is_clamped_to_unit_interval() {
        let m = StaleReadModel::new(5);
        // Extremely heavy write load and long propagation: raw formula > 1.
        let p = m.stale_probability(10.0, 100_000.0, 0.5);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(p, 1.0);
    }

    #[test]
    fn reading_all_replicas_is_never_stale() {
        let m = StaleReadModel::new(5);
        assert_eq!(
            m.stale_probability_with_replicas(5, 1000.0, 1000.0, 0.01),
            0.0
        );
        // Values above N are clamped to N.
        assert_eq!(
            m.stale_probability_with_replicas(9, 1000.0, 1000.0, 0.01),
            0.0
        );
    }

    #[test]
    fn probability_decreases_with_more_replicas_in_read() {
        let m = StaleReadModel::new(5);
        let mut prev = f64::INFINITY;
        for x in 1..=5 {
            let p = m.stale_probability_with_replicas(x, 500.0, 200.0, 0.002);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn probability_increases_with_propagation_time() {
        let m = StaleReadModel::new(5);
        let p_fast = m.stale_probability(1000.0, 500.0, 0.0002);
        let p_slow = m.stale_probability(1000.0, 500.0, 0.005);
        assert!(p_slow > p_fast, "p_slow={p_slow} p_fast={p_fast}");
    }

    #[test]
    fn probability_increases_with_write_rate() {
        let m = StaleReadModel::new(5);
        let p_light = m.stale_probability(1000.0, 50.0, 0.001);
        let p_heavy = m.stale_probability(1000.0, 2000.0, 0.001);
        assert!(p_heavy > p_light);
    }

    #[test]
    fn matches_hand_computed_value() {
        // N=5, λr=1000/s, write rate 800/s (λw=1/800), Tp=1ms.
        // λrλw = 1.25, A = (1-e^{-1})(1+1.25)/1.25 = 0.6321*1.8 = 1.1378...
        // Pr = 4/5 * A = 0.9103 (clamped below 1).
        let m = StaleReadModel::new(5);
        let p = m.stale_probability(1000.0, 800.0, 0.001);
        let expected = 0.8 * (1.0 - (-1.0f64).exp()) * (1.0 + 1.25) / 1.25;
        assert!(close(p, expected, 1e-12), "p={p} expected={expected}");
    }

    #[test]
    fn low_load_approximation() {
        // For rare reads and writes, Pr ≈ (N-1)/N · Tp · write_rate · ... stays small.
        let m = StaleReadModel::new(3);
        let p = m.stale_probability(1.0, 1.0, 0.001);
        assert!(p < 0.01);
    }

    #[test]
    fn required_replicas_monotone_in_tolerance() {
        let m = StaleReadModel::new(5);
        let (r, w, tp) = (2000.0, 1500.0, 0.002);
        let mut prev = usize::MAX;
        for asr in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let x = m.required_replicas(asr, r, w, tp);
            assert!(x <= prev, "asr={asr}");
            assert!((1..=5).contains(&x));
            prev = x;
        }
    }

    #[test]
    fn required_replicas_satisfies_tolerance() {
        // The returned Xn must actually bring the estimate under ASR
        // (or be the maximum N when even that is not enough).
        let m = StaleReadModel::new(5);
        for &(r, w, tp) in &[
            (100.0, 50.0, 0.0005),
            (1000.0, 800.0, 0.001),
            (5000.0, 4000.0, 0.003),
            (50.0, 2000.0, 0.01),
        ] {
            for asr in [0.05, 0.2, 0.4, 0.6] {
                let x = m.required_replicas(asr, r, w, tp);
                if x < 5 {
                    let p = m.stale_probability_with_replicas(x, r, w, tp);
                    assert!(p <= asr + 1e-9, "x={x} p={p} asr={asr} r={r} w={w} tp={tp}");
                }
            }
        }
    }

    #[test]
    fn zero_tolerance_requires_all_replicas_under_load() {
        let m = StaleReadModel::new(5);
        assert_eq!(m.required_replicas(0.0, 1000.0, 800.0, 0.001), 5);
    }

    #[test]
    fn full_tolerance_needs_one_replica() {
        let m = StaleReadModel::new(5);
        assert_eq!(m.required_replicas(1.0, 1000.0, 800.0, 0.001), 1);
    }

    #[test]
    fn idle_system_needs_one_replica() {
        let m = StaleReadModel::new(5);
        assert_eq!(m.required_replicas(0.0, 0.0, 0.0, 0.0), 1);
    }

    #[test]
    fn numeric_series_matches_closed_form() {
        let m = StaleReadModel::new(5);
        // Moderate load so the series converges quickly and nothing clamps.
        for &(r, w, tp) in &[
            (200.0, 100.0, 0.0005),
            (50.0, 20.0, 0.001),
            (500.0, 100.0, 0.0002),
        ] {
            let closed = m.stale_probability(r, w, tp);
            let numeric = m.stale_probability_numeric(r, w, tp, 60);
            assert!(
                close(closed, numeric, 0.02),
                "closed={closed} numeric={numeric} r={r} w={w} tp={tp}"
            );
        }
    }

    #[test]
    fn deterministic_estimate_reduces_to_closed_form() {
        let m = StaleReadModel::new(5);
        for &(r, w, tp) in &[
            (1000.0, 800.0, 0.001),
            (200.0, 50.0, 0.0004),
            (5000.0, 5000.0, 0.01),
        ] {
            let est = StalenessEstimate::deterministic(tp);
            assert!(
                close(
                    m.stale_probability_estimate(r, w, &est),
                    m.stale_probability(r, w, tp),
                    1e-12
                ),
                "r={r} w={w} tp={tp}"
            );
            for asr in [0.0, 0.2, 0.6] {
                assert_eq!(
                    m.required_replicas_estimate(asr, r, w, &est),
                    m.required_replicas(asr, r, w, tp)
                );
            }
        }
    }

    #[test]
    fn spread_widens_the_estimate() {
        let m = StaleReadModel::new(5);
        let narrow = StalenessEstimate::deterministic(0.0002);
        let wide = StalenessEstimate {
            spread_mean_secs: 0.0005,
            spread_variance_secs2: 0.0005f64.powi(2) / 2.0,
            ..narrow
        };
        let p_narrow = m.stale_probability_estimate(800.0, 600.0, &narrow);
        let p_wide = m.stale_probability_estimate(800.0, 600.0, &wide);
        assert!(p_wide > p_narrow, "wide={p_wide} narrow={p_narrow}");
    }

    #[test]
    fn diverging_estimate_hits_the_ceiling() {
        let m = StaleReadModel::new(5);
        let diverging = StalenessEstimate {
            diverging: true,
            ..StalenessEstimate::deterministic(0.0001)
        };
        // The ceiling equals the Tp → ∞ limit of the closed form.
        let limit = m.stale_probability(800.0, 600.0, 1e6);
        assert_eq!(
            m.stale_probability_estimate(800.0, 600.0, &diverging),
            limit
        );
        // Zero tolerance under a diverging queue reads everything.
        assert_eq!(
            m.required_replicas_estimate(0.0, 800.0, 600.0, &diverging),
            5
        );
        // An idle system is never stale even if flagged diverging.
        assert_eq!(m.stale_probability_estimate(0.0, 600.0, &diverging), 0.0);
    }

    /// Disabled repair (rate ≤ 0) must be *bit-identical* to the plain
    /// closed form — the free-when-disabled contract the controller's
    /// golden pins rely on.
    #[test]
    fn zero_repair_rate_is_bit_identical_to_plain_model() {
        let m = StaleReadModel::new(5);
        for &(r, w, tp) in &[
            (1000.0, 800.0, 0.001),
            (200.0, 50.0, 0.0004),
            (5000.0, 5000.0, 0.01),
            (0.0, 0.0, 0.0),
        ] {
            assert_eq!(
                m.stale_probability_with_repair(r, w, tp, 0.0).to_bits(),
                m.stale_probability_saturating(r, w, tp).to_bits()
            );
            assert_eq!(
                m.stale_probability_with_repair(r, w, tp, -3.0).to_bits(),
                m.stale_probability_saturating(r, w, tp).to_bits()
            );
            for asr in [0.0, 0.2, 0.6] {
                assert_eq!(
                    m.required_replicas_with_repair(asr, r, w, tp, 0.0),
                    m.required_replicas(asr, r, w, tp)
                );
            }
        }
    }

    /// Faster repair rounds tighten the staleness estimate monotonically and
    /// collapse it entirely in the limit.
    #[test]
    fn repair_rate_tightens_the_estimate_monotonically() {
        let m = StaleReadModel::new(5);
        // An operating point where the closed form does not clamp at 1, so
        // strict monotonicity is observable.
        let (r, w, tp) = (1000.0, 800.0, 0.001);
        let mut prev = m.stale_probability_with_repair(r, w, tp, 0.0);
        assert!(prev > 0.0 && prev < 1.0);
        for rate in [100.0, 1000.0, 10_000.0, 100_000.0] {
            let p = m.stale_probability_with_repair(r, w, tp, rate);
            assert!(p < prev, "rate={rate} p={p} prev={prev}");
            prev = p;
        }
        // ρ → ∞: the effective window vanishes.
        assert!(m.stale_probability_with_repair(r, w, tp, 1e12) < 1e-6);
    }

    /// Repair progress can only relax the replica requirement, and under
    /// heavy repair a single replica suffices at any nonzero tolerance.
    #[test]
    fn repair_never_raises_the_replica_requirement() {
        let m = StaleReadModel::new(5);
        for &(r, w, tp) in &[(1000.0, 800.0, 0.001), (5000.0, 4000.0, 0.003)] {
            for asr in [0.05, 0.2, 0.6] {
                let plain = m.required_replicas(asr, r, w, tp);
                for rate in [1.0, 50.0, 5000.0] {
                    let repaired = m.required_replicas_with_repair(asr, r, w, tp, rate);
                    assert!(repaired <= plain, "asr={asr} rate={rate}");
                }
                assert_eq!(m.required_replicas_with_repair(asr, r, w, tp, 1e12), 1);
            }
        }
    }

    #[test]
    fn propagation_model_components() {
        let p = PropagationModel::default();
        // Latency dominates for small writes.
        let tp = p.propagation_time_secs(0.5, 1024.0);
        assert!(tp > 0.0005 && tp < 0.001, "tp={tp}");
        // Larger writes take longer.
        assert!(p.propagation_time_secs(0.5, 1_000_000.0) > tp);
        // Milliseconds variant is consistent.
        assert!(close(p.propagation_time_ms(0.5, 1024.0), tp * 1e3, 1e-12));
    }

    #[test]
    fn propagation_model_degenerate_inputs() {
        let p = PropagationModel {
            base_overhead_ms: 0.0,
            bandwidth_mb_per_s: 0.0,
            latency_fraction: 1.0,
        };
        assert_eq!(p.propagation_time_secs(-1.0, -5.0), 0.0);
        assert_eq!(p.propagation_time_secs(1.0, 1e9), 0.001);
    }

    #[test]
    fn differential_propagation_scales_the_latency_term() {
        let full = PropagationModel::default();
        let diff = PropagationModel::differential(0.1, 0.0);
        let tp_full = full.propagation_time_secs(10.0, 0.0);
        let tp_diff = diff.propagation_time_secs(10.0, 0.0);
        assert!(tp_diff < tp_full);
        assert!((tp_diff - 0.001).abs() < 1e-9, "tp_diff={tp_diff}");
        // The fraction is clamped to [0, 1].
        assert_eq!(
            PropagationModel::differential(5.0, 0.0).propagation_time_secs(1.0, 0.0),
            PropagationModel::differential(1.0, 0.0).propagation_time_secs(1.0, 0.0)
        );
    }
}

//! Harmony running against the live, real-threaded cluster.
//!
//! [`LiveHarmony`] wraps a [`LiveCluster`] together with an
//! [`AdaptiveController`]: callers read and write through it, a monitoring
//! probe reports the live counters and propagation delay, and `adapt()` runs
//! one control iteration (the caller decides the cadence — a background
//! thread, a timer, or explicit calls as in the tests).

use crate::cluster::LiveCluster;
use harmony_adaptive::config::ControllerConfig;
use harmony_adaptive::controller::AdaptiveController;
use harmony_adaptive::policy::ConsistencyPolicy;
use harmony_monitor::probe::ClusterProbe;
use harmony_sim::clock::SimTime;
use harmony_store::consistency::ConsistencyLevel;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::time::Instant;

struct LiveProbe<'a> {
    cluster: &'a LiveCluster,
}

impl ClusterProbe for LiveProbe<'_> {
    fn total_reads(&self) -> u64 {
        self.cluster.counters().reads.load(Ordering::Relaxed)
    }
    fn total_writes(&self) -> u64 {
        self.cluster.counters().writes.load(Ordering::Relaxed)
    }
    fn probe_latency_ms(&self) -> f64 {
        self.cluster.config().propagation_delay.as_secs_f64() * 1e3
    }
    fn node_count(&self) -> usize {
        self.cluster.config().nodes
    }
    fn mutation_backlog_ms(&self) -> f64 {
        self.cluster.mutation_backlog_ms()
    }
    fn replica_backlog_ms(&self) -> Vec<f64> {
        self.cluster.replica_backlog_ms()
    }
    fn write_stage_telemetry(&self) -> Vec<harmony_store::node::WriteStageTelemetry> {
        self.cluster.write_stage_telemetry()
    }
}

/// A live cluster with the Harmony control loop attached.
pub struct LiveHarmony {
    cluster: LiveCluster,
    controller: Mutex<AdaptiveController>,
    started: Instant,
}

impl LiveHarmony {
    /// Wraps a running cluster with an adaptive controller using `policy`.
    pub fn new(
        cluster: LiveCluster,
        controller_config: ControllerConfig,
        policy: Box<dyn ConsistencyPolicy>,
    ) -> Self {
        let rf = cluster.config().replication_factor;
        LiveHarmony {
            cluster,
            controller: Mutex::new(AdaptiveController::new(controller_config, rf, policy)),
            started: Instant::now(),
        }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &LiveCluster {
        &self.cluster
    }

    /// Runs one monitoring + adaptation iteration and returns the read level
    /// subsequent reads will use.
    pub fn adapt(&self) -> ConsistencyLevel {
        let now = SimTime::from_duration(self.started.elapsed());
        let probe = LiveProbe {
            cluster: &self.cluster,
        };
        self.controller.lock().tick(now, &probe)
    }

    /// The consistency level the controller currently prescribes for reads.
    pub fn current_read_level(&self) -> ConsistencyLevel {
        self.controller.lock().current_read_level()
    }

    /// The stale-read estimate from the most recent adaptation, if the policy
    /// computes one.
    pub fn last_estimate(&self) -> Option<f64> {
        self.controller
            .lock()
            .decisions()
            .last()
            .and_then(|d| d.estimate)
    }

    /// Reads through the adaptive level.
    pub fn read(&self, key: &str) -> Option<(Vec<u8>, u64)> {
        let level = self.current_read_level();
        self.cluster.read(key, level)
    }

    /// Writes at the controller's write level (level ONE, as in the paper).
    pub fn write(&self, key: &str, value: Vec<u8>) -> u64 {
        let level = self.controller.lock().current_write_level();
        self.cluster.write(key, value, level)
    }

    /// Shuts the cluster down.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LiveConfig;
    use harmony_adaptive::policy::{HarmonyPolicy, StaticPolicy};
    use std::time::Duration;

    fn live_cluster() -> LiveCluster {
        LiveCluster::start(LiveConfig {
            nodes: 4,
            replication_factor: 3,
            propagation_delay: Duration::from_micros(100),
            jitter: 0.1,
            seed: 3,
        })
    }

    #[test]
    fn starts_at_consistency_one() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.4)),
        );
        assert_eq!(h.current_read_level(), ConsistencyLevel::One);
        h.shutdown();
    }

    #[test]
    fn read_your_own_writes_through_the_wrapper() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(StaticPolicy::Strong),
        );
        h.adapt();
        let v = h.write("k", b"value".to_vec());
        // Static strong policy reads at ALL, which always sees the newest
        // acknowledged version.
        let (value, version) = h.read("k").unwrap();
        assert_eq!(value, b"value");
        assert!(version >= v);
        h.shutdown();
    }

    #[test]
    fn adaptation_raises_level_under_write_pressure() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.05)),
        );
        h.adapt();
        // Hammer the cluster with writes and reads, then adapt.
        for i in 0..400u64 {
            h.write(&format!("k{}", i % 10), vec![1, 2, 3]);
            let _ = h.read(&format!("k{}", i % 10));
        }
        std::thread::sleep(Duration::from_millis(5));
        let level = h.adapt();
        // With a 5% tolerance and real measured rates the estimate exceeds the
        // tolerance and the level rises above ONE.
        assert!(
            level.required_acks(3) > 1,
            "expected elevated level, got {level} (estimate {:?})",
            h.last_estimate()
        );
        assert!(h.last_estimate().unwrap_or(0.0) > 0.05);
        h.shutdown();
    }
}

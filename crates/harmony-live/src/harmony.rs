//! Harmony running against the live, real-threaded cluster.
//!
//! [`LiveHarmony`] wraps a [`LiveCluster`] together with an
//! [`AdaptiveController`]: callers read and write through it, a monitoring
//! probe reports the live counters and propagation delay, and `adapt()` runs
//! one control iteration (the caller decides the cadence — a background
//! thread, a timer, or explicit calls as in the tests).

use crate::cluster::LiveCluster;
use harmony_adaptive::config::ControllerConfig;
use harmony_adaptive::controller::AdaptiveController;
use harmony_adaptive::policy::ConsistencyPolicy;
use harmony_monitor::probe::ClusterProbe;
use harmony_sim::clock::SimTime;
use harmony_store::consistency::ConsistencyLevel;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::time::Instant;

struct LiveProbe<'a> {
    cluster: &'a LiveCluster,
}

impl ClusterProbe for LiveProbe<'_> {
    fn total_reads(&self) -> u64 {
        self.cluster.counters().reads.load(Ordering::Relaxed)
    }
    fn total_writes(&self) -> u64 {
        self.cluster.counters().writes.load(Ordering::Relaxed)
    }
    fn probe_latency_ms(&self) -> f64 {
        self.cluster.config().propagation_delay.as_secs_f64() * 1e3
    }
    fn node_count(&self) -> usize {
        self.cluster.node_count()
    }
    fn live_node_count(&self) -> usize {
        self.cluster.live_node_count()
    }
    fn mutation_backlog_ms(&self) -> f64 {
        self.cluster.mutation_backlog_ms()
    }
    fn replica_backlog_ms(&self) -> Vec<f64> {
        self.cluster.replica_backlog_ms()
    }
    fn write_stage_telemetry(&self) -> Vec<harmony_store::node::WriteStageTelemetry> {
        self.cluster.write_stage_telemetry()
    }
    fn drain_write_key_samples(&self) -> Vec<harmony_store::keys::KeyId> {
        self.cluster.drain_write_key_samples()
    }
    fn key_name(&self, key: harmony_store::keys::KeyId) -> String {
        self.cluster.key_name(key)
    }
    fn fault_epoch(&self) -> u64 {
        self.cluster.fault_state().counters().total()
    }
}

/// A live cluster with the Harmony control loop attached.
pub struct LiveHarmony {
    cluster: LiveCluster,
    controller: Mutex<AdaptiveController>,
    started: Instant,
}

impl LiveHarmony {
    /// Wraps a running cluster with an adaptive controller using `policy`.
    pub fn new(
        cluster: LiveCluster,
        controller_config: ControllerConfig,
        policy: Box<dyn ConsistencyPolicy>,
    ) -> Self {
        let rf = cluster.config().replication_factor;
        LiveHarmony {
            cluster,
            controller: Mutex::new(AdaptiveController::new(controller_config, rf, policy)),
            started: Instant::now(),
        }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &LiveCluster {
        &self.cluster
    }

    /// Runs one monitoring + adaptation iteration and returns the read level
    /// subsequent reads will use.
    pub fn adapt(&self) -> ConsistencyLevel {
        let now = SimTime::from_duration(self.started.elapsed());
        let probe = LiveProbe {
            cluster: &self.cluster,
        };
        self.controller.lock().tick(now, &probe)
    }

    /// The consistency level the controller currently prescribes for reads.
    pub fn current_read_level(&self) -> ConsistencyLevel {
        self.controller.lock().current_read_level()
    }

    /// The stale-read estimate from the most recent adaptation, if the policy
    /// computes one.
    pub fn last_estimate(&self) -> Option<f64> {
        self.controller
            .lock()
            .decisions()
            .last()
            .and_then(|d| d.estimate)
    }

    /// The hot keys currently escalated above the default level (split mode).
    pub fn hot_set(&self) -> Vec<harmony_adaptive::controller::HotKeyDecision> {
        self.controller.lock().hot_set().to_vec()
    }

    /// Applies one fault event to the underlying cluster (the same typed
    /// schedule the simulated cluster consumes drives the threaded one).
    pub fn apply_fault(&self, fault: &harmony_chaos::FaultEvent) {
        self.cluster.apply_fault(fault);
    }

    /// Reads through the adaptive level, consulting the controller's hot set
    /// per operation: an escalated hot key reads at its own (stronger) level,
    /// everything else at the cheap default. A key that has never been
    /// written has no interned id and cannot be hot, so it reads at the
    /// default level.
    pub fn read(&self, key: &str) -> Option<(Vec<u8>, u64)> {
        let controller = self.controller.lock();
        let level = match self.cluster.key_id(key) {
            Some(id) => controller.read_level_for(id),
            None => controller.current_read_level(),
        };
        drop(controller);
        self.cluster.read(key, level)
    }

    /// Writes at the controller's write level (level ONE, as in the paper).
    pub fn write(&self, key: &str, value: Vec<u8>) -> u64 {
        let level = self.controller.lock().current_write_level();
        self.cluster.write(key, value, level)
    }

    /// Shuts the cluster down.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LiveConfig;
    use harmony_adaptive::policy::{HarmonyPolicy, StaticPolicy};
    use std::time::Duration;

    fn live_cluster() -> LiveCluster {
        LiveCluster::start(LiveConfig {
            nodes: 4,
            replication_factor: 3,
            propagation_delay: Duration::from_micros(100),
            jitter: 0.1,
            seed: 3,
        })
    }

    #[test]
    fn starts_at_consistency_one() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.4)),
        );
        assert_eq!(h.current_read_level(), ConsistencyLevel::One);
        h.shutdown();
    }

    #[test]
    fn read_your_own_writes_through_the_wrapper() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(StaticPolicy::Strong),
        );
        h.adapt();
        let v = h.write("k", b"value".to_vec());
        // Static strong policy reads at ALL, which always sees the newest
        // acknowledged version.
        let (value, version) = h.read("k").unwrap();
        assert_eq!(value, b"value");
        assert!(version >= v);
        h.shutdown();
    }

    #[test]
    fn split_mode_escalates_hot_keys_in_the_live_path() {
        let mut config = ControllerConfig::default();
        config.per_key.enabled = true;
        // A small sketch so the warmup threshold is reached within the test.
        config.monitor.hot_key_capacity = 16;
        let h = LiveHarmony::new(live_cluster(), config, Box::new(HarmonyPolicy::new(3, 0.1)));
        h.adapt();
        // 95% of the writes hammer one key; the rest is a cold tail. The hot
        // key's own arrival intensity breaches the 10% tolerance while the
        // residual cold-tail load stays far below it.
        for i in 0..2_000u64 {
            let key = if i % 20 < 19 {
                "hot".to_string()
            } else {
                format!("cold{}", i % 37)
            };
            h.write(&key, vec![1, 2, 3]);
            let _ = h.read(&key);
        }
        std::thread::sleep(Duration::from_millis(5));
        h.adapt();
        let hot = h.hot_set();
        let default_level = h.current_read_level();
        assert!(
            hot.iter().any(|d| d.key == "hot" && d.replicas > 1),
            "expected the hot key escalated above the default, got {hot:?} \
             (default level {default_level})"
        );
        // The cold tail still reads at the cheap default.
        let cold_id = h.cluster().key_id("cold1").unwrap();
        let cold_level = h.controller.lock().read_level_for(cold_id);
        assert_eq!(cold_level, default_level);
        h.shutdown();
    }

    #[test]
    fn adaptation_raises_level_under_write_pressure() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.05)),
        );
        h.adapt();
        // Hammer the cluster with writes and reads, then adapt.
        for i in 0..400u64 {
            h.write(&format!("k{}", i % 10), vec![1, 2, 3]);
            let _ = h.read(&format!("k{}", i % 10));
        }
        std::thread::sleep(Duration::from_millis(5));
        let level = h.adapt();
        // With a 5% tolerance and real measured rates the estimate exceeds the
        // tolerance and the level rises above ONE.
        assert!(
            level.required_acks(3) > 1,
            "expected elevated level, got {level} (estimate {:?})",
            h.last_estimate()
        );
        assert!(h.last_estimate().unwrap_or(0.0) > 0.05);
        h.shutdown();
    }
}

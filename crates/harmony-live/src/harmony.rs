//! Harmony running against the live, real-threaded cluster.
//!
//! [`LiveHarmony`] wraps a [`LiveCluster`] together with an
//! [`AdaptiveController`]: callers read and write through it, a monitoring
//! probe reports the live counters and propagation delay, and `adapt()` runs
//! one control iteration (the caller decides the cadence — a background
//! thread, a timer, or explicit calls as in the tests).

use crate::cluster::{LiveCluster, Unavailable};
use harmony_adaptive::config::ControllerConfig;
use harmony_adaptive::controller::AdaptiveController;
use harmony_adaptive::policy::ConsistencyPolicy;
use harmony_monitor::probe::ClusterProbe;
use harmony_sim::clock::SimTime;
use harmony_store::consistency::ConsistencyLevel;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

struct LiveProbe<'a> {
    cluster: &'a LiveCluster,
}

impl ClusterProbe for LiveProbe<'_> {
    fn total_reads(&self) -> u64 {
        self.cluster.counters().reads.load(Ordering::Relaxed)
    }
    fn total_writes(&self) -> u64 {
        self.cluster.counters().writes.load(Ordering::Relaxed)
    }
    fn probe_latency_ms(&self) -> f64 {
        self.cluster.config().propagation_delay.as_secs_f64() * 1e3
    }
    fn node_count(&self) -> usize {
        self.cluster.node_count()
    }
    fn live_node_count(&self) -> usize {
        self.cluster.live_node_count()
    }
    fn mutation_backlog_ms(&self) -> f64 {
        self.cluster.mutation_backlog_ms()
    }
    fn replica_backlog_ms(&self) -> Vec<f64> {
        self.cluster.replica_backlog_ms()
    }
    fn write_stage_telemetry(&self) -> Vec<harmony_store::node::WriteStageTelemetry> {
        self.cluster.write_stage_telemetry()
    }
    fn drain_write_key_samples(&self) -> Vec<harmony_store::keys::KeyId> {
        self.cluster.drain_write_key_samples()
    }
    fn key_name(&self, key: harmony_store::keys::KeyId) -> String {
        self.cluster.key_name(key)
    }
    fn fault_epoch(&self) -> u64 {
        self.cluster.fault_state().counters().total()
    }
}

/// Bounded-exponential-backoff retry policy for the live client path: how
/// many attempts an unavailable operation gets, and how long to back off
/// between them. The wall-clock sibling of the YCSB runner's deterministic
/// `RetryPolicy` — an operation that finds no reachable replica sleeps and
/// tries again, because a replica restart or a partition heal can land
/// between attempts. Disabled by default (one attempt, no retries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveRetryPolicy {
    /// Total attempts including the first; `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each subsequent one.
    pub base_backoff: Duration,
    /// Ceiling the doubling backoff clamps to.
    pub max_backoff: Duration,
}

impl Default for LiveRetryPolicy {
    fn default() -> Self {
        LiveRetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(64),
        }
    }
}

impl LiveRetryPolicy {
    /// The backoff before retry number `retry` (1-based): base doubled per
    /// step, clamped to the ceiling.
    pub fn backoff(&self, retry: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(20));
        doubled.min(self.max_backoff)
    }
}

/// A live cluster with the Harmony control loop attached.
pub struct LiveHarmony {
    cluster: LiveCluster,
    controller: Mutex<AdaptiveController>,
    started: Instant,
}

impl LiveHarmony {
    /// Wraps a running cluster with an adaptive controller using `policy`.
    pub fn new(
        cluster: LiveCluster,
        controller_config: ControllerConfig,
        policy: Box<dyn ConsistencyPolicy>,
    ) -> Self {
        let rf = cluster.config().replication_factor;
        LiveHarmony {
            cluster,
            controller: Mutex::new(AdaptiveController::new(controller_config, rf, policy)),
            started: Instant::now(),
        }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &LiveCluster {
        &self.cluster
    }

    /// Runs one monitoring + adaptation iteration and returns the read level
    /// subsequent reads will use.
    pub fn adapt(&self) -> ConsistencyLevel {
        let now = SimTime::from_duration(self.started.elapsed());
        let probe = LiveProbe {
            cluster: &self.cluster,
        };
        self.controller.lock().tick(now, &probe)
    }

    /// The consistency level the controller currently prescribes for reads.
    pub fn current_read_level(&self) -> ConsistencyLevel {
        self.controller.lock().current_read_level()
    }

    /// The stale-read estimate from the most recent adaptation, if the policy
    /// computes one.
    pub fn last_estimate(&self) -> Option<f64> {
        self.controller
            .lock()
            .decisions()
            .last()
            .and_then(|d| d.estimate)
    }

    /// The hot keys currently escalated above the default level (split mode).
    pub fn hot_set(&self) -> Vec<harmony_adaptive::controller::HotKeyDecision> {
        self.controller.lock().hot_set().to_vec()
    }

    /// Applies one fault event to the underlying cluster (the same typed
    /// schedule the simulated cluster consumes drives the threaded one).
    pub fn apply_fault(&self, fault: &harmony_chaos::FaultEvent) {
        self.cluster.apply_fault(fault);
    }

    /// Reads through the adaptive level, consulting the controller's hot set
    /// per operation: an escalated hot key reads at its own (stronger) level,
    /// everything else at the cheap default. A key that has never been
    /// written has no interned id and cannot be hot, so it reads at the
    /// default level.
    pub fn read(&self, key: &str) -> Option<(Vec<u8>, u64)> {
        let controller = self.controller.lock();
        let level = match self.cluster.key_id(key) {
            Some(id) => controller.read_level_for(id),
            None => controller.current_read_level(),
        };
        drop(controller);
        self.cluster.read(key, level)
    }

    /// Writes at the controller's write level (level ONE, as in the paper).
    pub fn write(&self, key: &str, value: Vec<u8>) -> u64 {
        let level = self.controller.lock().current_write_level();
        self.cluster.write(key, value, level)
    }

    /// [`LiveHarmony::read`] with bounded-backoff retries: an unavailable
    /// read (the key exists but no replica is reachable) sleeps and tries
    /// again up to the policy's attempt budget — a restart or heal between
    /// attempts turns the failure into a success. The adaptive level is
    /// re-resolved per attempt, so a retry benefits from any controller
    /// decision made in the meantime.
    pub fn read_with_retry(
        &self,
        key: &str,
        retry: LiveRetryPolicy,
    ) -> Result<Option<(Vec<u8>, u64)>, Unavailable> {
        let mut attempt = 1;
        loop {
            let level = {
                let controller = self.controller.lock();
                match self.cluster.key_id(key) {
                    Some(id) => controller.read_level_for(id),
                    None => controller.current_read_level(),
                }
            };
            match self.cluster.try_read(key, level) {
                Ok(result) => return Ok(result),
                Err(err) => {
                    if attempt >= retry.max_attempts.max(1) {
                        return Err(err);
                    }
                    std::thread::sleep(retry.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// [`LiveHarmony::write`] with bounded-backoff retries: a write that no
    /// reachable replica could receive (it survives only as hints) sleeps
    /// and re-issues up to the policy's attempt budget. Returns the version
    /// of the attempt that reached a replica.
    pub fn write_with_retry(
        &self,
        key: &str,
        value: Vec<u8>,
        retry: LiveRetryPolicy,
    ) -> Result<u64, Unavailable> {
        let mut attempt = 1;
        loop {
            let level = self.controller.lock().current_write_level();
            match self.cluster.try_write(key, value.clone(), level) {
                Ok(version) => return Ok(version),
                Err(err) => {
                    if attempt >= retry.max_attempts.max(1) {
                        return Err(err);
                    }
                    std::thread::sleep(retry.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Arms the controller's decision audit log: every subsequent `adapt()`
    /// records a [`harmony_obs::DecisionAudit`] with the estimate inputs.
    pub fn enable_decision_audit(&self) {
        self.controller.lock().enable_decision_audit();
    }

    /// Scrapes the live cluster and controller into `registry` (collect-on-
    /// scrape, like the simulated stack): client counters, membership and
    /// backlog gauges, plus the controller's decision series.
    pub fn export_metrics(&self, registry: &harmony_obs::MetricsRegistry) {
        let counters = self.cluster.counters();
        for (name, value) in [
            (
                "harmony_live_reads_total",
                counters.reads.load(Ordering::Relaxed),
            ),
            (
                "harmony_live_writes_total",
                counters.writes.load(Ordering::Relaxed),
            ),
            (
                "harmony_live_stale_reads_total",
                counters.stale_reads.load(Ordering::Relaxed),
            ),
            (
                "harmony_live_fault_epoch",
                self.cluster.fault_state().counters().total(),
            ),
        ] {
            registry.counter(name).set_total(value);
        }
        registry
            .gauge("harmony_live_nodes")
            .set(self.cluster.live_node_count() as f64);
        registry
            .gauge("harmony_live_mutation_backlog_ms")
            .set(self.cluster.mutation_backlog_ms());
        self.controller.lock().export_metrics(registry);
    }

    /// Dumps the current observability state as an [`harmony_obs::ObsReport`]:
    /// a fresh metrics scrape and the decision audit log accumulated since
    /// [`LiveHarmony::enable_decision_audit`]. The live client path has no
    /// per-op tracer (ops are synchronous calls, not simulated events), so
    /// the report's flight recorder is empty.
    pub fn obs_report(&self) -> harmony_obs::ObsReport {
        let registry = harmony_obs::MetricsRegistry::new();
        self.export_metrics(&registry);
        harmony_obs::ObsReport {
            registry,
            recorder: harmony_obs::FlightRecorder::new(0, 0),
            audit: self.controller.lock().audit_log().to_vec(),
        }
    }

    /// Shuts the cluster down.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LiveConfig;
    use harmony_adaptive::policy::{HarmonyPolicy, StaticPolicy};
    use std::time::Duration;

    fn live_cluster() -> LiveCluster {
        LiveCluster::start(LiveConfig {
            nodes: 4,
            replication_factor: 3,
            propagation_delay: Duration::from_micros(100),
            jitter: 0.1,
            seed: 3,
            suspicion_threshold: 8.0,
        })
    }

    #[test]
    fn starts_at_consistency_one() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.4)),
        );
        assert_eq!(h.current_read_level(), ConsistencyLevel::One);
        h.shutdown();
    }

    #[test]
    fn read_your_own_writes_through_the_wrapper() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(StaticPolicy::Strong),
        );
        h.adapt();
        let v = h.write("k", b"value".to_vec());
        // Static strong policy reads at ALL, which always sees the newest
        // acknowledged version.
        let (value, version) = h.read("k").unwrap();
        assert_eq!(value, b"value");
        assert!(version >= v);
        h.shutdown();
    }

    #[test]
    fn split_mode_escalates_hot_keys_in_the_live_path() {
        let mut config = ControllerConfig::default();
        config.per_key.enabled = true;
        // A small sketch so the warmup threshold is reached within the test.
        config.monitor.hot_key_capacity = 16;
        let h = LiveHarmony::new(live_cluster(), config, Box::new(HarmonyPolicy::new(3, 0.1)));
        h.adapt();
        // 95% of the writes hammer one key; the rest is a cold tail. The hot
        // key's own arrival intensity breaches the 10% tolerance while the
        // residual cold-tail load stays far below it.
        for i in 0..2_000u64 {
            let key = if i % 20 < 19 {
                "hot".to_string()
            } else {
                format!("cold{}", i % 37)
            };
            h.write(&key, vec![1, 2, 3]);
            let _ = h.read(&key);
        }
        std::thread::sleep(Duration::from_millis(5));
        h.adapt();
        let hot = h.hot_set();
        let default_level = h.current_read_level();
        assert!(
            hot.iter().any(|d| d.key == "hot" && d.replicas > 1),
            "expected the hot key escalated above the default, got {hot:?} \
             (default level {default_level})"
        );
        // The cold tail still reads at the cheap default.
        let cold_id = h.cluster().key_id("cold1").unwrap();
        let cold_level = h.controller.lock().read_level_for(cold_id);
        assert_eq!(cold_level, default_level);
        h.shutdown();
    }

    #[test]
    fn retry_backoff_doubles_and_clamps() {
        let p = LiveRetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(10));
        assert_eq!(p.backoff(40), Duration::from_millis(10));
    }

    #[test]
    fn retry_converts_unavailability_once_replicas_return() {
        use harmony_chaos::FaultEvent;
        use harmony_sim::topology::NodeId;
        use std::sync::Arc;

        let h = Arc::new(LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(StaticPolicy::Strong),
        ));
        h.write("k", b"v".to_vec());
        let victims = h.cluster().replicas_for("k");
        for r in &victims {
            h.apply_fault(&FaultEvent::CrashNode {
                node: NodeId(*r as u32),
            });
        }
        // Retries disabled (the default): the unavailability surfaces
        // immediately instead of blocking.
        assert!(h.read_with_retry("k", LiveRetryPolicy::default()).is_err());
        assert!(h
            .write_with_retry("k", b"w".to_vec(), LiveRetryPolicy::default())
            .is_err());
        // Revive the replicas mid-retry: a later attempt finds them back
        // and the operation completes instead of failing.
        let reviver = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(15));
                for r in &victims {
                    h.apply_fault(&FaultEvent::RestartNode {
                        node: NodeId(*r as u32),
                    });
                }
            })
        };
        let retry = LiveRetryPolicy {
            max_attempts: 40,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
        };
        assert!(h.write_with_retry("k", b"w".to_vec(), retry).is_ok());
        assert!(h.read_with_retry("k", retry).is_ok());
        reviver.join().unwrap();
        match Arc::try_unwrap(h) {
            Ok(h) => h.shutdown(),
            Err(_) => panic!("cluster still referenced"),
        }
    }

    #[test]
    fn obs_report_scrapes_the_live_cluster_and_audits_decisions() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
        );
        h.enable_decision_audit();
        h.adapt();
        for i in 0..100u64 {
            h.write(&format!("k{}", i % 5), vec![7]);
            let _ = h.read(&format!("k{}", i % 5));
        }
        h.adapt();
        let report = h.obs_report();
        let snap = report.registry.snapshot();
        let reads = snap
            .counters
            .iter()
            .find(|c| c.name == "harmony_live_reads_total")
            .expect("live read counter")
            .value;
        assert_eq!(reads, 100);
        assert!(snap
            .gauges
            .iter()
            .any(|g| g.name == "harmony_live_nodes" && g.value == 4.0));
        assert!(!report.audit.is_empty(), "both adapts were audited");
        assert!(report
            .prometheus_text()
            .contains("harmony_live_reads_total 100"));
        h.shutdown();
    }

    #[test]
    fn adaptation_raises_level_under_write_pressure() {
        let h = LiveHarmony::new(
            live_cluster(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.05)),
        );
        h.adapt();
        // Hammer the cluster with writes and reads, then adapt.
        for i in 0..400u64 {
            h.write(&format!("k{}", i % 10), vec![1, 2, 3]);
            let _ = h.read(&format!("k{}", i % 10));
        }
        std::thread::sleep(Duration::from_millis(5));
        let level = h.adapt();
        // With a 5% tolerance and real measured rates the estimate exceeds the
        // tolerance and the level rises above ONE.
        assert!(
            level.required_acks(3) > 1,
            "expected elevated level, got {level} (estimate {:?})",
            h.last_estimate()
        );
        assert!(h.last_estimate().unwrap_or(0.0) > 0.05);
        h.shutdown();
    }
}

//! The real-threaded replicated store.
//!
//! Each node runs in its own OS thread and owns a versioned key-value map
//! behind a `parking_lot` lock. The client-facing [`LiveCluster`] handle plays
//! the coordinator role: it fans writes out to every replica, waits for as
//! many acknowledgements as the consistency level requires (the rest of the
//! replicas keep applying in the background — the real staleness window), and
//! for reads collects the requested number of replica responses and returns
//! the newest version.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use harmony_chaos::{FaultEvent, FaultState};
use harmony_sim::clock::SimTime;
use harmony_sim::topology::NodeId;
use harmony_store::cluster::WRITE_KEY_SAMPLE_CAP;
use harmony_store::consistency::ConsistencyLevel;
use harmony_store::detector::HeartbeatHistory;
use harmony_store::keys::{KeyId, KeyTable};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`LiveCluster`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Number of node threads.
    pub nodes: usize,
    /// Replication factor.
    pub replication_factor: usize,
    /// Simulated one-way propagation delay applied before a replica applies a
    /// write or answers a read.
    pub propagation_delay: Duration,
    /// Relative jitter applied to the delay (0.2 = ±20%).
    pub jitter: f64,
    /// Seed for the jitter randomness.
    pub seed: u64,
    /// Accrual-detector convict threshold (φ): a replica whose silence
    /// reaches this suspicion level is steered around by partial reads as
    /// long as enough unsuspected replicas remain. Cassandra's conventional
    /// default is 8 (the observed silence had a 10⁻⁸ chance under the
    /// replica's own heartbeat cadence).
    pub suspicion_threshold: f64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            nodes: 5,
            replication_factor: 3,
            propagation_delay: Duration::from_micros(300),
            jitter: 0.2,
            seed: 1,
            suspicion_threshold: 8.0,
        }
    }
}

/// Error of [`LiveCluster::try_read`] / [`LiveCluster::try_write`]: the
/// client handle could not reach a single replica of the key (all crashed,
/// or all across an active partition). The operation did not complete — a
/// failed write leaves only hints — so callers may retry it; a later
/// attempt can succeed once a replica restarts or the cut heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unavailable;

impl std::fmt::Display for Unavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no reachable replica")
    }
}

impl std::error::Error for Unavailable {}

/// Cumulative client-visible operation counters.
#[derive(Debug, Default)]
pub struct LiveCounters {
    /// Client reads completed.
    pub reads: AtomicU64,
    /// Client writes completed.
    pub writes: AtomicU64,
    /// Reads that returned a version older than the newest acknowledged write
    /// for that key (ground-truth staleness).
    pub stale_reads: AtomicU64,
}

enum NodeMsg {
    Write {
        key: KeyId,
        /// Shared across the replica fan-out: each copy is a refcount bump,
        /// not a payload clone.
        value: Arc<Vec<u8>>,
        version: u64,
        /// Acknowledged with the responding node's index, so the coordinator
        /// can credit the right replica's failure-detector heartbeat.
        ack: Sender<usize>,
    },
    Read {
        key: KeyId,
        /// Answered with the responding node's index plus the value, for the
        /// same heartbeat crediting.
        reply: Sender<(usize, Option<VersionedValue>)>,
    },
    Shutdown,
}

/// A stored version: the shared payload plus its version number.
type VersionedValue = (Arc<Vec<u8>>, u64);

/// A hinted mutation awaiting its destination: key, shared payload, version.
type HintedWrite = (KeyId, Arc<Vec<u8>>, u64);

struct NodeState {
    data: Mutex<HashMap<KeyId, VersionedValue>>,
    /// Writes accepted by a coordinator but not yet applied on this replica
    /// (in-flight in the delayed "network" or queued on the channel) — the
    /// live analogue of a pending-MutationStage count.
    pending_writes: AtomicU64,
    /// Cumulative replica writes accepted for this node (arrival counter of
    /// the write stage).
    accepted_writes: AtomicU64,
    /// Cumulative replica writes applied on this node (completion counter).
    applied_writes: AtomicU64,
}

/// Modelled apply cost: a map insert behind a mutex, ~1 µs per pending
/// write — conservative, so backlogs only surface milliseconds of lag when
/// thousands of writes are truly pending.
const APPLY_COST_MS: f64 = 0.001;

fn node_loop(index: usize, state: Arc<NodeState>, rx: Receiver<NodeMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            NodeMsg::Shutdown => break,
            NodeMsg::Write {
                key,
                value,
                version,
                ack,
            } => {
                {
                    let mut data = state.data.lock();
                    let entry = data.entry(key).or_insert_with(|| (Arc::new(Vec::new()), 0));
                    if version > entry.1 {
                        *entry = (value, version);
                    }
                }
                state.pending_writes.fetch_sub(1, Ordering::Relaxed);
                state.applied_writes.fetch_add(1, Ordering::Relaxed);
                let _ = ack.send(index);
            }
            NodeMsg::Read { key, reply } => {
                let result = state.data.lock().get(&key).cloned();
                let _ = reply.send((index, result));
            }
        }
    }
}

fn jittered(delay: Duration, jitter: f64, rng: &mut StdRng) -> Duration {
    if delay.is_zero() {
        return Duration::ZERO;
    }
    let factor = 1.0 + jitter.clamp(0.0, 1.0) * (rng.gen::<f64>() * 2.0 - 1.0);
    Duration::from_nanos((delay.as_nanos() as f64 * factor.max(0.0)) as u64)
}

/// A running real-threaded cluster.
///
/// Node membership is elastic: [`LiveCluster::apply_fault`] can crash,
/// restart, slow, partition, join or decommission nodes at run time, so the
/// node vectors live behind an `RwLock` (reads on the op path take the
/// uncontended read lock; only join extends them).
pub struct LiveCluster {
    config: LiveConfig,
    senders: RwLock<Vec<Sender<NodeMsg>>>,
    states: RwLock<Vec<Arc<NodeState>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    counters: Arc<LiveCounters>,
    next_version: AtomicU64,
    /// Rotates which replica a partial read contacts first, standing in for a
    /// dynamic snitch picking different "closest" replicas over time.
    read_rotation: AtomicU64,
    /// Newest acknowledged version per key, for ground-truth staleness checks.
    acked: Mutex<HashMap<KeyId, u64>>,
    /// Keys of client writes since the last monitoring drain — the sample
    /// stream for the monitor's heavy-hitter sketch. Striped by the key's
    /// primary replica (one bounded buffer per node slot, grown at join), so
    /// concurrent client threads writing to different primaries never
    /// serialize on one global sampling lock; the monitoring sweep drains
    /// stripe by stripe and concatenates in slot order.
    write_key_samples: RwLock<Vec<Mutex<Vec<KeyId>>>>,
    /// Samples discarded because their stripe was at capacity between two
    /// drains. Each stripe gets the full cap, so one hot primary can no
    /// longer starve every other node's samples — but when a stripe does
    /// overflow, the loss is counted instead of silent.
    sample_drops: AtomicU64,
    /// The key interner shared by every client handle; replica messages and
    /// per-node maps move 4-byte ids instead of cloning key strings RF times
    /// per operation. Interning an already-known key — every write after a
    /// key's first — only takes the read lock.
    key_table: RwLock<KeyTable>,
    /// Liveness, partition, slow-down and membership state — the same
    /// bookkeeping the simulated cluster runs. Node-level semantics (crash,
    /// restart, hints, slow-down, churn) match the simulator; partitions
    /// necessarily differ in one respect: this cluster has no server-side
    /// coordinators (the client handle plays that role), so its clients are
    /// pinned to partition group 0 — the first group listed in the event —
    /// and nodes on any other side of a cut are unreachable from the client
    /// (their writes become hints), whereas the simulator's multi-homed
    /// clients keep reaching coordinators on every side.
    faults: Mutex<FaultState>,
    /// Hinted handoff per destination node: `(key, value, version)` triples
    /// replayed into the node's channel on restart/heal.
    hints: Mutex<Vec<Vec<HintedWrite>>>,
    /// Join + decommission count when the active partition was installed;
    /// the heal re-streams only churn that happened during the cut.
    partition_churn_baseline: AtomicU64,
    /// Per-node φ accrual failure detectors (same construction as the
    /// simulated cluster's), fed by replica acknowledgements and read
    /// replies the coordinator actually observes. A replica whose acks stop
    /// arriving — crashed before the liveness bookkeeping notices, or slowed
    /// so far that quorums always close without it — accrues suspicion, and
    /// partial reads steer around it.
    detectors: Mutex<Vec<HeartbeatHistory>>,
    /// Wall-clock epoch for detector timestamps.
    started: Instant,
}

impl LiveCluster {
    /// Starts the node threads.
    ///
    /// # Panics
    /// Panics if `nodes` or `replication_factor` is zero.
    pub fn start(config: LiveConfig) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        assert!(
            config.replication_factor > 0,
            "replication factor must be at least 1"
        );
        let mut senders = Vec::with_capacity(config.nodes);
        let mut states = Vec::with_capacity(config.nodes);
        let mut handles = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let (tx, rx) = unbounded();
            let state = Arc::new(NodeState {
                data: Mutex::new(HashMap::new()),
                pending_writes: AtomicU64::new(0),
                accepted_writes: AtomicU64::new(0),
                applied_writes: AtomicU64::new(0),
            });
            states.push(Arc::clone(&state));
            handles.push(
                std::thread::Builder::new()
                    .name(format!("harmony-live-node-{i}"))
                    .spawn(move || node_loop(i, state, rx))
                    .expect("spawn node thread"),
            );
            senders.push(tx);
        }
        let nodes = config.nodes;
        LiveCluster {
            config,
            senders: RwLock::new(senders),
            states: RwLock::new(states),
            handles: Mutex::new(handles),
            counters: Arc::new(LiveCounters::default()),
            next_version: AtomicU64::new(1),
            read_rotation: AtomicU64::new(0),
            acked: Mutex::new(HashMap::new()),
            write_key_samples: RwLock::new((0..nodes).map(|_| Mutex::new(Vec::new())).collect()),
            sample_drops: AtomicU64::new(0),
            key_table: RwLock::new(KeyTable::new()),
            faults: Mutex::new(FaultState::new(nodes)),
            hints: Mutex::new(vec![Vec::new(); nodes]),
            partition_churn_baseline: AtomicU64::new(0),
            detectors: Mutex::new((0..nodes).map(|_| HeartbeatHistory::new()).collect()),
            started: Instant::now(),
        }
    }

    /// Records an observed response from `node` as a failure-detector
    /// heartbeat.
    fn note_heartbeat(&self, node: usize) {
        let now = SimTime::from_duration(self.started.elapsed());
        if let Some(history) = self.detectors.lock().get_mut(node) {
            history.record(now);
        }
    }

    /// The current φ suspicion level of `node`: how implausible its present
    /// silence is under its own observed response cadence. Zero until the
    /// node has produced at least two observed responses.
    pub fn suspicion(&self, node: usize) -> f64 {
        let now = SimTime::from_duration(self.started.elapsed());
        self.detectors
            .lock()
            .get(node)
            .map(|h| h.suspicion(now))
            .unwrap_or(0.0)
    }

    /// Current number of node slots (including crashed and decommissioned).
    pub fn node_count(&self) -> usize {
        self.states.read().len()
    }

    /// Number of nodes currently serving traffic.
    pub fn live_node_count(&self) -> usize {
        self.faults.lock().serving_count()
    }

    /// A snapshot of the fault/membership state.
    pub fn fault_state(&self) -> FaultState {
        self.faults.lock().clone()
    }

    /// Number of hinted mutations waiting for `node`.
    pub fn hinted_mutations(&self, node: usize) -> usize {
        self.hints.lock().get(node).map(Vec::len).unwrap_or(0)
    }

    /// True if the client handle can currently reach `node`: the node serves
    /// and sits on the client's side of any active partition (clients are
    /// pinned to partition group 0 — the first group listed in the event).
    fn client_reachable(faults: &FaultState, node: usize) -> bool {
        let id = NodeId(node as u32);
        faults.is_serving(id) && faults.partition_group(id).is_none_or(|g| g == 0)
    }

    /// Applies one fault event to the running cluster — the same schedule
    /// the simulated cluster consumes drives the threaded one.
    pub fn apply_fault(&self, fault: &FaultEvent) {
        match fault {
            FaultEvent::CrashNode { node } => {
                self.faults.lock().crash(*node);
            }
            FaultEvent::RestartNode { node } => {
                let (restarted, reachable) = {
                    let mut faults = self.faults.lock();
                    let restarted = faults.restart(*node);
                    (restarted, Self::client_reachable(&faults, node.index()))
                };
                // A node restarting on the far side of an active cut keeps
                // its hints until the heal — replaying now would smuggle the
                // client's mutations across the partition.
                if restarted && reachable {
                    self.drain_hints_for(node.index());
                }
            }
            FaultEvent::SlowNode {
                node,
                service_factor,
            } => {
                self.faults.lock().set_slow(*node, *service_factor);
            }
            FaultEvent::Partition { groups } => {
                let mut faults = self.faults.lock();
                faults.partition(groups);
                let c = faults.counters();
                self.partition_churn_baseline
                    .store(c.joins + c.decommissions, Ordering::Relaxed);
            }
            FaultEvent::HealPartition => {
                let (healed, churned) = {
                    let mut faults = self.faults.lock();
                    let healed = faults.heal();
                    let c = faults.counters();
                    (
                        healed,
                        c.joins + c.decommissions
                            > self.partition_churn_baseline.load(Ordering::Relaxed),
                    )
                };
                if healed {
                    let nodes = self.node_count();
                    for node in 0..nodes {
                        let serving = {
                            let faults = self.faults.lock();
                            Self::client_reachable(&faults, node)
                        };
                        if serving {
                            self.drain_hints_for(node);
                        }
                    }
                    // Streams that could not cross the cut (mid-partition
                    // joins/decommissions) are retried once connectivity is
                    // whole again.
                    if churned {
                        self.rebalance();
                    }
                }
            }
            FaultEvent::JoinNode { .. } => {
                self.join_node();
            }
            FaultEvent::DecommissionNode { node } => {
                self.decommission_node(node.index());
            }
        }
    }

    /// Replays every hint stored for `node` into its write channel; the
    /// replayed mutations queue behind live traffic exactly like the
    /// simulator's hint drain.
    fn drain_hints_for(&self, node: usize) {
        let drained = {
            let mut hints = self.hints.lock();
            match hints.get_mut(node) {
                Some(h) => std::mem::take(h),
                None => return,
            }
        };
        if drained.is_empty() {
            return;
        }
        let senders = self.senders.read();
        let states = self.states.read();
        for (key, value, version) in drained {
            states[node].pending_writes.fetch_add(1, Ordering::Relaxed);
            states[node].accepted_writes.fetch_add(1, Ordering::Relaxed);
            let (ack_tx, _ack_rx) = bounded(1);
            let _ = senders[node].send(NodeMsg::Write {
                key,
                value,
                version,
                ack: ack_tx,
            });
        }
    }

    /// Elastic scale-out: spawns a new node thread, registers it with the
    /// membership, and bootstraps it with the freshest copy of every key it
    /// now owns before it serves reads. Returns the new node's index.
    ///
    /// Publication order matters: the hint slot and the fault/membership
    /// slot are grown *before* the node appears in `states`/`senders`, so a
    /// concurrent write that observes the new node count always finds its
    /// hint vector and liveness entry already in place (node_count() — the
    /// placement input — derives from `states`, published last).
    pub fn join_node(&self) -> usize {
        let (tx, rx) = unbounded();
        let state = Arc::new(NodeState {
            data: Mutex::new(HashMap::new()),
            pending_writes: AtomicU64::new(0),
            accepted_writes: AtomicU64::new(0),
            applied_writes: AtomicU64::new(0),
        });
        self.hints.lock().push(Vec::new());
        self.write_key_samples.write().push(Mutex::new(Vec::new()));
        self.detectors.lock().push(HeartbeatHistory::new());
        let id = self.faults.lock().add_node();
        let index = {
            let mut states = self.states.write();
            let mut senders = self.senders.write();
            states.push(Arc::clone(&state));
            senders.push(tx);
            states.len() - 1
        };
        debug_assert_eq!(id.index(), index);
        self.handles.lock().push(
            std::thread::Builder::new()
                .name(format!("harmony-live-node-{index}"))
                .spawn(move || node_loop(index, state, rx))
                .expect("spawn node thread"),
        );
        self.rebalance();
        index
    }

    /// Graceful scale-in: the node's data is streamed to the new owners and
    /// it leaves the membership for good (its thread idles; `shutdown` joins
    /// it with the rest).
    pub fn decommission_node(&self, node: usize) {
        {
            let mut faults = self.faults.lock();
            if faults.members().len() <= 1 || !faults.is_member(NodeId(node as u32)) {
                return;
            }
            faults.decommission(NodeId(node as u32));
        }
        self.hints.lock().get_mut(node).map(std::mem::take);
        self.rebalance();
    }

    /// One anti-entropy pass after a membership change: every key moves its
    /// freshest alive copy onto the serving members of its (new) replica
    /// set. Applied directly to the node maps — the live analogue of
    /// bootstrap/decommission streaming finishing before traffic resumes.
    fn rebalance(&self) {
        let keys: Vec<(KeyId, String)> = {
            let table = self.key_table.read();
            self.acked
                .lock()
                .keys()
                .filter_map(|k| table.try_resolve(*k).map(|n| (*k, n.to_string())))
                .collect()
        };
        // Lock-order discipline: `faults` before `states`, matching every
        // probe-side path (`replica_backlog_ms` and friends); the inverse
        // order could deadlock against a concurrent join's `states.write()`
        // under a writer-fair RwLock.
        let faults = self.faults.lock();
        let states = self.states.read();
        for (key, name) in keys {
            for &target in &Self::replicas_over_members(
                &faults,
                states.len(),
                &name,
                self.config.replication_factor,
            ) {
                let target_id = NodeId(target as u32);
                if !faults.is_serving(target_id) {
                    continue;
                }
                // Streaming is node-to-node traffic: a target only pulls
                // from live sources on its own side of any active cut.
                let mut newest: Option<(Arc<Vec<u8>>, u64)> = None;
                for (i, state) in states.iter().enumerate() {
                    let source_id = NodeId(i as u32);
                    if i == target
                        || !faults.is_alive(source_id)
                        || faults.partition_group(source_id) != faults.partition_group(target_id)
                    {
                        continue;
                    }
                    if let Some((value, version)) = state.data.lock().get(&key) {
                        if newest.as_ref().map(|(_, v)| *version > *v).unwrap_or(true) {
                            newest = Some((Arc::clone(value), *version));
                        }
                    }
                }
                let Some((value, version)) = newest else {
                    continue;
                };
                let mut data = states[target].data.lock();
                let entry = data.entry(key).or_insert_with(|| (Arc::new(Vec::new()), 0));
                if version > entry.1 {
                    *entry = (value, version);
                }
            }
        }
    }

    /// Drains the buffered keys of client writes since the previous call —
    /// the observation stream of the monitor's heavy-hitter sketch. Stripes
    /// drain one at a time under their own lock and concatenate in slot
    /// order; a write that lands in an already-drained stripe mid-sweep is
    /// not lost, it simply waits for the next drain.
    pub fn drain_write_key_samples(&self) -> Vec<KeyId> {
        let stripes = self.write_key_samples.read();
        let mut all = Vec::new();
        for stripe in stripes.iter() {
            all.append(&mut stripe.lock());
        }
        all
    }

    /// Samples discarded so far because a stripe buffer was full. A non-zero
    /// value means the monitoring interval is too long (or the cap too
    /// small) for the write rate — the sketch still sees a uniform prefix of
    /// each stripe's traffic, but rate estimates lose the overflowed tail.
    pub fn dropped_write_key_samples(&self) -> u64 {
        self.sample_drops.load(Ordering::Relaxed)
    }

    /// Interns a key name (idempotent). Already-known names — every write
    /// after a key's first — resolve under the shared read lock; only a
    /// genuinely new key takes the write lock, where the double-checked
    /// `intern` stays idempotent against a racing first writer.
    pub fn intern_key(&self, name: &str) -> KeyId {
        if let Some(id) = self.key_table.read().get(name) {
            return id;
        }
        self.key_table.write().intern(name)
    }

    /// The id of an already-interned key name, if any.
    pub fn key_id(&self, name: &str) -> Option<KeyId> {
        self.key_table.read().get(name)
    }

    /// The name behind an interned key id (positional fallback for ids this
    /// cluster never produced).
    pub fn key_name(&self, id: KeyId) -> String {
        self.key_table
            .read()
            .try_resolve(id)
            .map(str::to_string)
            .unwrap_or_else(|| format!("key#{}", id.0))
    }

    /// The cluster configuration.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }

    /// The cumulative operation counters.
    pub fn counters(&self) -> &LiveCounters {
        &self.counters
    }

    /// Mean per-node count of accepted-but-not-yet-applied writes expressed
    /// as the expected extra apply delay in milliseconds — the live analogue
    /// of the simulator's mutation-backlog probe, so the controller is not
    /// blind to write saturation on this backend either. Only mutations are
    /// counted; queued reads do not inflate the figure.
    pub fn mutation_backlog_ms(&self) -> f64 {
        let backlogs = self.replica_backlog_ms();
        if backlogs.is_empty() {
            return 0.0;
        }
        backlogs.iter().sum::<f64>() / backlogs.len() as f64
    }

    /// Per-node accepted-but-not-yet-applied write backlog in milliseconds,
    /// one entry per node. The cross-node *dispersion* of these values is the
    /// queue-wait spread signal of the queueing-aware staleness model, so the
    /// live backend feeds the same saturation-awareness path as the
    /// simulator.
    pub fn replica_backlog_ms(&self) -> Vec<f64> {
        let faults = self.faults.lock();
        self.states
            .read()
            .iter()
            .enumerate()
            .filter(|(i, _)| faults.is_serving(NodeId(*i as u32)))
            .map(|(_, s)| s.pending_writes.load(Ordering::Relaxed) as f64 * APPLY_COST_MS)
            .collect()
    }

    /// Per-node write-stage telemetry (arrival/completion counters plus the
    /// modelled apply cost as accumulated service time), so the monitor can
    /// derive per-replica arrival rates and a truthful — if tiny — write-stage
    /// utilisation on this backend too, instead of a structural zero that
    /// would keep the divergence detector permanently disarmed.
    pub fn write_stage_telemetry(&self) -> Vec<harmony_store::node::WriteStageTelemetry> {
        self.states
            .read()
            .iter()
            .map(|s| {
                let completed = s.applied_writes.load(Ordering::Relaxed);
                harmony_store::node::WriteStageTelemetry {
                    arrivals: s.accepted_writes.load(Ordering::Relaxed),
                    completed,
                    service_ms_total: completed as f64 * APPLY_COST_MS,
                    service_ms_sq_total: completed as f64 * APPLY_COST_MS * APPLY_COST_MS,
                    queued: s.pending_writes.load(Ordering::Relaxed) as usize,
                    busy: 0,
                }
            })
            .collect()
    }

    /// The replica node indices for a key: the first `replication_factor`
    /// ring *members* starting at the key's hash position. Decommissioned
    /// nodes are skipped (membership-aware placement); with every node a
    /// member this is the modular walk it always was.
    pub fn replicas_for(&self, key: &str) -> Vec<usize> {
        let total = self.node_count();
        let faults = self.faults.lock();
        Self::replicas_over_members(&faults, total, key, self.config.replication_factor)
    }

    fn replicas_over_members(
        faults: &FaultState,
        total: usize,
        key: &str,
        rf: usize,
    ) -> Vec<usize> {
        if total == 0 {
            return Vec::new();
        }
        // Dense membership — the steady state until a decommission actually
        // happens — keeps the original modular walk: no membership scan and
        // no intermediate allocation on the per-operation path.
        if !faults.any_decommissioned() {
            let rf = rf.min(total);
            let start = (harmony_sim_hash(key) % total as u64) as usize;
            return (0..rf).map(|i| (start + i) % total).collect();
        }
        let members: Vec<usize> = (0..total)
            .filter(|i| faults.is_member(NodeId(*i as u32)))
            .collect();
        if members.is_empty() {
            return Vec::new();
        }
        let rf = rf.min(members.len());
        let start = (harmony_sim_hash(key) % members.len() as u64) as usize;
        (0..rf)
            .map(|i| members[(start + i) % members.len()])
            .collect()
    }

    /// Writes `value` under `key`, waiting for as many replica
    /// acknowledgements as `level` requires. Returns the version assigned to
    /// the write.
    ///
    /// The mutation is delivered to every replica through a "network" that
    /// delays each copy independently by the configured propagation delay
    /// (plus jitter). The client returns as soon as `level` replicas have
    /// acknowledged; the remaining copies are still in flight — that window
    /// is where partial-quorum reads can observe stale data, exactly the
    /// situation of the paper's Figure 2.
    pub fn write(&self, key: &str, value: Vec<u8>, level: ConsistencyLevel) -> u64 {
        self.write_inner(key, value, level).0
    }

    /// Like [`LiveCluster::write`], but reports unavailability instead of
    /// silently degrading: `Err(Unavailable)` when no reachable replica could
    /// receive the mutation (it survives only as hints and did not advance
    /// the acknowledged ground truth). Retryable — see
    /// [`crate::harmony::LiveHarmony::write_with_retry`].
    pub fn try_write(
        &self,
        key: &str,
        value: Vec<u8>,
        level: ConsistencyLevel,
    ) -> Result<u64, Unavailable> {
        match self.write_inner(key, value, level) {
            (version, true) => Ok(version),
            (_, false) => Err(Unavailable),
        }
    }

    fn write_inner(&self, key: &str, value: Vec<u8>, level: ConsistencyLevel) -> (u64, bool) {
        let version = self.next_version.fetch_add(1, Ordering::SeqCst);
        let id = self.intern_key(key);
        let replicas = self.replicas_for(key);
        // Sample under the primary replica's stripe: writers to different
        // primaries take disjoint locks, so node threads never serialize on
        // a single global sampling mutex.
        {
            let stripe_index = replicas.first().copied().unwrap_or(0);
            let stripes = self.write_key_samples.read();
            if let Some(stripe) = stripes.get(stripe_index) {
                let mut samples = stripe.lock();
                if samples.len() < WRITE_KEY_SAMPLE_CAP {
                    samples.push(id);
                } else {
                    self.sample_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let shared_value = Arc::new(value);
        // Replicas the client cannot reach (crashed, or across the cut) get
        // a durable hint instead of a delayed send; they cannot acknowledge.
        let mut sendable: Vec<(usize, usize, f64)> = Vec::with_capacity(replicas.len());
        {
            let mut hints = self.hints.lock();
            let faults = self.faults.lock();
            for (i, &r) in replicas.iter().enumerate() {
                if Self::client_reachable(&faults, r) {
                    sendable.push((i, r, faults.service_factor(NodeId(r as u32))));
                } else {
                    hints[r].push((id, Arc::clone(&shared_value), version));
                }
            }
        }
        let required = level.required_acks(replicas.len()).min(sendable.len());
        let (ack_tx, ack_rx) = bounded(replicas.len().max(1));
        {
            let senders = self.senders.read();
            let states = self.states.read();
            for &(i, r, factor) in &sendable {
                states[r].pending_writes.fetch_add(1, Ordering::Relaxed);
                states[r].accepted_writes.fetch_add(1, Ordering::Relaxed);
                let sender = senders[r].clone();
                let msg_key = id;
                let msg_value = Arc::clone(&shared_value);
                let ack = ack_tx.clone();
                let mut rng =
                    StdRng::seed_from_u64(self.config.seed ^ version.wrapping_mul(31) ^ i as u64);
                let mut delay =
                    jittered(self.config.propagation_delay, self.config.jitter, &mut rng);
                if factor != 1.0 {
                    // A slowed node's "apply path" stretches by its factor.
                    delay = Duration::from_nanos((delay.as_nanos() as f64 * factor) as u64);
                }
                // Deliver through the "network": an independent delayed send
                // per replica, so copies arrive out of order w.r.t. reads.
                std::thread::spawn(move || {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    let _ = sender.send(NodeMsg::Write {
                        key: msg_key,
                        value: msg_value,
                        version,
                        ack,
                    });
                });
            }
        }
        drop(ack_tx);
        for _ in 0..required {
            if let Ok(node) = ack_rx.recv() {
                self.note_heartbeat(node);
            }
        }
        // A write no reachable replica received is a failure, not a success:
        // it must not advance the acked ground truth (later reads would be
        // charged stale against a version only hints hold) and it does not
        // count as a completed write — mirroring the simulated cluster,
        // which aborts the operation in this situation.
        if !sendable.is_empty() {
            {
                let mut acked = self.acked.lock();
                let entry = acked.entry(id).or_insert(0);
                if version > *entry {
                    *entry = version;
                }
            }
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
        }
        (version, !sendable.is_empty())
    }

    /// Reads `key` from as many replicas as `level` requires and returns the
    /// newest `(value, version)` seen, or `None` if no contacted replica has
    /// the key.
    ///
    /// Partial reads rotate which replica they start from (a stand-in for a
    /// dynamic snitch), so consecutive reads of the same key do not always
    /// hit the same — possibly freshest — replica. The rotation runs over
    /// the *unsuspected* reachable replicas first: a replica whose φ
    /// suspicion has crossed the configured threshold is only contacted when
    /// the read cannot be satisfied without it.
    pub fn read(&self, key: &str, level: ConsistencyLevel) -> Option<(Vec<u8>, u64)> {
        self.read_inner(key, level).0
    }

    /// Like [`LiveCluster::read`], but reports unavailability instead of
    /// silently missing: `Err(Unavailable)` when the key exists but no
    /// replica is reachable. A miss on a never-written key is still
    /// `Ok(None)`. Retryable — see
    /// [`crate::harmony::LiveHarmony::read_with_retry`].
    pub fn try_read(
        &self,
        key: &str,
        level: ConsistencyLevel,
    ) -> Result<Option<(Vec<u8>, u64)>, Unavailable> {
        match self.read_inner(key, level) {
            (_, true) => Err(Unavailable),
            (best, false) => Ok(best),
        }
    }

    /// Read-target selection: `required` replicas out of `reachable`, least
    /// suspected first. While every reachable replica is below the convict
    /// threshold this is exactly the historical rotation; once some cross
    /// it, the rotation narrows to the unsuspected ones, falling back to
    /// suspected replicas only when the level demands more than remain.
    fn select_read_targets(
        &self,
        reachable: &[usize],
        required: usize,
        offset: usize,
    ) -> Vec<usize> {
        if required == 0 || reachable.is_empty() {
            return Vec::new();
        }
        let now = SimTime::from_duration(self.started.elapsed());
        let threshold = self.config.suspicion_threshold;
        let detectors = self.detectors.lock();
        let (fresh, suspected): (Vec<usize>, Vec<usize>) = reachable.iter().partition(|&&r| {
            detectors
                .get(r)
                .map(|h| h.suspicion(now) < threshold)
                .unwrap_or(true)
        });
        drop(detectors);
        if fresh.len() >= required {
            (0..required)
                .map(|i| fresh[(offset + i) % fresh.len()])
                .collect()
        } else {
            // The level needs more replicas than are unsuspected: contact
            // every fresh one and fill the remainder from the suspected pool.
            let mut targets = fresh;
            targets.extend(
                (0..required - targets.len()).map(|i| suspected[(offset + i) % suspected.len()]),
            );
            targets
        }
    }

    fn read_inner(&self, key: &str, level: ConsistencyLevel) -> (Option<(Vec<u8>, u64)>, bool) {
        // A never-written key has no id; no replica can hold it either.
        let id = self.key_id(key);
        let expected = id
            .and_then(|id| self.acked.lock().get(&id).copied())
            .unwrap_or(0);
        let replicas = self.replicas_for(key);
        // Only replicas the client can reach may answer; the consistency
        // level's ack count is clamped to what is actually available.
        let reachable: Vec<usize> = {
            let faults = self.faults.lock();
            replicas
                .iter()
                .copied()
                .filter(|r| Self::client_reachable(&faults, *r))
                .collect()
        };
        let required = level.required_acks(replicas.len()).min(reachable.len());
        let offset = self.read_rotation.fetch_add(1, Ordering::Relaxed) as usize;
        let (reply_tx, reply_rx) = bounded(replicas.len().max(1));
        // An unknown key exists on no replica: contact none, expect nothing.
        let expected_replies = if id.is_some() { required } else { 0 };
        if let Some(id) = id {
            let targets = self.select_read_targets(&reachable, expected_replies, offset);
            let senders = self.senders.read();
            for r in targets {
                let _ = senders[r].send(NodeMsg::Read {
                    key: id,
                    reply: reply_tx.clone(),
                });
            }
        }
        drop(reply_tx);
        let mut best: Option<VersionedValue> = None;
        for _ in 0..expected_replies {
            if let Ok((node, result)) = reply_rx.recv() {
                self.note_heartbeat(node);
                if let Some((value, version)) = result {
                    if best.as_ref().map(|(_, v)| version > *v).unwrap_or(true) {
                        best = Some((value, version));
                    }
                }
            }
        }
        // An unavailable read (the key exists but no replica is reachable)
        // is a failure: it is neither a completed read nor a stale
        // observation — mirroring the simulated cluster, which aborts the
        // operation. A miss on a never-written key is still a normal read.
        let unavailable = id.is_some() && reachable.is_empty();
        if !unavailable {
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
        }
        let returned_version = best.as_ref().map(|(_, v)| *v).unwrap_or(0);
        if expected_replies > 0 && returned_version < expected {
            self.counters.stale_reads.fetch_add(1, Ordering::Relaxed);
        }
        (
            best.map(|(value, version)| (value.as_ref().clone(), version)),
            unavailable,
        )
    }

    /// Stops every node thread and waits for them to exit.
    pub fn shutdown(self) {
        drop(self); // Drop joins the threads.
    }
}

impl Drop for LiveCluster {
    fn drop(&mut self) {
        for tx in self.senders.read().iter() {
            let _ = tx.send(NodeMsg::Shutdown);
        }
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

fn harmony_sim_hash(key: &str) -> u64 {
    // FNV-1a, same construction as the discrete-event ring's key hashing.
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn quick_config() -> LiveConfig {
        LiveConfig {
            nodes: 4,
            replication_factor: 3,
            propagation_delay: Duration::from_micros(50),
            jitter: 0.1,
            seed: 11,
            suspicion_threshold: 8.0,
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let cluster = LiveCluster::start(quick_config());
        let v = cluster.write("user1", b"hello".to_vec(), ConsistencyLevel::All);
        assert!(v > 0);
        let (value, version) = cluster.read("user1", ConsistencyLevel::One).unwrap();
        assert_eq!(value, b"hello");
        assert_eq!(version, v);
        assert_eq!(cluster.counters().reads.load(Ordering::Relaxed), 1);
        assert_eq!(cluster.counters().writes.load(Ordering::Relaxed), 1);
        cluster.shutdown();
    }

    #[test]
    fn idle_cluster_reports_no_backlog() {
        let cluster = LiveCluster::start(quick_config());
        cluster.write("k", b"v".to_vec(), ConsistencyLevel::All);
        // All replicas have applied (write acked at ALL) and no work is
        // queued, so the backlog probe must read zero.
        assert_eq!(cluster.mutation_backlog_ms(), 0.0);
        cluster.shutdown();
    }

    #[test]
    fn missing_key_reads_none() {
        let cluster = LiveCluster::start(quick_config());
        assert!(cluster.read("nope", ConsistencyLevel::Quorum).is_none());
        cluster.shutdown();
    }

    #[test]
    fn quorum_write_then_quorum_read_sees_latest() {
        let cluster = LiveCluster::start(quick_config());
        for i in 0..50u64 {
            let v = cluster.write(
                "hot",
                format!("v{i}").into_bytes(),
                ConsistencyLevel::Quorum,
            );
            let (value, version) = cluster.read("hot", ConsistencyLevel::Quorum).unwrap();
            assert!(version >= v, "read version {version} older than acked {v}");
            assert!(!value.is_empty());
        }
        assert_eq!(cluster.counters().stale_reads.load(Ordering::Relaxed), 0);
        cluster.shutdown();
    }

    #[test]
    fn replica_sets_are_stable_and_distinct() {
        let cluster = LiveCluster::start(quick_config());
        for k in 0..50 {
            let key = format!("user{k}");
            let reps = cluster.replicas_for(&key);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
            assert_eq!(reps, cluster.replicas_for(&key));
        }
        cluster.shutdown();
    }

    #[test]
    fn versions_are_monotone_across_threads() {
        let cluster = Arc::new(LiveCluster::start(quick_config()));
        let mut joins = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                let mut versions = Vec::new();
                for i in 0..25 {
                    versions.push(c.write(
                        &format!("k{t}-{i}"),
                        vec![t as u8],
                        ConsistencyLevel::One,
                    ));
                }
                versions
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "versions must be unique");
        assert_eq!(cluster.counters().writes.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn striped_sampling_loses_nothing_under_concurrency_or_joins() {
        let cluster = Arc::new(LiveCluster::start(quick_config()));
        // Concurrent writers to different keys route through different
        // primary stripes and take disjoint locks; every sample must still
        // surface in one drain.
        let mut joins = Vec::new();
        for t in 0..4u8 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..25 {
                    c.write(&format!("s{t}-{i}"), vec![t], ConsistencyLevel::One);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(cluster.drain_write_key_samples().len(), 100);
        assert_eq!(cluster.dropped_write_key_samples(), 0);
        // A node joining mid-run grows the stripe vector before placement
        // can route a primary onto the new slot; sampling keeps working and
        // a second drain starts empty.
        cluster.join_node();
        for i in 0..30 {
            cluster.write(
                &format!("post-join-{i}"),
                b"v".to_vec(),
                ConsistencyLevel::One,
            );
        }
        assert_eq!(cluster.drain_write_key_samples().len(), 30);
        assert!(cluster.drain_write_key_samples().is_empty());
        assert_eq!(cluster.dropped_write_key_samples(), 0);
    }

    #[test]
    fn interning_is_idempotent_across_reader_fast_path() {
        let cluster = LiveCluster::start(quick_config());
        // First interning takes the write path; every later one must hit
        // the read fast path and return the same id.
        let first = cluster.intern_key("alpha");
        assert_eq!(cluster.intern_key("alpha"), first);
        assert_eq!(cluster.key_id("alpha"), Some(first));
        assert_eq!(cluster.key_name(first), "alpha");
        let second = cluster.intern_key("beta");
        assert_ne!(first, second);
        cluster.shutdown();
    }

    #[test]
    fn eventual_reads_can_be_stale_but_all_reads_are_not() {
        // With a visible propagation delay and writes acknowledged at ONE,
        // reads at ONE can catch a replica the write has not reached yet,
        // while reads at ALL never can.
        let cluster = LiveCluster::start(LiveConfig {
            nodes: 4,
            replication_factor: 3,
            propagation_delay: Duration::from_micros(400),
            jitter: 0.5,
            seed: 5,
            suspicion_threshold: 8.0,
        });
        for i in 0..200u64 {
            cluster.write("hot", format!("v{i}").into_bytes(), ConsistencyLevel::One);
            let _ = cluster.read("hot", ConsistencyLevel::One);
        }
        let stale_at_one = cluster.counters().stale_reads.load(Ordering::Relaxed);

        // Now read at ALL: the newest acked version must always be visible.
        for i in 200..260u64 {
            let v = cluster.write("hot", format!("v{i}").into_bytes(), ConsistencyLevel::One);
            let (_, version) = cluster.read("hot", ConsistencyLevel::All).unwrap();
            assert!(version >= v);
        }
        // Staleness at ONE is probabilistic; across 200 racing pairs with a
        // 400 us window it is overwhelmingly likely to have occurred at least
        // once. If this ever flakes the window below can be widened.
        assert!(
            stale_at_one > 0,
            "expected at least one stale read at consistency ONE"
        );
        cluster.shutdown();
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_deadlock() {
        let cluster = Arc::new(LiveCluster::start(quick_config()));
        let mut joins = Vec::new();
        for t in 0..3 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..50 {
                    c.write(
                        &format!("k{}", i % 7),
                        vec![t as u8, i as u8],
                        ConsistencyLevel::Quorum,
                    );
                }
            }));
        }
        for _ in 0..3 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let _ = c.read(&format!("k{}", i % 7), ConsistencyLevel::Quorum);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let counters = cluster.counters();
        assert_eq!(counters.writes.load(Ordering::Relaxed), 150);
        assert_eq!(counters.reads.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn crashed_replica_gets_hints_and_converges_on_restart() {
        let cluster = LiveCluster::start(quick_config());
        cluster.write("k", b"v0".to_vec(), ConsistencyLevel::All);
        let victim = cluster.replicas_for("k")[0];
        cluster.apply_fault(&FaultEvent::CrashNode {
            node: NodeId(victim as u32),
        });
        assert_eq!(cluster.live_node_count(), 3);
        // Writes at ALL keep completing on the surviving replicas; the
        // crashed one accumulates hints.
        for i in 0..20u64 {
            cluster.write("k", format!("v{i}").into_bytes(), ConsistencyLevel::All);
        }
        assert!(cluster.hinted_mutations(victim) > 0);
        // Reads avoid the dead replica and stay fresh at QUORUM.
        let (_, version) = cluster.read("k", ConsistencyLevel::Quorum).unwrap();
        assert!(version >= 20);
        // Restart: hints drain and the replica converges.
        cluster.apply_fault(&FaultEvent::RestartNode {
            node: NodeId(victim as u32),
        });
        assert_eq!(cluster.hinted_mutations(victim), 0);
        // Wait for the channel to drain (hint replay is asynchronous).
        for _ in 0..200 {
            if cluster.replica_backlog_ms()[victim] == 0.0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let id = cluster.key_id("k").unwrap();
        let states = cluster.states.read();
        let newest = states[victim].data.lock().get(&id).map(|(_, v)| *v);
        assert!(
            newest.unwrap_or(0) >= 20,
            "restarted replica behind: {newest:?}"
        );
        drop(states);
        cluster.shutdown();
    }

    #[test]
    fn partitioned_minority_is_hinted_and_heals() {
        let cluster = LiveCluster::start(quick_config());
        cluster.write("k", b"v0".to_vec(), ConsistencyLevel::All);
        let replicas = cluster.replicas_for("k");
        let minority = replicas[2];
        let majority: Vec<NodeId> = (0..cluster.node_count())
            .filter(|i| *i != minority)
            .map(|i| NodeId(i as u32))
            .collect();
        cluster.apply_fault(&FaultEvent::Partition {
            groups: vec![majority, vec![NodeId(minority as u32)]],
        });
        cluster.write("k", b"v1".to_vec(), ConsistencyLevel::Quorum);
        assert!(cluster.hinted_mutations(minority) > 0);
        cluster.apply_fault(&FaultEvent::HealPartition);
        assert_eq!(cluster.hinted_mutations(minority), 0);
        cluster.shutdown();
    }

    #[test]
    fn unreachable_write_does_not_advance_the_acked_ground_truth() {
        // Crash every replica of a key: the write is hinted everywhere and
        // must NOT count as acknowledged — otherwise every later read would
        // be charged stale against a version no serving replica holds.
        let cluster = LiveCluster::start(quick_config());
        cluster.write("k", b"v0".to_vec(), ConsistencyLevel::All);
        let writes_before = cluster.counters().writes.load(Ordering::Relaxed);
        for r in cluster.replicas_for("k") {
            cluster.apply_fault(&FaultEvent::CrashNode {
                node: NodeId(r as u32),
            });
        }
        let v = cluster.write("k", b"v1".to_vec(), ConsistencyLevel::One);
        assert!(v > 0, "a version is still allocated");
        assert_eq!(
            cluster.counters().writes.load(Ordering::Relaxed),
            writes_before,
            "an unreachable write is not a completed write"
        );
        // The failed write left hints but no replica data; a read after the
        // restart is served from the hint replay without a phantom stale.
        let stale_before = cluster.counters().stale_reads.load(Ordering::Relaxed);
        for r in cluster.replicas_for("k") {
            cluster.apply_fault(&FaultEvent::RestartNode {
                node: NodeId(r as u32),
            });
        }
        for _ in 0..200 {
            if cluster.mutation_backlog_ms() == 0.0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let (_, version) = cluster.read("k", ConsistencyLevel::All).unwrap();
        assert!(version >= 1);
        assert_eq!(
            cluster.counters().stale_reads.load(Ordering::Relaxed),
            stale_before,
            "no stale read may be charged against the failed write's version"
        );
        cluster.shutdown();
    }

    #[test]
    fn join_and_decommission_rebalance_the_live_data() {
        let cluster = LiveCluster::start(quick_config());
        for i in 0..30 {
            cluster.write(&format!("user{i}"), vec![i as u8], ConsistencyLevel::All);
        }
        // Scale out: the new node owns some keys and holds their data.
        let joined = cluster.join_node();
        assert_eq!(cluster.node_count(), 5);
        assert_eq!(cluster.live_node_count(), 5);
        let mut owned = 0;
        for i in 0..30 {
            let name = format!("user{i}");
            if cluster.replicas_for(&name).contains(&joined) {
                owned += 1;
                let id = cluster.key_id(&name).unwrap();
                let states = cluster.states.read();
                assert!(
                    states[joined].data.lock().get(&id).is_some(),
                    "{name} not bootstrapped onto the joiner"
                );
            }
        }
        assert!(owned > 0, "the joiner must own some keys");
        // Scale in: the leaver's keys move and reads stay correct.
        cluster.apply_fault(&FaultEvent::DecommissionNode { node: NodeId(0) });
        assert_eq!(cluster.live_node_count(), 4);
        for i in 0..30 {
            let name = format!("user{i}");
            assert!(!cluster.replicas_for(&name).contains(&0));
            let (value, _) = cluster.read(&name, ConsistencyLevel::Quorum).unwrap();
            assert_eq!(value, vec![i as u8]);
        }
        cluster.shutdown();
    }

    #[test]
    fn observed_acks_feed_the_failure_detector() {
        let cluster = LiveCluster::start(quick_config());
        // ALL-level writes observe an ack from every replica: each builds a
        // heartbeat history with a sub-millisecond cadence.
        for i in 0..40u64 {
            cluster.write("k", format!("v{i}").into_bytes(), ConsistencyLevel::All);
        }
        let replicas = cluster.replicas_for("k");
        let before: Vec<f64> = replicas.iter().map(|r| cluster.suspicion(*r)).collect();
        // Total silence: suspicion must grow for every replica, far past the
        // convict threshold (80 ms of silence against a sub-ms cadence).
        std::thread::sleep(Duration::from_millis(80));
        for (i, r) in replicas.iter().enumerate() {
            let after = cluster.suspicion(*r);
            assert!(
                after > before[i] && after > 8.0,
                "node {r}: suspicion {after} (was {})",
                before[i]
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn partial_reads_steer_around_a_suspected_replica() {
        // Build heartbeat history for every replica, then slow one so hard
        // that quorums always close without it: its acks stop being
        // observed, suspicion accrues, and partial reads avoid it — staying
        // fresh even though the slowed replica lags far behind.
        let cluster = LiveCluster::start(LiveConfig {
            nodes: 4,
            replication_factor: 3,
            propagation_delay: Duration::from_micros(200),
            jitter: 0.1,
            seed: 7,
            suspicion_threshold: 8.0,
        });
        for i in 0..30u64 {
            cluster.write("k", format!("w{i}").into_bytes(), ConsistencyLevel::All);
        }
        let slow = cluster.replicas_for("k")[2];
        cluster.apply_fault(&FaultEvent::SlowNode {
            node: NodeId(slow as u32),
            service_factor: 400.0,
        });
        // Quorum writes close on the two healthy replicas (the slowed one's
        // acks arrive ~80 ms late, after the coordinator stopped
        // listening), so the healthy pair keeps heartbeating while the
        // slowed detector goes silent.
        for _ in 0..40 {
            cluster.write("k", b"w".to_vec(), ConsistencyLevel::Quorum);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            cluster.suspicion(slow) > 8.0,
            "slowed replica not suspected: {}",
            cluster.suspicion(slow)
        );
        for r in cluster.replicas_for("k") {
            if r != slow {
                assert!(
                    cluster.suspicion(r) < 8.0,
                    "healthy replica {r} wrongly suspected: {}",
                    cluster.suspicion(r)
                );
            }
        }
        // Every quorum write was applied by both healthy replicas before it
        // was acknowledged, so a ONE-level read that avoids the suspect can
        // never observe staleness; one that hit the slowed replica would.
        let stale_before = cluster.counters().stale_reads.load(Ordering::Relaxed);
        for _ in 0..30 {
            let (_, version) = cluster.read("k", ConsistencyLevel::One).unwrap();
            assert!(version > 0);
        }
        assert_eq!(
            cluster.counters().stale_reads.load(Ordering::Relaxed),
            stale_before,
            "a read contacted the lagging suspect"
        );
        cluster.shutdown();
    }

    #[test]
    fn try_ops_report_unavailability_and_recover() {
        let cluster = LiveCluster::start(quick_config());
        cluster.write("k", b"v0".to_vec(), ConsistencyLevel::All);
        assert!(cluster.try_read("k", ConsistencyLevel::Quorum).is_ok());
        // A never-written key is a miss, not an unavailability.
        assert_eq!(cluster.try_read("nope", ConsistencyLevel::One), Ok(None));
        let replicas = cluster.replicas_for("k");
        for r in &replicas {
            cluster.apply_fault(&FaultEvent::CrashNode {
                node: NodeId(*r as u32),
            });
        }
        assert_eq!(
            cluster.try_read("k", ConsistencyLevel::One),
            Err(Unavailable)
        );
        assert_eq!(
            cluster.try_write("k", b"v1".to_vec(), ConsistencyLevel::One),
            Err(Unavailable)
        );
        for r in &replicas {
            cluster.apply_fault(&FaultEvent::RestartNode {
                node: NodeId(*r as u32),
            });
        }
        assert!(cluster
            .try_write("k", b"v2".to_vec(), ConsistencyLevel::One)
            .is_ok());
        assert!(cluster.try_read("k", ConsistencyLevel::All).is_ok());
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        LiveCluster::start(LiveConfig {
            nodes: 0,
            ..quick_config()
        });
    }
}

//! # harmony-live
//!
//! A small *real-threaded* replicated in-memory store: every storage node is
//! an OS thread, the network is a set of crossbeam channels, and replica
//! propagation delay is injected with real sleeps. It exposes the same
//! consistency-level knob as the discrete-event store, and implements the
//! monitoring probe trait so the Harmony controller can drive it in real
//! (wall-clock) time.
//!
//! The discrete-event store in [`harmony_store`] is the substrate used for
//! reproducing the paper's figures (it is deterministic and fast enough for
//! millions of operations); this crate exists to demonstrate the same control
//! loop working against genuinely concurrent code — the kind of deployment a
//! downstream user would run — and to stress the thread-safety of the
//! controller-facing interfaces.
//!
//! ## Example
//!
//! ```
//! use harmony_live::{LiveCluster, LiveConfig};
//! use harmony_store::consistency::ConsistencyLevel;
//! use std::time::Duration;
//!
//! let cluster = LiveCluster::start(LiveConfig {
//!     nodes: 4,
//!     replication_factor: 3,
//!     propagation_delay: Duration::from_micros(200),
//!     ..LiveConfig::default()
//! });
//! cluster.write("user1", b"hello".to_vec(), ConsistencyLevel::Quorum);
//! let (value, _version) = cluster.read("user1", ConsistencyLevel::Quorum).unwrap();
//! assert_eq!(value, b"hello");
//! cluster.shutdown();
//! ```

pub mod cluster;
pub mod harmony;

pub use cluster::{LiveCluster, LiveConfig, LiveCounters, Unavailable};
pub use harmony::{LiveHarmony, LiveRetryPolicy};

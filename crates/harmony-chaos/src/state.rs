//! The cluster-side fault state: liveness, partition masks, slow-down
//! factors and ring membership, shared by the discrete-event cluster and the
//! real-threaded live cluster so both runtimes interpret the same schedule
//! identically.
//!
//! The state answers three questions on the hot path — *is this node
//! serving?*, *can these two nodes talk?*, *how slow is this node?* — all as
//! branch-and-index lookups with no allocation. A fresh (fault-free) state
//! answers `true`/`true`/`1.0` everywhere, which is what keeps the empty
//! fault schedule byte-identical to a run without the chaos layer.

use harmony_sim::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Cumulative counts of the faults applied so far, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Nodes crashed.
    pub crashes: u64,
    /// Nodes restarted.
    pub restarts: u64,
    /// Partitions installed.
    pub partitions: u64,
    /// Partitions healed.
    pub heals: u64,
    /// Slow-down (or restore) events applied.
    pub slowdowns: u64,
    /// Nodes joined.
    pub joins: u64,
    /// Nodes decommissioned.
    pub decommissions: u64,
}

impl FaultCounters {
    /// Total fault events applied.
    pub fn total(&self) -> u64 {
        self.crashes
            + self.restarts
            + self.partitions
            + self.heals
            + self.slowdowns
            + self.joins
            + self.decommissions
    }
}

/// Per-node fault and membership state for a cluster of stable `NodeId`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultState {
    /// Liveness per node slot (false = crashed).
    alive: Vec<bool>,
    /// Ring membership per node slot (true = decommissioned, i.e. the node
    /// left the ring for good; its slot survives so ids stay stable).
    decommissioned: Vec<bool>,
    /// Multiplicative service-time factor per node (1.0 = nominal).
    slow_factor: Vec<f64>,
    /// Active partition: the connectivity group of each node. `None` means
    /// no partition (all nodes connected).
    partition: Option<Vec<u32>>,
    /// What has been applied so far.
    counters: FaultCounters,
}

impl FaultState {
    /// A fully healthy state for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        FaultState {
            alive: vec![true; nodes],
            decommissioned: vec![false; nodes],
            slow_factor: vec![1.0; nodes],
            partition: None,
            counters: FaultCounters::default(),
        }
    }

    /// Number of node slots (including decommissioned ones).
    pub fn node_count(&self) -> usize {
        self.alive.len()
    }

    /// Counts of the faults applied so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// True if any fault is currently in effect (a node down, slowed or
    /// decommissioned, or a partition active). A state that has only ever
    /// seen heal-and-restore events reports `false`.
    pub fn any_active(&self) -> bool {
        self.partition.is_some()
            || self.alive.iter().any(|a| !a)
            || self.decommissioned.iter().any(|d| *d)
            || self.slow_factor.iter().any(|f| *f != 1.0)
    }

    /// True if the node is up (crashed nodes report false; decommissioned
    /// nodes stay "alive" as streaming sources until they also crash).
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// True if the node is a ring member (not decommissioned).
    #[inline]
    pub fn is_member(&self, node: NodeId) -> bool {
        !self
            .decommissioned
            .get(node.index())
            .copied()
            .unwrap_or(true)
    }

    /// True if the node serves traffic: alive and still a ring member. Only
    /// serving nodes coordinate operations or answer replica reads.
    #[inline]
    pub fn is_serving(&self, node: NodeId) -> bool {
        self.is_alive(node) && self.is_member(node)
    }

    /// True if `a` and `b` can exchange messages: both serving, and on the
    /// same side of the active partition (if any). A node always reaches
    /// itself while serving.
    #[inline]
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_serving(a) || !self.is_serving(b) {
            return false;
        }
        if a == b {
            return true;
        }
        match &self.partition {
            None => true,
            Some(groups) => {
                groups.get(a.index()).copied().unwrap_or(u32::MAX)
                    == groups.get(b.index()).copied().unwrap_or(u32::MAX)
            }
        }
    }

    /// The node's current service-time multiplier (1.0 = nominal).
    #[inline]
    pub fn service_factor(&self, node: NodeId) -> f64 {
        self.slow_factor.get(node.index()).copied().unwrap_or(1.0)
    }

    /// The node's connectivity group under the active partition, or `None`
    /// when no partition is active. Groups named in the partition event get
    /// their index; unlisted nodes share one implicit group. Backends whose
    /// clients sit on a specific side (the live cluster pins clients to
    /// group 0) use this to decide client reachability.
    #[inline]
    pub fn partition_group(&self, node: NodeId) -> Option<u32> {
        self.partition
            .as_ref()
            .map(|groups| groups.get(node.index()).copied().unwrap_or(u32::MAX))
    }

    /// True if any node has ever been decommissioned — i.e. the membership
    /// is no longer the dense `0..node_count` range. Hot paths use this to
    /// keep their allocation-free dense-membership placement until churn
    /// actually happens.
    pub fn any_decommissioned(&self) -> bool {
        self.decommissioned.iter().any(|d| *d)
    }

    /// The current ring members, in id order.
    pub fn members(&self) -> Vec<NodeId> {
        (0..self.alive.len() as u32)
            .map(NodeId)
            .filter(|n| self.is_member(*n))
            .collect()
    }

    /// Number of serving nodes.
    pub fn serving_count(&self) -> usize {
        (0..self.alive.len() as u32)
            .map(NodeId)
            .filter(|n| self.is_serving(*n))
            .count()
    }

    /// Marks a node crashed. Returns false (and does nothing) if it was
    /// already down or out of range.
    pub fn crash(&mut self, node: NodeId) -> bool {
        match self.alive.get_mut(node.index()) {
            Some(a) if *a => {
                *a = false;
                self.counters.crashes += 1;
                true
            }
            _ => false,
        }
    }

    /// Brings a crashed node back. Returns false if it was already up,
    /// decommissioned, or out of range.
    pub fn restart(&mut self, node: NodeId) -> bool {
        if !self.is_member(node) {
            return false;
        }
        match self.alive.get_mut(node.index()) {
            Some(a) if !*a => {
                *a = true;
                self.counters.restarts += 1;
                true
            }
            _ => false,
        }
    }

    /// Sets the node's service-time multiplier (clamped to be positive).
    pub fn set_slow(&mut self, node: NodeId, factor: f64) -> bool {
        match self.slow_factor.get_mut(node.index()) {
            Some(f) => {
                *f = factor.max(1e-6);
                self.counters.slowdowns += 1;
                true
            }
            None => false,
        }
    }

    /// Installs a partition. Nodes listed in `groups[i]` land in group `i`;
    /// nodes not listed anywhere form one implicit extra group together.
    pub fn partition(&mut self, groups: &[Vec<NodeId>]) {
        let implicit = groups.len() as u32;
        let mut assignment = vec![implicit; self.alive.len()];
        for (g, members) in groups.iter().enumerate() {
            for node in members {
                if let Some(slot) = assignment.get_mut(node.index()) {
                    *slot = g as u32;
                }
            }
        }
        self.partition = Some(assignment);
        self.counters.partitions += 1;
    }

    /// Heals the active partition (no-op without one).
    pub fn heal(&mut self) -> bool {
        if self.partition.take().is_some() {
            self.counters.heals += 1;
            true
        } else {
            false
        }
    }

    /// True while a partition is active.
    pub fn partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Adds a node slot for an elastic join; the new node starts alive and
    /// at nominal speed. A node joining while a partition is active is
    /// placed in a fresh group of its own — isolated from *every* existing
    /// side until the heal (a bootstrapping node in a split cluster cannot
    /// assume connectivity to anyone). Returns the new node's id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.alive.len() as u32);
        self.alive.push(true);
        self.decommissioned.push(false);
        self.slow_factor.push(1.0);
        if let Some(groups) = &mut self.partition {
            let isolated = groups.iter().copied().max().map(|m| m + 1).unwrap_or(0);
            groups.push(isolated);
        }
        self.counters.joins += 1;
        id
    }

    /// Marks a node decommissioned (out of the ring, never serving again).
    /// Returns false if it already was, or is out of range.
    pub fn decommission(&mut self, node: NodeId) -> bool {
        match self.decommissioned.get_mut(node.index()) {
            Some(d) if !*d => {
                *d = true;
                self.counters.decommissions += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_fully_healthy() {
        let s = FaultState::new(4);
        assert!(!s.any_active());
        for i in 0..4 {
            let n = NodeId(i);
            assert!(s.is_alive(n));
            assert!(s.is_serving(n));
            assert_eq!(s.service_factor(n), 1.0);
            for j in 0..4 {
                assert!(s.reachable(n, NodeId(j)));
            }
        }
        assert_eq!(s.members().len(), 4);
        assert_eq!(s.serving_count(), 4);
        assert_eq!(s.counters().total(), 0);
    }

    #[test]
    fn crash_and_restart_cycle() {
        let mut s = FaultState::new(3);
        assert!(s.crash(NodeId(1)));
        assert!(!s.crash(NodeId(1)), "double crash is a no-op");
        assert!(!s.is_serving(NodeId(1)));
        assert!(s.is_member(NodeId(1)), "a crashed node keeps its tokens");
        assert!(!s.reachable(NodeId(0), NodeId(1)));
        assert!(s.any_active());
        assert_eq!(s.serving_count(), 2);
        assert!(s.restart(NodeId(1)));
        assert!(!s.restart(NodeId(1)), "double restart is a no-op");
        assert!(s.is_serving(NodeId(1)));
        assert!(!s.any_active());
        assert_eq!(s.counters().crashes, 1);
        assert_eq!(s.counters().restarts, 1);
    }

    #[test]
    fn partition_masks_connectivity_by_group() {
        let mut s = FaultState::new(5);
        // {0,1} vs {2,3}; node 4 is unlisted and forms the implicit group.
        s.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        assert!(s.partitioned());
        assert!(s.reachable(NodeId(0), NodeId(1)));
        assert!(s.reachable(NodeId(2), NodeId(3)));
        assert!(!s.reachable(NodeId(0), NodeId(2)));
        assert!(!s.reachable(NodeId(1), NodeId(3)));
        assert!(!s.reachable(NodeId(0), NodeId(4)));
        assert!(!s.reachable(NodeId(4), NodeId(2)));
        // A node still reaches itself.
        assert!(s.reachable(NodeId(4), NodeId(4)));
        assert!(s.heal());
        assert!(!s.heal(), "healing twice is a no-op");
        assert!(s.reachable(NodeId(0), NodeId(2)));
        assert!(!s.any_active());
    }

    #[test]
    fn slow_factor_applies_and_restores() {
        let mut s = FaultState::new(2);
        assert!(s.set_slow(NodeId(1), 4.0));
        assert_eq!(s.service_factor(NodeId(1)), 4.0);
        assert_eq!(s.service_factor(NodeId(0)), 1.0);
        assert!(s.any_active());
        assert!(s.set_slow(NodeId(1), 1.0));
        assert!(!s.any_active());
        assert!(!s.set_slow(NodeId(9), 2.0), "out of range is rejected");
        // Factors are clamped positive, never zero.
        s.set_slow(NodeId(0), -3.0);
        assert!(s.service_factor(NodeId(0)) > 0.0);
    }

    #[test]
    fn join_extends_and_decommission_shrinks_membership() {
        let mut s = FaultState::new(3);
        let new = s.add_node();
        assert_eq!(new, NodeId(3));
        assert_eq!(s.node_count(), 4);
        assert!(s.is_serving(new));
        assert!(s.decommission(NodeId(0)));
        assert!(!s.decommission(NodeId(0)));
        assert!(!s.is_serving(NodeId(0)));
        assert!(
            s.is_alive(NodeId(0)),
            "decommissioned stays alive as a source"
        );
        assert!(!s.is_member(NodeId(0)));
        assert_eq!(s.members(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(!s.restart(NodeId(0)), "a decommissioned node cannot rejoin");
        assert_eq!(s.counters().joins, 1);
        assert_eq!(s.counters().decommissions, 1);
    }

    #[test]
    fn join_during_partition_is_isolated_until_the_heal() {
        let mut s = FaultState::new(5);
        // Named groups {0,1} and {2,3}; node 4 is the unlisted remainder.
        s.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        let new = s.add_node();
        // The joiner reaches no existing side while the cut is active — not
        // the named groups, and not the unlisted remainder either...
        assert!(!s.reachable(new, NodeId(0)));
        assert!(!s.reachable(new, NodeId(2)));
        assert!(!s.reachable(new, NodeId(4)));
        assert!(s.reachable(new, new));
        // ...and everyone after the heal.
        s.heal();
        assert!(s.reachable(new, NodeId(0)));
        assert!(s.reachable(new, NodeId(4)));
    }

    #[test]
    fn state_serializes_round_trip() {
        let mut s = FaultState::new(3);
        s.crash(NodeId(2));
        s.partition(&[vec![NodeId(0)], vec![NodeId(1), NodeId(2)]]);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultState = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

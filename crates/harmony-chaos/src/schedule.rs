//! The fault-event DSL and the deterministic schedule over it.
//!
//! A [`FaultSchedule`] is a time-sorted list of [`FaultEvent`]s, each at an
//! absolute simulated timestamp. Schedules are built either explicitly (the
//! builder methods — `crash_at`, `partition_at`, …) or by the seeded random
//! generators ([`FaultSchedule::random`]), which draw Poisson fault arrivals
//! from their own RNG stream so the *workload's* randomness is untouched.
//! Either way the schedule is pure data: replaying the same schedule against
//! the same seed reproduces the same run, fault for fault.

use harmony_sim::clock::SimTime;
use harmony_sim::topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One typed fault (or elasticity) event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Fail-stop crash: the node stops serving reads and coordinating;
    /// mutations addressed to it are stored as hints and drain on restart.
    /// Work already *in service* completes (the power fails after the
    /// in-flight disk write, not during it); queued reads are answered with
    /// a miss by the failure detector so coordinators make progress.
    CrashNode {
        /// The node to crash.
        node: NodeId,
    },
    /// Recovery of a crashed node: it rejoins with its data intact and the
    /// hinted mutations accumulated while it was down are replayed into its
    /// write stage — the backlog spike the controller must ride out.
    RestartNode {
        /// The node to bring back.
        node: NodeId,
    },
    /// Network partition: nodes can only exchange messages within their own
    /// group. Nodes not listed in any group form an implicit extra group.
    /// Client locality differs by runtime: the simulator's clients are
    /// multi-homed and keep reaching live coordinators on every side, while
    /// the threaded live cluster has no server-side coordinators (the client
    /// handle plays that role) and pins its clients to `groups[0]` — list
    /// the side the clients should stay with first.
    Partition {
        /// The connectivity groups (each a list of node ids).
        groups: Vec<Vec<NodeId>>,
    },
    /// Heals the active partition (no-op when none is active); hinted
    /// mutations stranded by the cut are replayed.
    HealPartition,
    /// Degrades (or restores) a node's service speed: every service time on
    /// the node is multiplied by `service_factor`. `1.0` restores nominal
    /// speed; `4.0` models a node whose disks or CPU are four times slower —
    /// the straggler whose mutation queue diverges first.
    SlowNode {
        /// The node to slow down or restore.
        node: NodeId,
        /// Multiplier on the node's service times (clamped to be positive).
        service_factor: f64,
    },
    /// Elastic scale-out: a brand-new node joins at the given location, takes
    /// its ring tokens, and is bootstrapped with the data it now owns before
    /// serving reads (Cassandra-style bootstrap-then-serve).
    JoinNode {
        /// Datacenter the new node lands in.
        dc: u16,
        /// Rack within the datacenter.
        rack: u16,
    },
    /// Graceful scale-in: the node streams its data to the new owners, leaves
    /// the ring and stops serving. Its `NodeId` slot remains (ids are stable)
    /// but it never serves or coordinates again.
    DecommissionNode {
        /// The node to retire.
        node: NodeId,
    },
}

impl FaultEvent {
    /// A short label for reports and sweep tables.
    pub fn label(&self) -> String {
        match self {
            FaultEvent::CrashNode { node } => format!("crash({node})"),
            FaultEvent::RestartNode { node } => format!("restart({node})"),
            FaultEvent::Partition { groups } => format!("partition({} groups)", groups.len()),
            FaultEvent::HealPartition => "heal".to_string(),
            FaultEvent::SlowNode {
                node,
                service_factor,
            } => format!("slow({node}, x{service_factor})"),
            FaultEvent::JoinNode { dc, rack } => format!("join(dc{dc}/rack{rack})"),
            FaultEvent::DecommissionNode { node } => format!("decommission({node})"),
        }
    }
}

/// Why an event could not be added to a [`FaultSchedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// Two events at the same tick contradict each other: both claim the
    /// same node's liveness/membership (e.g. crash + decommission of one
    /// node), both manipulate the partition state, or both re-speed the same
    /// node. Equal-time events fire in insertion order, so such a pair would
    /// silently resolve last-write-wins — rejected instead.
    ConflictingSameTick {
        /// The shared tick.
        at: SimTime,
        /// The event already scheduled at that tick.
        existing: FaultEvent,
        /// The event that was rejected.
        incoming: FaultEvent,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::ConflictingSameTick {
                at,
                existing,
                incoming,
            } => write!(
                f,
                "conflicting events at t={:.6}s: {} vs {}",
                at.as_secs_f64(),
                existing.label(),
                incoming.label()
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// True if scheduling `a` and `b` at the same tick is contradictory: the
/// outcome would depend on insertion order instead of the schedule's meaning.
fn conflicts(a: &FaultEvent, b: &FaultEvent) -> bool {
    // Liveness/membership events own their subject node for the tick:
    // crash + decommission (or crash + restart, or two crashes) of one node
    // at one instant have no consistent reading.
    let liveness_subject = |e: &FaultEvent| match e {
        FaultEvent::CrashNode { node }
        | FaultEvent::RestartNode { node }
        | FaultEvent::DecommissionNode { node } => Some(*node),
        _ => None,
    };
    if let (Some(x), Some(y)) = (liveness_subject(a), liveness_subject(b)) {
        if x == y {
            return true;
        }
    }
    // At most one partition-state change per tick: cut + heal (either
    // order) or two cuts at one instant are order-dependent.
    let partitionish =
        |e: &FaultEvent| matches!(e, FaultEvent::Partition { .. } | FaultEvent::HealPartition);
    if partitionish(a) && partitionish(b) {
        return true;
    }
    // Two speed changes of one node at one tick: last-write-wins ambiguity.
    if let (FaultEvent::SlowNode { node: x, .. }, FaultEvent::SlowNode { node: y, .. }) = (a, b) {
        return x == y;
    }
    false
}

/// A fault event bound to an absolute simulated timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// When the fault fires (virtual time).
    pub at: SimTime,
    /// What happens.
    pub fault: FaultEvent,
}

/// Parameters of the seeded random fault generator: independent Poisson
/// processes for crashes, slow-downs and partitions over a bounded horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomFaultConfig {
    /// Crash arrivals per virtual second (0 disables crashes).
    pub crash_rate_per_sec: f64,
    /// Mean downtime before the matching restart (exponential).
    pub mean_downtime_secs: f64,
    /// Slow-down arrivals per virtual second (0 disables).
    pub slow_rate_per_sec: f64,
    /// Slow-down factor range (uniform draw); the node is restored to 1.0
    /// after an exponential hold with `mean_downtime_secs`.
    pub slow_factor_range: (f64, f64),
    /// Partition arrivals per virtual second (0 disables); partitions never
    /// overlap — an arrival while one is active is skipped.
    pub partition_rate_per_sec: f64,
    /// Mean partition duration before the heal (exponential).
    pub mean_partition_secs: f64,
}

impl Default for RandomFaultConfig {
    fn default() -> Self {
        RandomFaultConfig {
            crash_rate_per_sec: 0.1,
            mean_downtime_secs: 1.0,
            slow_rate_per_sec: 0.0,
            slow_factor_range: (2.0, 6.0),
            partition_rate_per_sec: 0.0,
            mean_partition_secs: 1.0,
        }
    }
}

/// A deterministic, time-sorted fault schedule.
///
/// Events at equal timestamps fire in insertion order (the sim kernel's FIFO
/// tie-break), so a schedule is replayed identically however it was built.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// The empty schedule: a run with it is byte-identical to a run without
    /// the chaos layer (no events, no RNG draws, no mask lookups that
    /// matter).
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in firing order (time-sorted, stable for equal times).
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Schedules `fault` at `at_secs` virtual seconds. Returns `self` so
    /// schedules read as a sentence:
    /// `FaultSchedule::empty().crash_at(1.0, NodeId(3)).restart_at(2.5, NodeId(3))`.
    pub fn then_at(mut self, at_secs: f64, fault: FaultEvent) -> Self {
        self.push(at_secs, fault);
        self
    }

    /// In-place form of [`FaultSchedule::then_at`].
    ///
    /// # Panics
    /// Panics when the event contradicts one already scheduled at the same
    /// tick (see [`ScheduleError`]); use [`FaultSchedule::try_push`] to
    /// handle the conflict instead.
    pub fn push(&mut self, at_secs: f64, fault: FaultEvent) {
        self.try_push(at_secs, fault)
            .unwrap_or_else(|e| panic!("invalid fault schedule: {e}"));
    }

    /// Fallible insert: schedules `fault` at `at_secs` unless it contradicts
    /// an event already at the same tick — e.g. crash + decommission of one
    /// node, a cut and its heal at one instant, or two speed changes of one
    /// node. Equal-time events fire in insertion order, so a contradictory
    /// pair would otherwise resolve silently by last write; the typed error
    /// surfaces the mistake at build time instead of as a baffling run.
    pub fn try_push(&mut self, at_secs: f64, fault: FaultEvent) -> Result<(), ScheduleError> {
        let at = SimTime::from_secs_f64(at_secs.max(0.0));
        for e in self.events.iter().filter(|e| e.at == at) {
            if conflicts(&e.fault, &fault) {
                return Err(ScheduleError::ConflictingSameTick {
                    at,
                    existing: e.fault.clone(),
                    incoming: fault,
                });
            }
        }
        // Stable insertion keeps equal-time events in push order.
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, ScheduledFault { at, fault });
        Ok(())
    }

    /// Crash `node` at `at_secs`.
    pub fn crash_at(self, at_secs: f64, node: NodeId) -> Self {
        self.then_at(at_secs, FaultEvent::CrashNode { node })
    }

    /// Restart `node` at `at_secs`.
    pub fn restart_at(self, at_secs: f64, node: NodeId) -> Self {
        self.then_at(at_secs, FaultEvent::RestartNode { node })
    }

    /// Partition the cluster into `groups` at `at_secs`.
    pub fn partition_at(self, at_secs: f64, groups: Vec<Vec<NodeId>>) -> Self {
        self.then_at(at_secs, FaultEvent::Partition { groups })
    }

    /// Heal the active partition at `at_secs`.
    pub fn heal_at(self, at_secs: f64) -> Self {
        self.then_at(at_secs, FaultEvent::HealPartition)
    }

    /// Slow `node` down by `service_factor` at `at_secs` (1.0 restores).
    pub fn slow_at(self, at_secs: f64, node: NodeId, service_factor: f64) -> Self {
        self.then_at(
            at_secs,
            FaultEvent::SlowNode {
                node,
                service_factor,
            },
        )
    }

    /// Join a new node at `dc`/`rack` at `at_secs`.
    pub fn join_at(self, at_secs: f64, dc: u16, rack: u16) -> Self {
        self.then_at(at_secs, FaultEvent::JoinNode { dc, rack })
    }

    /// Decommission `node` at `at_secs`.
    pub fn decommission_at(self, at_secs: f64, node: NodeId) -> Self {
        self.then_at(at_secs, FaultEvent::DecommissionNode { node })
    }

    /// Generates a random schedule over `[0, horizon_secs)` for a cluster of
    /// `nodes` nodes: independent seeded Poisson processes per fault class
    /// (see [`RandomFaultConfig`]). Crashes always get a matching restart and
    /// never stack on an already-down node; partitions never overlap and
    /// always heal; every slow-down is restored. The generator draws from its
    /// own `StdRng` stream, so attaching the schedule perturbs nothing else.
    pub fn random(seed: u64, horizon_secs: f64, nodes: usize, config: &RandomFaultConfig) -> Self {
        let mut schedule = FaultSchedule::empty();
        if nodes == 0 || horizon_secs <= 0.0 {
            return schedule;
        }
        let exp = |rng: &mut StdRng, rate: f64| -> f64 {
            let u: f64 = rng.gen();
            -(1.0 - u).ln() / rate
        };

        // Crashes: pick a node that is up at arrival time, hold it down for
        // an exponential downtime, restart within the horizon.
        if config.crash_rate_per_sec > 0.0 {
            let mut rng = StdRng::seed_from_u64(harmony_sim::rng::mix(seed, 0x63726173)); // "cras"
            let mut down_until = vec![0.0f64; nodes];
            let mut t = exp(&mut rng, config.crash_rate_per_sec);
            while t < horizon_secs {
                let candidate = rng.gen_range(0..nodes);
                if down_until[candidate] <= t {
                    let downtime = exp(&mut rng, 1.0 / config.mean_downtime_secs.max(1e-6));
                    let up_at = (t + downtime).min(horizon_secs);
                    let node = NodeId(candidate as u32);
                    // A measure-zero tie (crash arriving exactly at the
                    // previous restart's tick) is skipped, not last-write-won.
                    if schedule.try_push(t, FaultEvent::CrashNode { node }).is_ok() {
                        down_until[candidate] = up_at;
                        let _ = schedule.try_push(up_at, FaultEvent::RestartNode { node });
                    }
                }
                t += exp(&mut rng, config.crash_rate_per_sec);
            }
        }

        // Slow-downs: degrade a random node, restore it after the hold.
        // Like crashes, windows never stack on one node — an arrival whose
        // target is already degraded is skipped, so a restore can never
        // truncate a later window the sweep believes it applied.
        if config.slow_rate_per_sec > 0.0 {
            let mut rng = StdRng::seed_from_u64(harmony_sim::rng::mix(seed, 0x736c6f77)); // "slow"
            let (lo, hi) = config.slow_factor_range;
            let (lo, hi) = (lo.max(1.0), hi.max(lo.max(1.0)));
            let mut slowed_until = vec![0.0f64; nodes];
            let mut t = exp(&mut rng, config.slow_rate_per_sec);
            while t < horizon_secs {
                let candidate = rng.gen_range(0..nodes);
                if slowed_until[candidate] <= t {
                    let node = NodeId(candidate as u32);
                    let factor = lo + (hi - lo) * rng.gen::<f64>();
                    let hold = exp(&mut rng, 1.0 / config.mean_downtime_secs.max(1e-6));
                    let restore_at = (t + hold).min(horizon_secs);
                    let degraded = schedule.try_push(
                        t,
                        FaultEvent::SlowNode {
                            node,
                            service_factor: factor,
                        },
                    );
                    if degraded.is_ok() {
                        slowed_until[candidate] = restore_at;
                        let _ = schedule.try_push(
                            restore_at,
                            FaultEvent::SlowNode {
                                node,
                                service_factor: 1.0,
                            },
                        );
                    }
                }
                t += exp(&mut rng, config.slow_rate_per_sec);
            }
        }

        // Partitions: split the nodes in two random groups, heal later;
        // arrivals during an active partition are skipped (no overlap).
        if config.partition_rate_per_sec > 0.0 && nodes >= 2 {
            let mut rng = StdRng::seed_from_u64(harmony_sim::rng::mix(seed, 0x70617274)); // "part"
            let mut healed_at = 0.0f64;
            let mut t = exp(&mut rng, config.partition_rate_per_sec);
            while t < horizon_secs {
                if t >= healed_at {
                    let cut = 1 + rng.gen_range(0..nodes - 1);
                    let mut ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
                    // Fisher-Yates with the schedule's own RNG.
                    for i in (1..ids.len()).rev() {
                        let j = rng.gen_range(0..i + 1);
                        ids.swap(i, j);
                    }
                    let minority = ids.split_off(cut.min(ids.len() - 1).max(1));
                    let duration = exp(&mut rng, 1.0 / config.mean_partition_secs.max(1e-6));
                    let cut_ok = schedule.try_push(
                        t,
                        FaultEvent::Partition {
                            groups: vec![ids, minority],
                        },
                    );
                    if cut_ok.is_ok() {
                        healed_at = (t + duration).min(horizon_secs);
                        let _ = schedule.try_push(healed_at, FaultEvent::HealPartition);
                    }
                }
                t += exp(&mut rng, config.partition_rate_per_sec);
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_events_time_sorted_and_stable() {
        let s = FaultSchedule::empty()
            .restart_at(2.0, NodeId(1))
            .crash_at(1.0, NodeId(1))
            .heal_at(1.0)
            .slow_at(3.0, NodeId(0), 4.0);
        let times: Vec<f64> = s.events().iter().map(|e| e.at.as_secs_f64()).collect();
        assert_eq!(times, vec![1.0, 1.0, 2.0, 3.0]);
        // Equal-time events keep push order: crash was pushed before heal.
        assert!(matches!(s.events()[0].fault, FaultEvent::CrashNode { .. }));
        assert!(matches!(s.events()[1].fault, FaultEvent::HealPartition));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn contradictory_same_tick_events_are_rejected_with_a_typed_error() {
        // Crash + decommission of one node at one tick: no consistent reading.
        let mut s = FaultSchedule::empty().crash_at(1.0, NodeId(2));
        let err = s
            .try_push(1.0, FaultEvent::DecommissionNode { node: NodeId(2) })
            .unwrap_err();
        match &err {
            ScheduleError::ConflictingSameTick {
                at,
                existing,
                incoming,
            } => {
                assert_eq!(*at, SimTime::from_secs_f64(1.0));
                assert!(matches!(existing, FaultEvent::CrashNode { node } if *node == NodeId(2)));
                assert!(
                    matches!(incoming, FaultEvent::DecommissionNode { node } if *node == NodeId(2))
                );
            }
        }
        assert!(err.to_string().contains("crash(node2)"));
        assert_eq!(s.len(), 1, "the rejected event was not inserted");

        // Crash + restart, and a double crash, of the same node: rejected.
        assert!(s
            .try_push(1.0, FaultEvent::RestartNode { node: NodeId(2) })
            .is_err());
        assert!(s
            .try_push(1.0, FaultEvent::CrashNode { node: NodeId(2) })
            .is_err());
        // A different node at the same tick is fine.
        assert!(s
            .try_push(1.0, FaultEvent::CrashNode { node: NodeId(3) })
            .is_ok());
        // The same node at a different tick is fine.
        assert!(s
            .try_push(2.0, FaultEvent::RestartNode { node: NodeId(2) })
            .is_ok());
    }

    #[test]
    fn partition_state_changes_conflict_at_one_tick() {
        let mut s =
            FaultSchedule::empty().partition_at(1.0, vec![vec![NodeId(0)], vec![NodeId(1)]]);
        assert!(s.try_push(1.0, FaultEvent::HealPartition).is_err());
        assert!(s
            .try_push(
                1.0,
                FaultEvent::Partition {
                    groups: vec![vec![NodeId(1)], vec![NodeId(0)]],
                }
            )
            .is_err());
        // Healing later is fine, and a slow-down shares the tick harmlessly.
        assert!(s.try_push(2.0, FaultEvent::HealPartition).is_ok());
        assert!(s
            .try_push(
                1.0,
                FaultEvent::SlowNode {
                    node: NodeId(0),
                    service_factor: 2.0,
                }
            )
            .is_ok());
    }

    #[test]
    fn duplicate_slow_downs_of_one_node_conflict_at_one_tick() {
        let mut s = FaultSchedule::empty().slow_at(1.0, NodeId(0), 4.0);
        assert!(s
            .try_push(
                1.0,
                FaultEvent::SlowNode {
                    node: NodeId(0),
                    service_factor: 2.0,
                }
            )
            .is_err());
        assert!(s
            .try_push(
                1.0,
                FaultEvent::SlowNode {
                    node: NodeId(1),
                    service_factor: 2.0,
                }
            )
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault schedule")]
    fn infallible_push_panics_on_a_conflict() {
        let _ = FaultSchedule::empty()
            .crash_at(1.0, NodeId(0))
            .decommission_at(1.0, NodeId(0));
    }

    #[test]
    fn empty_schedule_is_empty() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s, FaultSchedule::default());
    }

    #[test]
    fn random_schedules_are_seed_reproducible() {
        let config = RandomFaultConfig {
            crash_rate_per_sec: 0.5,
            slow_rate_per_sec: 0.3,
            partition_rate_per_sec: 0.2,
            ..RandomFaultConfig::default()
        };
        let a = FaultSchedule::random(7, 30.0, 8, &config);
        let b = FaultSchedule::random(7, 30.0, 8, &config);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "30 s at these rates must produce faults");
        let c = FaultSchedule::random(8, 30.0, 8, &config);
        assert_ne!(a, c, "a different seed draws a different schedule");
    }

    #[test]
    fn random_crashes_pair_with_restarts_and_never_stack() {
        let config = RandomFaultConfig {
            crash_rate_per_sec: 1.0,
            mean_downtime_secs: 2.0,
            ..RandomFaultConfig::default()
        };
        let s = FaultSchedule::random(42, 60.0, 4, &config);
        let mut down = std::collections::HashSet::new();
        let mut crashes = 0;
        let mut restarts = 0;
        for e in s.events() {
            match &e.fault {
                FaultEvent::CrashNode { node } => {
                    assert!(down.insert(*node), "{node} crashed while already down");
                    crashes += 1;
                }
                FaultEvent::RestartNode { node } => {
                    assert!(down.remove(node), "{node} restarted while up");
                    restarts += 1;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(crashes, restarts, "every crash pairs with a restart");
        assert!(down.is_empty(), "every node is back up by the horizon");
        assert!(crashes > 10, "60 s at 1/s must crash often (got {crashes})");
    }

    #[test]
    fn random_slowdowns_never_overlap_per_node() {
        let config = RandomFaultConfig {
            crash_rate_per_sec: 0.0,
            slow_rate_per_sec: 2.0,
            mean_downtime_secs: 2.0,
            ..RandomFaultConfig::default()
        };
        let s = FaultSchedule::random(5, 60.0, 3, &config);
        let mut active = std::collections::HashSet::new();
        let mut windows = 0;
        for e in s.events() {
            match &e.fault {
                FaultEvent::SlowNode {
                    node,
                    service_factor,
                } if *service_factor > 1.0 => {
                    assert!(active.insert(*node), "{node} slowed while already slow");
                    windows += 1;
                }
                FaultEvent::SlowNode { node, .. } => {
                    assert!(active.remove(node), "{node} restored while nominal");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(active.is_empty(), "every slow-down is restored");
        assert!(
            windows > 5,
            "60 s at 2/s must degrade often (got {windows})"
        );
    }

    #[test]
    fn random_partitions_never_overlap_and_always_heal() {
        let config = RandomFaultConfig {
            crash_rate_per_sec: 0.0,
            partition_rate_per_sec: 0.8,
            mean_partition_secs: 1.5,
            ..RandomFaultConfig::default()
        };
        let s = FaultSchedule::random(11, 40.0, 6, &config);
        let mut active = false;
        let mut partitions = 0;
        for e in s.events() {
            match &e.fault {
                FaultEvent::Partition { groups } => {
                    assert!(!active, "partition while one is active");
                    active = true;
                    partitions += 1;
                    let total: usize = groups.iter().map(|g| g.len()).sum();
                    assert_eq!(total, 6, "groups must cover every node: {groups:?}");
                    assert!(groups.iter().all(|g| !g.is_empty()));
                }
                FaultEvent::HealPartition => {
                    assert!(active, "heal without a partition");
                    active = false;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(!active, "the last partition must heal within the horizon");
        assert!(partitions > 3);
    }

    #[test]
    fn schedules_serialize_round_trip() {
        let s = FaultSchedule::empty()
            .crash_at(0.5, NodeId(2))
            .partition_at(1.0, vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]])
            .heal_at(2.0)
            .join_at(3.0, 0, 1)
            .decommission_at(4.0, NodeId(0));
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn labels_are_human_readable() {
        assert_eq!(
            FaultEvent::CrashNode { node: NodeId(3) }.label(),
            "crash(node3)"
        );
        assert_eq!(FaultEvent::HealPartition.label(), "heal");
        assert_eq!(
            FaultEvent::JoinNode { dc: 1, rack: 2 }.label(),
            "join(dc1/rack2)"
        );
    }
}

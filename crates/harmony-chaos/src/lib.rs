//! Deterministic fault injection and elasticity for Harmony.
//!
//! The paper's evaluation runs on a permanently healthy cluster, but failures
//! are precisely where eventual consistency bites hardest: a crashed replica
//! turns into a pile of hinted mutations that flood its write stage on
//! restart, a partition freezes propagation across the cut, and node churn
//! (join/decommission) moves key ownership under live traffic. This crate
//! provides the two halves needed to reproduce those regimes *without giving
//! up determinism*:
//!
//! * [`schedule`] — a typed fault-event DSL ([`FaultEvent`]) plus a
//!   seed-reproducible schedule ([`FaultSchedule`]): explicit events at
//!   simulated timestamps, and random generators over them parameterised by
//!   rate and seed. The schedule is pure data; the sim engine consumes it as
//!   a first-class event source, so the same seed replays the same faults
//!   event for event.
//! * [`state`] — the cluster-side bookkeeping ([`FaultState`]): per-node
//!   liveness, partition masks, service slow-down factors and membership
//!   (decommissioned nodes leave the ring but keep their slot so `NodeId`s
//!   stay stable), with counters for reporting.
//!
//! An **empty schedule is free**: every mask check degenerates to a constant
//! `true`/`1.0` and no extra events, RNG draws or allocations happen, so a
//! run with `FaultSchedule::empty()` is byte-identical to a run without the
//! chaos layer at all (pinned by `golden_stats_pin_for_seed_20120920`).

pub mod schedule;
pub mod state;

pub use schedule::{FaultEvent, FaultSchedule, RandomFaultConfig, ScheduleError, ScheduledFault};
pub use state::{FaultCounters, FaultState};

//! Key-selection distributions matching the YCSB core generators.
//!
//! YCSB picks the key of each operation from one of a few canonical
//! distributions: uniform, Zipfian (hot keys exist and stay hot), scrambled
//! Zipfian (hot keys exist but are spread over the keyspace), "latest"
//! (recently inserted records are hot), and hotspot. The choice matters for
//! Harmony because key contention concentrates writes, widening the window in
//! which partial-quorum reads observe stale data.

use rand::Rng;

/// The Zipfian constant YCSB uses by default.
pub const YCSB_ZIPFIAN_CONSTANT: f64 = 0.99;

/// A generator of record indices in `[0, item_count)`.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Every record equally likely.
    Uniform {
        /// Number of records.
        item_count: u64,
    },
    /// Zipf-distributed popularity with items ranked by index (item 0 is the
    /// most popular).
    Zipfian(Zipfian),
    /// Zipf-distributed popularity, but the popular items are scattered over
    /// the keyspace by hashing the rank (YCSB's `ScrambledZipfian`).
    ScrambledZipfian(Zipfian),
    /// The most recently inserted records are the most popular (YCSB's
    /// `latest` distribution, used by workload D).
    Latest(Zipfian),
    /// A fraction of operations goes to a small hot set, the rest uniform.
    Hotspot {
        /// Number of records.
        item_count: u64,
        /// Fraction of the keyspace that is hot (e.g. 0.2).
        hot_set_fraction: f64,
        /// Fraction of operations that target the hot set (e.g. 0.8).
        hot_op_fraction: f64,
    },
}

impl KeyChooser {
    /// A uniform chooser over `item_count` records.
    pub fn uniform(item_count: u64) -> Self {
        KeyChooser::Uniform {
            item_count: item_count.max(1),
        }
    }

    /// A Zipfian chooser over `item_count` records with the YCSB constant.
    pub fn zipfian(item_count: u64) -> Self {
        KeyChooser::Zipfian(Zipfian::new(item_count.max(1), YCSB_ZIPFIAN_CONSTANT))
    }

    /// A scrambled-Zipfian chooser over `item_count` records.
    pub fn scrambled_zipfian(item_count: u64) -> Self {
        KeyChooser::ScrambledZipfian(Zipfian::new(item_count.max(1), YCSB_ZIPFIAN_CONSTANT))
    }

    /// A "latest" chooser over `item_count` records.
    pub fn latest(item_count: u64) -> Self {
        KeyChooser::Latest(Zipfian::new(item_count.max(1), YCSB_ZIPFIAN_CONSTANT))
    }

    /// A hotspot chooser.
    pub fn hotspot(item_count: u64, hot_set_fraction: f64, hot_op_fraction: f64) -> Self {
        KeyChooser::Hotspot {
            item_count: item_count.max(1),
            hot_set_fraction: hot_set_fraction.clamp(0.0, 1.0),
            hot_op_fraction: hot_op_fraction.clamp(0.0, 1.0),
        }
    }

    /// The number of records the chooser draws from.
    pub fn item_count(&self) -> u64 {
        match self {
            KeyChooser::Uniform { item_count } => *item_count,
            KeyChooser::Zipfian(z) | KeyChooser::ScrambledZipfian(z) | KeyChooser::Latest(z) => {
                z.item_count()
            }
            KeyChooser::Hotspot { item_count, .. } => *item_count,
        }
    }

    /// Draws a record index in `[0, item_count)`.
    pub fn next_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            KeyChooser::Uniform { item_count } => rng.gen_range(0..*item_count),
            KeyChooser::Zipfian(z) => z.sample(rng),
            KeyChooser::ScrambledZipfian(z) => {
                let rank = z.sample(rng);
                // Spread the popular ranks over the keyspace with a stable hash.
                harmony_sim::rng::mix(rank, 0xD1B5_4A32_D192_ED03) % z.item_count()
            }
            KeyChooser::Latest(z) => {
                // Rank 0 = the newest record.
                let rank = z.sample(rng);
                z.item_count() - 1 - rank
            }
            KeyChooser::Hotspot {
                item_count,
                hot_set_fraction,
                hot_op_fraction,
            } => {
                let hot_items = ((*item_count as f64) * hot_set_fraction).ceil().max(1.0) as u64;
                if rng.gen_bool(*hot_op_fraction) {
                    rng.gen_range(0..hot_items.min(*item_count))
                } else {
                    rng.gen_range(0..*item_count)
                }
            }
        }
    }
}

/// The YCSB Zipfian generator (Gray et al. rejection-free method with
/// precomputed zeta values).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a Zipfian generator over `items` records with skew `theta`.
    pub fn new(items: u64, theta: f64) -> Self {
        let items = items.max(1);
        let zeta2theta = Self::zeta(2, theta);
        let zetan = Self::zeta(items, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of records.
    pub fn item_count(&self) -> u64 {
        self.items
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `[0, items)`, 0 being the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.items == 1 {
            return 0;
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.items as f64) * spread) as u64 % self.items
    }

    /// The zeta normalisation constant for 2 items (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// Formats a record index as a YCSB-style key (`user<index>`).
pub fn record_key(index: u64) -> String {
    format!("user{index}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn histogram(chooser: &KeyChooser, draws: usize) -> HashMap<u64, u64> {
        let mut r = rng();
        let mut h = HashMap::new();
        for _ in 0..draws {
            *h.entry(chooser.next_index(&mut r)).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn all_choosers_stay_in_range() {
        let n = 1000;
        let choosers = [
            KeyChooser::uniform(n),
            KeyChooser::zipfian(n),
            KeyChooser::scrambled_zipfian(n),
            KeyChooser::latest(n),
            KeyChooser::hotspot(n, 0.2, 0.8),
        ];
        let mut r = rng();
        for c in &choosers {
            assert_eq!(c.item_count(), n);
            for _ in 0..10_000 {
                assert!(c.next_index(&mut r) < n);
            }
        }
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let h = histogram(&KeyChooser::uniform(10), 100_000);
        for count in h.values() {
            assert!(*count > 8_000 && *count < 12_000, "count={count}");
        }
    }

    #[test]
    fn zipfian_is_heavily_skewed_towards_low_ranks() {
        let h = histogram(&KeyChooser::zipfian(1000), 100_000);
        let top = h.get(&0).copied().unwrap_or(0);
        let total: u64 = h.values().sum();
        // Rank 0 should receive far more than its uniform share (0.1%).
        assert!(
            top as f64 / total as f64 > 0.05,
            "top share = {}",
            top as f64 / total as f64
        );
    }

    #[test]
    fn scrambled_zipfian_spreads_the_hot_keys() {
        let h = histogram(&KeyChooser::scrambled_zipfian(1000), 100_000);
        // The hottest key is no longer index 0 (it is scattered by the hash)...
        let (hot_key, hot_count) = h.iter().max_by_key(|(_, c)| **c).unwrap();
        assert!(*hot_count as f64 / 100_000.0 > 0.05);
        // ...but some key is still disproportionately hot.
        assert_ne!(
            *hot_key, 0,
            "scrambling should move the hottest key away from rank 0"
        );
    }

    #[test]
    fn latest_prefers_recent_records() {
        let n = 1000;
        let h = histogram(&KeyChooser::latest(n), 100_000);
        let newest = h.get(&(n - 1)).copied().unwrap_or(0);
        let oldest = h.get(&0).copied().unwrap_or(0);
        assert!(newest > oldest * 10, "newest={newest} oldest={oldest}");
    }

    #[test]
    fn hotspot_respects_hot_fraction() {
        let n = 1000;
        let h = histogram(&KeyChooser::hotspot(n, 0.1, 0.9), 100_000);
        let hot: u64 = h.iter().filter(|(k, _)| **k < 100).map(|(_, c)| *c).sum();
        let share = hot as f64 / 100_000.0;
        assert!(share > 0.85 && share < 0.95, "hot share = {share}");
    }

    #[test]
    fn zipfian_handles_single_item() {
        let z = Zipfian::new(1, 0.99);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn zipfian_zeta_values() {
        let z = Zipfian::new(2, 0.99);
        assert!((z.zeta2() - (1.0 + 1.0 / 2f64.powf(0.99))).abs() < 1e-12);
        assert_eq!(z.item_count(), 2);
        assert!((z.theta() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn record_key_format() {
        assert_eq!(record_key(0), "user0");
        assert_eq!(record_key(12345), "user12345");
    }

    #[test]
    fn zero_item_counts_clamp_to_one() {
        assert_eq!(KeyChooser::uniform(0).item_count(), 1);
        assert_eq!(KeyChooser::zipfian(0).item_count(), 1);
        let mut r = rng();
        assert_eq!(KeyChooser::hotspot(0, 0.5, 0.5).next_index(&mut r), 0);
    }
}

//! Workload definitions mirroring the YCSB core workloads.
//!
//! The paper evaluates with workload A (heavy read-update, 50/50) and
//! workload B (read-heavy, ~95/5) — §V.D. The remaining core workloads are
//! provided for completeness so downstream users can exercise Harmony under
//! other access patterns (read-latest, scan-free insert mixes, etc.).

use crate::distributions::KeyChooser;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which key distribution a workload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestDistribution {
    /// Every record equally likely.
    Uniform,
    /// Zipf-distributed popularity.
    Zipfian,
    /// Zipf-distributed popularity scattered over the keyspace.
    ScrambledZipfian,
    /// Recently inserted records are the most popular.
    Latest,
    /// A hot set receives most operations.
    Hotspot,
}

/// The kind of operation a workload step performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Read one row.
    Read,
    /// Update (overwrite one field of) one row.
    Update,
    /// Insert a new row.
    Insert,
    /// Read one row, then write it back (counts as one read and one write).
    ReadModifyWrite,
}

/// A YCSB-style workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Short name used in reports (e.g. `"workload-a"`).
    pub name: String,
    /// Fraction of read operations.
    pub read_proportion: f64,
    /// Fraction of update operations.
    pub update_proportion: f64,
    /// Fraction of insert operations.
    pub insert_proportion: f64,
    /// Fraction of read-modify-write operations.
    pub rmw_proportion: f64,
    /// Key-popularity distribution.
    pub request_distribution: RequestDistribution,
    /// For [`RequestDistribution::Hotspot`]: fraction of the keyspace that is
    /// hot (YCSB's `hotspotdatafraction`; ignored by other distributions).
    pub hotspot_hot_fraction: f64,
    /// For [`RequestDistribution::Hotspot`]: fraction of operations that
    /// target the hot set (YCSB's `hotspotopnfraction`).
    pub hotspot_op_fraction: f64,
    /// Number of records loaded before the transaction phase.
    pub record_count: u64,
    /// Number of fields per record.
    pub field_count: usize,
    /// Size of each field value in bytes.
    pub field_size: usize,
}

impl WorkloadSpec {
    /// YCSB workload A: update heavy, 50% reads / 50% updates, Zipfian.
    /// This is the paper's main workload.
    pub fn workload_a(record_count: u64) -> Self {
        WorkloadSpec {
            name: "workload-a".into(),
            read_proportion: 0.5,
            update_proportion: 0.5,
            insert_proportion: 0.0,
            rmw_proportion: 0.0,
            request_distribution: RequestDistribution::Zipfian,
            hotspot_hot_fraction: 0.2,
            hotspot_op_fraction: 0.8,
            record_count,
            field_count: 10,
            field_size: 100,
        }
    }

    /// YCSB workload B: read heavy, 95% reads / 5% updates, Zipfian.
    /// Used by the paper for the Figure 4(a) comparison.
    pub fn workload_b(record_count: u64) -> Self {
        WorkloadSpec {
            name: "workload-b".into(),
            read_proportion: 0.95,
            update_proportion: 0.05,
            ..Self::workload_a(record_count)
        }
    }

    /// YCSB workload C: read only.
    pub fn workload_c(record_count: u64) -> Self {
        WorkloadSpec {
            name: "workload-c".into(),
            read_proportion: 1.0,
            update_proportion: 0.0,
            ..Self::workload_a(record_count)
        }
    }

    /// YCSB workload D: read latest, 95% reads / 5% inserts.
    pub fn workload_d(record_count: u64) -> Self {
        WorkloadSpec {
            name: "workload-d".into(),
            read_proportion: 0.95,
            update_proportion: 0.0,
            insert_proportion: 0.05,
            request_distribution: RequestDistribution::Latest,
            ..Self::workload_a(record_count)
        }
    }

    /// YCSB workload F: read-modify-write, 50% reads / 50% RMW.
    pub fn workload_f(record_count: u64) -> Self {
        WorkloadSpec {
            name: "workload-f".into(),
            read_proportion: 0.5,
            update_proportion: 0.0,
            rmw_proportion: 0.5,
            ..Self::workload_a(record_count)
        }
    }

    /// Looks a core workload up by its letter (`a`, `b`, `c`, `d`, `f`).
    pub fn by_letter(letter: char, record_count: u64) -> Option<Self> {
        match letter.to_ascii_lowercase() {
            'a' => Some(Self::workload_a(record_count)),
            'b' => Some(Self::workload_b(record_count)),
            'c' => Some(Self::workload_c(record_count)),
            'd' => Some(Self::workload_d(record_count)),
            'f' => Some(Self::workload_f(record_count)),
            _ => None,
        }
    }

    /// A custom read/update mix with the given read fraction, Zipfian keys.
    pub fn read_update_mix(name: impl Into<String>, read_fraction: f64, record_count: u64) -> Self {
        let read_fraction = read_fraction.clamp(0.0, 1.0);
        WorkloadSpec {
            name: name.into(),
            read_proportion: read_fraction,
            update_proportion: 1.0 - read_fraction,
            ..Self::workload_a(record_count)
        }
    }

    /// Validates that the proportions form a probability distribution.
    pub fn validate(&self) -> Result<(), String> {
        let total = self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion;
        if !(0.999..=1.001).contains(&total) {
            return Err(format!(
                "operation proportions sum to {total}, expected 1.0"
            ));
        }
        if [
            self.read_proportion,
            self.update_proportion,
            self.insert_proportion,
            self.rmw_proportion,
        ]
        .iter()
        .any(|p| *p < 0.0)
        {
            return Err("operation proportions must be non-negative".into());
        }
        if self.record_count == 0 {
            return Err("record_count must be at least 1".into());
        }
        if self.field_count == 0 || self.field_size == 0 {
            return Err("field_count and field_size must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.hotspot_hot_fraction)
            || !(0.0..=1.0).contains(&self.hotspot_op_fraction)
        {
            return Err("hotspot fractions must be within [0, 1]".into());
        }
        Ok(())
    }

    /// Builds the key chooser for this workload.
    pub fn key_chooser(&self) -> KeyChooser {
        match self.request_distribution {
            RequestDistribution::Uniform => KeyChooser::uniform(self.record_count),
            RequestDistribution::Zipfian => KeyChooser::zipfian(self.record_count),
            RequestDistribution::ScrambledZipfian => {
                KeyChooser::scrambled_zipfian(self.record_count)
            }
            RequestDistribution::Latest => KeyChooser::latest(self.record_count),
            RequestDistribution::Hotspot => KeyChooser::hotspot(
                self.record_count,
                self.hotspot_hot_fraction,
                self.hotspot_op_fraction,
            ),
        }
    }

    /// A skew sweep variant of this workload: same operation mix, different
    /// key-popularity distribution (hotspot parameters apply only to
    /// [`RequestDistribution::Hotspot`]). The name gains a `-<skew>` suffix.
    pub fn with_distribution(mut self, distribution: RequestDistribution) -> Self {
        self.request_distribution = distribution;
        let suffix = match distribution {
            RequestDistribution::Uniform => "uniform",
            RequestDistribution::Zipfian => "zipfian",
            RequestDistribution::ScrambledZipfian => "scrambled",
            RequestDistribution::Latest => "latest",
            RequestDistribution::Hotspot => "hotspot",
        };
        self.name = format!("{}-{suffix}", self.name);
        self
    }

    /// Draws the next operation kind.
    pub fn next_operation<R: Rng + ?Sized>(&self, rng: &mut R) -> Operation {
        let x: f64 = rng.gen();
        if x < self.read_proportion {
            Operation::Read
        } else if x < self.read_proportion + self.update_proportion {
            Operation::Update
        } else if x < self.read_proportion + self.update_proportion + self.insert_proportion {
            Operation::Insert
        } else {
            Operation::ReadModifyWrite
        }
    }

    /// The average size in bytes of one update payload (a single field).
    pub fn update_size_bytes(&self) -> f64 {
        self.field_size as f64 + 8.0
    }

    /// The size in bytes of one full row.
    pub fn row_size_bytes(&self) -> usize {
        self.field_count * (self.field_size + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn core_workloads_are_valid() {
        for letter in ['a', 'b', 'c', 'd', 'f'] {
            let w = WorkloadSpec::by_letter(letter, 1000).unwrap();
            assert!(w.validate().is_ok(), "workload {letter}");
        }
        assert!(WorkloadSpec::by_letter('z', 10).is_none());
        assert!(WorkloadSpec::by_letter('E', 10).is_none());
    }

    #[test]
    fn workload_a_is_the_papers_heavy_read_update_mix() {
        let w = WorkloadSpec::workload_a(1000);
        assert_eq!(w.read_proportion, 0.5);
        assert_eq!(w.update_proportion, 0.5);
        assert_eq!(w.request_distribution, RequestDistribution::Zipfian);
    }

    #[test]
    fn workload_b_is_read_heavy() {
        let w = WorkloadSpec::workload_b(1000);
        assert_eq!(w.read_proportion, 0.95);
        assert!((w.update_proportion - 0.05).abs() < 1e-12);
    }

    #[test]
    fn operation_mix_respects_proportions() {
        let w = WorkloadSpec::workload_a(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut reads = 0;
        let mut updates = 0;
        for _ in 0..100_000 {
            match w.next_operation(&mut rng) {
                Operation::Read => reads += 1,
                Operation::Update => updates += 1,
                other => panic!("unexpected op {other:?} for workload A"),
            }
        }
        let read_share = reads as f64 / (reads + updates) as f64;
        assert!((read_share - 0.5).abs() < 0.01, "read share = {read_share}");
    }

    #[test]
    fn workload_d_produces_inserts() {
        let w = WorkloadSpec::workload_d(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut inserts = 0;
        for _ in 0..10_000 {
            if w.next_operation(&mut rng) == Operation::Insert {
                inserts += 1;
            }
        }
        assert!(inserts > 300 && inserts < 700, "inserts = {inserts}");
    }

    #[test]
    fn workload_f_produces_rmw() {
        let w = WorkloadSpec::workload_f(1000);
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..10_000).any(|_| w.next_operation(&mut rng) == Operation::ReadModifyWrite));
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut w = WorkloadSpec::workload_a(1000);
        w.read_proportion = 0.9; // now sums to 1.4
        assert!(w.validate().is_err());

        let mut w = WorkloadSpec::workload_a(1000);
        w.record_count = 0;
        assert!(w.validate().is_err());

        let mut w = WorkloadSpec::workload_a(1000);
        w.field_size = 0;
        assert!(w.validate().is_err());

        let mut w = WorkloadSpec::workload_a(1000);
        w.read_proportion = -0.5;
        w.update_proportion = 1.5;
        assert!(w.validate().is_err());
    }

    #[test]
    fn custom_mix_clamps_and_validates() {
        let w = WorkloadSpec::read_update_mix("custom", 0.8, 500);
        assert!(w.validate().is_ok());
        assert!((w.update_proportion - 0.2).abs() < 1e-12);
        let w = WorkloadSpec::read_update_mix("all-reads", 2.0, 500);
        assert_eq!(w.read_proportion, 1.0);
    }

    #[test]
    fn sizes_reflect_field_configuration() {
        let w = WorkloadSpec::workload_a(10);
        assert_eq!(w.row_size_bytes(), 10 * 108);
        assert!((w.update_size_bytes() - 108.0).abs() < 1e-12);
    }

    #[test]
    fn key_chooser_matches_distribution() {
        let w = WorkloadSpec::workload_a(123);
        assert_eq!(w.key_chooser().item_count(), 123);
        let d = WorkloadSpec::workload_d(77);
        assert_eq!(d.key_chooser().item_count(), 77);
    }

    #[test]
    fn hotspot_parameters_flow_into_the_chooser() {
        let mut w = WorkloadSpec::workload_a(1000).with_distribution(RequestDistribution::Hotspot);
        w.hotspot_hot_fraction = 0.1;
        w.hotspot_op_fraction = 0.9;
        assert!(w.validate().is_ok());
        assert_eq!(w.name, "workload-a-hotspot");
        let mut rng = StdRng::seed_from_u64(9);
        let chooser = w.key_chooser();
        let hot: u64 = (0..50_000)
            .filter(|_| chooser.next_index(&mut rng) < 100)
            .count() as u64;
        let share = hot as f64 / 50_000.0;
        assert!(share > 0.85 && share < 0.95, "hot share = {share}");
        // Out-of-range fractions fail validation.
        w.hotspot_op_fraction = 1.5;
        assert!(w.validate().is_err());
    }

    #[test]
    fn with_distribution_renames_and_switches() {
        let u = WorkloadSpec::workload_a(10).with_distribution(RequestDistribution::Uniform);
        assert_eq!(u.name, "workload-a-uniform");
        assert_eq!(u.request_distribution, RequestDistribution::Uniform);
        assert_eq!(u.read_proportion, 0.5);
    }
}

//! Multi-core sharded runtime: one event loop per keyspace stripe, with
//! batched cross-shard delivery at the monitoring tick.
//!
//! The classic [`Runner`](crate::runner::Runner) turns the whole simulated
//! cluster on one thread. This module splits the *keyspace* into `S` strided
//! stripes ([`ShardPartition`]) and runs one complete, independent
//! sub-simulation per stripe — its own event heap, storage engine slice,
//! placement cache, client sessions and heavy-hitter sketch — on its own OS
//! thread. Replica sets are per-key, so two operations on different stripes
//! share no protocol state at all; the only cross-shard information flow is
//! the control plane:
//!
//! * every monitoring tick, each shard publishes a [`ShardReport`] (cumulative
//!   totals, write-stage telemetry, replica backlogs, membership view and its
//!   cumulative space-saving sketch translated to *global* key ids);
//! * the coordinator folds the reports **in shard-index order** into a
//!   [`MergedProbe`] — one coherent cluster view — ticks the *single* real
//!   [`AdaptiveController`] on it, and broadcasts a [`ShardDirective`]
//!   (default read level, write level, escalated hot keys) back;
//! * each shard applies the directive to a local level table its issue paths
//!   consult — no locks, no atomics anywhere on the op path.
//!
//! The exchange runs over [`harmony_sim::barrier::ShardBarrier`] (crossbeam
//! channels), which makes it a deterministic barrier: each shard is a pure
//! function of its seed and the directive sequence, the directive sequence is
//! a pure function of the ordered report sequences, so thread scheduling
//! cannot leak into the results — same seed + same shard count ⇒
//! byte-identical stats. `shards = 1` short-circuits to the classic
//! single-loop runner and reproduces the golden-stats pin exactly.

use crate::distributions::record_key;
use crate::runner::{
    run_experiment_with_faults, run_experiment_with_obs, ExperimentResult, ExperimentSpec, Phase,
    PhaseResult, Runner, RunnerEvent, CHAOS_OP_TIMEOUT,
};
use crate::stats::RunStats;
use harmony_adaptive::config::ControllerConfig;
use harmony_adaptive::controller::AdaptiveController;
use harmony_adaptive::policy::{ConsistencyPolicy, StaticPolicy};
use harmony_chaos::{FaultCounters, FaultSchedule};
use harmony_monitor::heavy_hitters::SpaceSavingSketch;
use harmony_monitor::probe::ClusterProbe;
use harmony_obs::registry::series_name;
use harmony_obs::{FlightRecorder, MetricsRegistry, ObsConfig, ObsReport};
use harmony_sim::barrier::{ShardBarrier, ShardWorker};
use harmony_sim::clock::SimTime;
use harmony_sim::profiles::ClusterProfile;
use harmony_store::cluster::ClusterTotals;
use harmony_store::config::StoreConfig;
use harmony_store::consistency::ConsistencyLevel;
use harmony_store::keys::KeyId;
use harmony_store::node::WriteStageTelemetry;
use harmony_store::shard::ShardPartition;
use std::collections::{BTreeMap, HashMap};

/// One shard's per-tick publication to the coordinator. All key ids inside
/// are *global* (the shard translates before sending), so the coordinator
/// needs no per-shard key table — global id `g` simply names `record_key(g)`.
pub(crate) struct ShardReport {
    /// Virtual time of this report on the shard's clock.
    at: SimTime,
    /// True for the shard's final report: its loop has exited and these
    /// cumulative figures are frozen.
    finished: bool,
    /// Cumulative client-visible completed reads.
    total_reads: u64,
    /// Cumulative client-visible completed writes.
    total_writes: u64,
    /// This tick's ping-style network probe (ms).
    probe_latency_ms: f64,
    /// Node slots in this shard's topology (identical across shards).
    node_count: usize,
    /// Serving nodes in this shard's membership view.
    live_nodes: usize,
    /// Cumulative fault-event count — the freshness stamp of `live_nodes`.
    fault_epoch: u64,
    /// Mean apply-delay backlog (ms) over this shard's serving replicas.
    mutation_backlog_ms: f64,
    /// Per-serving-replica backlog depths (ms).
    replica_backlogs: Vec<f64>,
    /// Per-node-slot write-stage telemetry (cumulative counters).
    telemetry: Vec<WriteStageTelemetry>,
    /// Cumulative space-saving sketch over this shard's write keys, in
    /// global ids.
    sketch: SpaceSavingSketch,
    /// Per-key mutation backlog (ms) for every sketch-tracked key.
    hot_backlogs: HashMap<KeyId, f64>,
}

/// The coordinator's per-tick broadcast: the consistency levels every shard
/// applies until the next tick. Hot entries carry global ids; each shard
/// keeps only the stripe it owns.
#[derive(Clone)]
pub(crate) struct ShardDirective {
    default_read: ConsistencyLevel,
    write: ConsistencyLevel,
    hot: Vec<(KeyId, ConsistencyLevel)>,
}

/// What one shard thread hands back when its loop exits.
pub(crate) struct ShardOutcome {
    stats: RunStats,
    phase_results: Vec<PhaseResult>,
    read_level_histogram: BTreeMap<usize, u64>,
    totals: ClusterTotals,
    fault_counters: FaultCounters,
    /// This shard's metrics series (empty when metrics are off); the
    /// coordinator folds them like sketches — counters add, gauges max,
    /// histograms merge bucket-wise.
    registry: MetricsRegistry,
    /// This shard's flight recorder (empty when tracing is off).
    recorder: FlightRecorder,
}

/// The merged cluster view the coordinator's controller ticks against: the
/// latest report of every shard, folded on demand. Merging is pure and
/// order-fixed (shard-index order), so the controller's decision timeline is
/// deterministic.
pub(crate) struct MergedProbe<'a> {
    reports: &'a [Option<ShardReport>],
    shards: usize,
    node_concurrency: usize,
}

impl<'a> MergedProbe<'a> {
    fn live(&self) -> impl Iterator<Item = &ShardReport> {
        self.reports.iter().flatten()
    }

    /// The report carrying the freshest membership view: highest fault
    /// epoch, highest shard index as the deterministic tie-break. A
    /// mid-sweep join/decommission can land between two shard merges; the
    /// monitor must normalise per-replica rates by the *post-change* live
    /// view, not whichever shard happened to report first.
    fn freshest(&self) -> Option<&ShardReport> {
        self.reports
            .iter()
            .flatten()
            .enumerate()
            .max_by_key(|(i, r)| (r.fault_epoch, *i))
            .map(|(_, r)| r)
    }
}

impl<'a> ClusterProbe for MergedProbe<'a> {
    fn total_reads(&self) -> u64 {
        self.live().map(|r| r.total_reads).sum()
    }

    fn total_writes(&self) -> u64 {
        self.live().map(|r| r.total_writes).sum()
    }

    fn probe_latency_ms(&self) -> f64 {
        let (sum, n) = self
            .live()
            .fold((0.0, 0usize), |(s, n), r| (s + r.probe_latency_ms, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn node_count(&self) -> usize {
        self.live().map(|r| r.node_count).max().unwrap_or(0)
    }

    fn live_node_count(&self) -> usize {
        self.freshest().map(|r| r.live_nodes).unwrap_or(0)
    }

    fn mutation_backlog_ms(&self) -> f64 {
        let (sum, n) = self.live().fold((0.0, 0usize), |(s, n), r| {
            (s + r.mutation_backlog_ms, n + 1)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn replica_backlog_ms(&self) -> Vec<f64> {
        // Each shard models its own per-node queues, so the cluster has
        // `shards × nodes` virtual replica queues; concatenating (in shard
        // order) gives the monitor the true cluster-wide backlog spread.
        let mut all = Vec::new();
        for r in self.live() {
            all.extend_from_slice(&r.replica_backlogs);
        }
        all
    }

    fn write_stage_telemetry(&self) -> Vec<WriteStageTelemetry> {
        // Sum per node slot across shards: slot `i` aggregates every
        // shard's queue on physical node `i`, so cluster-wide arrival and
        // service totals (what the estimator differences) are exact.
        let mut merged: Vec<WriteStageTelemetry> = Vec::new();
        for r in self.live() {
            if merged.len() < r.telemetry.len() {
                merged.resize(r.telemetry.len(), WriteStageTelemetry::default());
            }
            for (slot, t) in merged.iter_mut().zip(r.telemetry.iter()) {
                slot.arrivals += t.arrivals;
                slot.completed += t.completed;
                slot.service_ms_total += t.service_ms_total;
                slot.service_ms_sq_total += t.service_ms_sq_total;
                slot.queued += t.queued;
                slot.busy += t.busy;
            }
        }
        merged
    }

    fn write_stage_concurrency(&self) -> usize {
        // Every physical node runs one service group *per shard*: the
        // effective slot count behind the summed telemetry is S × C, and
        // reporting it keeps the per-slot-group utilisation the M/G/1 model
        // sees equal to what each shard's queue actually experiences.
        (self.node_concurrency * self.shards).max(1)
    }

    fn write_key_sketches(&self) -> Option<Vec<SpaceSavingSketch>> {
        Some(self.live().map(|r| r.sketch.clone()).collect())
    }

    fn per_key_backlog_ms(&self, keys: &[KeyId]) -> Vec<f64> {
        keys.iter()
            .map(|k| {
                let owner = k.index() % self.shards;
                self.reports[owner]
                    .as_ref()
                    .and_then(|r| r.hot_backlogs.get(k).copied())
                    .unwrap_or(0.0)
            })
            .collect()
    }

    fn key_name(&self, key: KeyId) -> String {
        // Global id `g` is the global record index by construction — loads
        // and inserts both — so no coordinator-side key table exists at all
        // (a 10M-record keyspace costs the control plane zero bytes).
        record_key(key.index() as u64)
    }

    fn fault_epoch(&self) -> u64 {
        self.live().map(|r| r.fault_epoch).max().unwrap_or(0)
    }
}

/// This shard's slice of the experiment: thread count and operation targets
/// split evenly (remainders to the lowest stripes), with every shard keeping
/// at least one session and one operation per phase so its event loop stays
/// closed-loop.
fn split_spec(spec: &ExperimentSpec, index: usize, shards: usize) -> ExperimentSpec {
    let phases = spec
        .phases
        .iter()
        .map(|p| {
            let threads = (p.threads / shards + usize::from(index < p.threads % shards)).max(1);
            let ops = (p.operations / shards as u64
                + u64::from((index as u64) < p.operations % shards as u64))
            .max(1);
            Phase::new(threads, ops)
        })
        .collect();
    ExperimentSpec {
        phases,
        ..spec.clone()
    }
}

impl Runner {
    /// One shard's event loop: the classic run loop with the controller tick
    /// replaced by the barrier exchange. Returns the shard's accumulated
    /// output; the coordinator merges all of them.
    pub(crate) fn run_shard(
        mut self,
        worker: ShardWorker<ShardReport, ShardDirective>,
        sketch_capacity: usize,
    ) -> ShardOutcome {
        let deadline = SimTime::from_secs_f64(self.spec.max_virtual_secs);
        self.stats.started_at = self.sim.now();
        self.phase_stats.started_at = self.sim.now();
        let interval = self.controller.interval();
        let mut sketch = SpaceSavingSketch::new(sketch_capacity);

        // Initial exchange at t0 — the sharded analogue of the initial
        // controller tick — so the first operations already run at levels
        // decided on an (idle) merged observation.
        let report = self.shard_report(&mut sketch, false);
        let Some(directive) = worker.exchange(report) else {
            return self.shard_outcome();
        };
        self.apply_directive(&directive);
        self.sim.schedule_in(interval, RunnerEvent::MonitorTick);

        let chaos = !self.faults.is_empty();
        if chaos {
            // Every shard replays the full schedule: faults hit physical
            // nodes, and each shard models its own view of every node.
            let scheduled: Vec<_> = self.faults.events().to_vec();
            for fault in scheduled {
                self.sim
                    .schedule_at(fault.at, RunnerEvent::Fault(fault.fault));
            }
        }

        for s in 0..self.phase().threads.min(self.session_active.len()) {
            self.issue_next_op(s);
        }

        while self.current_phase < self.spec.phases.len() && self.sim.now() < deadline {
            let Some((_, event)) = self.sim.next() else {
                break;
            };
            match event {
                RunnerEvent::MonitorTick => {
                    let report = self.shard_report(&mut sketch, false);
                    let Some(directive) = worker.exchange(report) else {
                        break;
                    };
                    self.apply_directive(&directive);
                    self.sim.schedule_in(interval, RunnerEvent::MonitorTick);
                    if chaos {
                        self.cluster
                            .expire_stalled_ops(CHAOS_OP_TIMEOUT, &mut self.sim);
                    }
                }
                RunnerEvent::Fault(fault) => {
                    self.cluster.apply_fault(&fault, &mut self.sim);
                }
                // The sharded loop does not drive client retries, hedging or
                // anti-entropy yet (the classic runner does); these events
                // are never scheduled here.
                RunnerEvent::Retry(_)
                | RunnerEvent::HedgeCheck(_)
                | RunnerEvent::AntiEntropyTick => {}
                RunnerEvent::Store(store_event) => {
                    if let Some(completion) = self.cluster.handle(store_event, &mut self.sim) {
                        self.on_completion(completion);
                    }
                }
            }
        }
        self.stats.ended_at = self.sim.now();
        // Final (frozen) report so the coordinator's later merges still see
        // this shard's totals, then drop out of the barrier.
        worker.finish(self.shard_report(&mut sketch, true));
        self.shard_outcome()
    }

    /// Builds this tick's report: drain the write-key samples into the
    /// cumulative sketch (translating local → global ids) and snapshot every
    /// cluster signal the merged probe needs.
    fn shard_report(&mut self, sketch: &mut SpaceSavingSketch, finished: bool) -> ShardReport {
        let ctx = self.shard.as_ref().expect("sharded runner has a context");
        for local in self.cluster.drain_write_key_samples() {
            sketch.observe(ctx.local_to_global_key(local));
        }
        let globals: Vec<KeyId> = sketch.entries().iter().map(|e| e.key).collect();
        let key_count = self.cluster.key_count();
        let locals: Vec<KeyId> = globals
            .iter()
            .map(|g| {
                ctx.global_to_local_key(*g, key_count)
                    .expect("sketch-tracked keys are owned locally")
            })
            .collect();
        let backlogs = self.cluster.per_key_backlog_ms(&locals);
        let hot_backlogs = globals.iter().copied().zip(backlogs).collect();
        ShardReport {
            at: self.sim.now(),
            finished,
            total_reads: self.cluster.totals().reads_completed,
            total_writes: self.cluster.totals().writes_completed,
            probe_latency_ms: self.cluster.probe_network_latency_ms(8),
            node_count: self.cluster.node_count(),
            live_nodes: self.cluster.live_node_count(),
            fault_epoch: self.cluster.fault_state().counters().total(),
            mutation_backlog_ms: self.cluster.mutation_backlog_ms(),
            replica_backlogs: self.cluster.replica_backlog_ms(),
            telemetry: self.cluster.write_stage_telemetry(),
            sketch: sketch.clone(),
            hot_backlogs,
        }
    }

    /// Installs the coordinator's levels into the local table the issue
    /// paths consult; hot entries not owned (or not yet interned) here are
    /// simply skipped — their owner shard applies them.
    fn apply_directive(&mut self, directive: &ShardDirective) {
        let key_count = self.cluster.key_count();
        let ctx = self.shard.as_mut().expect("sharded runner has a context");
        ctx.default_read = directive.default_read;
        ctx.write = directive.write;
        ctx.hot.clear();
        for (global, level) in &directive.hot {
            if let Some(local) = ctx.global_to_local_key(*global, key_count) {
                ctx.hot.insert(local, *level);
            }
        }
    }

    fn shard_outcome(mut self) -> ShardOutcome {
        let registry = MetricsRegistry::new();
        if self.obs.metrics {
            self.cluster.export_metrics(&registry);
            registry
                .histogram("harmony_client_read_latency_us")
                .merge_from(&self.stats.read_latency);
            registry
                .histogram("harmony_client_write_latency_us")
                .merge_from(&self.stats.write_latency);
            registry
                .counter("harmony_client_operations_total")
                .set_total(self.stats.operations);
        }
        let recorder = self
            .cluster
            .take_obs()
            .map(|o| o.recorder)
            .unwrap_or_default();
        ShardOutcome {
            totals: self.cluster.totals(),
            fault_counters: self.cluster.fault_state().counters(),
            stats: self.stats,
            phase_results: self.phase_results,
            read_level_histogram: self.read_level_histogram,
            registry,
            recorder,
        }
    }
}

/// Runs one experiment across `shards` per-stripe event loops (one OS thread
/// each) with the control plane merged at every monitoring tick.
///
/// `shards <= 1` delegates to [`run_experiment_with_faults`] — byte-identical
/// to the classic single-loop runner, golden pin included. For `shards > 1`
/// the run is deterministic in (seed, shard count): per-shard RNG streams
/// derive from `mix(seed, stripe)` and all cross-shard data flows through the
/// ordered barrier exchange, so repeated runs produce identical stats.
pub fn run_sharded_experiment(
    profile: &ClusterProfile,
    store_config: StoreConfig,
    controller_config: ControllerConfig,
    policy: Box<dyn ConsistencyPolicy>,
    spec: ExperimentSpec,
    faults: FaultSchedule,
    shards: usize,
) -> ExperimentResult {
    if shards <= 1 {
        return run_experiment_with_faults(
            profile,
            store_config,
            controller_config,
            policy,
            spec,
            faults,
        );
    }
    run_sharded_experiment_with_obs(
        profile,
        store_config,
        controller_config,
        policy,
        spec,
        faults,
        shards,
        ObsConfig::off(),
    )
    .0
}

/// [`run_sharded_experiment`] with observability attached: every shard runs
/// its own tracer/flight recorder and exports a per-shard metrics registry;
/// the coordinator merges them the way shard sketches merge (counters add,
/// gauges take the worst shard, histograms fold bucket-wise) and owns the
/// decision audit log — the single real controller lives there. An all-off
/// config yields a result byte-identical to [`run_sharded_experiment`] and
/// an empty report.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_experiment_with_obs(
    profile: &ClusterProfile,
    store_config: StoreConfig,
    controller_config: ControllerConfig,
    policy: Box<dyn ConsistencyPolicy>,
    spec: ExperimentSpec,
    faults: FaultSchedule,
    shards: usize,
    obs: ObsConfig,
) -> (ExperimentResult, ObsReport) {
    if shards <= 1 {
        return run_experiment_with_obs(
            profile,
            store_config,
            controller_config,
            policy,
            spec,
            faults,
            obs,
        );
    }
    spec.validate()
        .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));

    let rf = store_config.replication_factor;
    let sketch_capacity = controller_config.monitor.hot_key_capacity;
    let node_concurrency = store_config.node_concurrency;
    let mut controller = AdaptiveController::new(controller_config, rf, policy);
    if obs.decision_audit {
        controller.enable_decision_audit();
    }
    // Shards trace and export metrics locally; the decision audit belongs to
    // the coordinator (per-shard controllers are cadence placeholders that
    // never decide a level, so a shard-side audit would record nothing).
    let shard_obs = ObsConfig {
        decision_audit: false,
        ..obs
    };

    // Build every shard runner up front (deterministic, single-threaded).
    let mut runners = Vec::with_capacity(shards);
    for index in 0..shards {
        let partition = ShardPartition::new(index, shards);
        let shard_spec = split_spec(&spec, index, shards);
        // The per-shard controller is a cadence placeholder: levels come by
        // directive, so the policy never decides anything.
        let placeholder =
            AdaptiveController::new(controller_config, rf, Box::new(StaticPolicy::Eventual));
        runners.push(
            Runner::new_sharded(
                profile,
                store_config.clone(),
                placeholder,
                shard_spec,
                partition,
            )
            .with_faults(faults.clone())
            .with_obs(shard_obs),
        );
    }

    let (mut barrier, workers) = ShardBarrier::<ShardReport, ShardDirective>::new(shards);
    let mut outcomes: Vec<Option<ShardOutcome>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        outcomes.push(None);
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = runners
            .into_iter()
            .zip(workers)
            .map(|(runner, worker)| scope.spawn(move || runner.run_shard(worker, sketch_capacity)))
            .collect();

        // Coordinator rounds: collect (ordered) → merge → tick → broadcast,
        // until every shard has sent its final report.
        let mut latest: Vec<Option<ShardReport>> = (0..shards).map(|_| None).collect();
        while barrier.active_count() > 0 {
            let round = barrier.collect();
            for (i, report) in round.into_iter().enumerate() {
                if let Some(report) = report {
                    if report.finished {
                        barrier.retire(i);
                    }
                    latest[i] = Some(report);
                }
            }
            if barrier.active_count() == 0 {
                break;
            }
            let now = latest
                .iter()
                .flatten()
                .map(|r| r.at)
                .max()
                .unwrap_or(SimTime::ZERO);
            let probe = MergedProbe {
                reports: &latest,
                shards,
                node_concurrency,
            };
            controller.tick(now, &probe);
            let directive = ShardDirective {
                default_read: controller.current_read_level(),
                write: controller.current_write_level(),
                hot: controller
                    .hot_set()
                    .iter()
                    .map(|h| (h.key_id, controller.read_level_for(h.key_id)))
                    .collect(),
            };
            barrier.broadcast_with(|_| directive.clone());
        }

        for (i, handle) in handles.into_iter().enumerate() {
            outcomes[i] = Some(handle.join().expect("shard thread panicked"));
        }
    });

    // Deterministic merge, shard-index order throughout.
    let outcomes: Vec<ShardOutcome> = outcomes.into_iter().map(Option::unwrap).collect();
    let mut stats = RunStats {
        started_at: SimTime::from_secs_f64(f64::MAX),
        ..RunStats::default()
    };
    let mut read_level_histogram: BTreeMap<usize, u64> = BTreeMap::new();
    let mut totals = ClusterTotals::default();
    let mut phase_results: Vec<PhaseResult> = spec
        .phases
        .iter()
        .map(|p| PhaseResult {
            phase: *p,
            stats: RunStats {
                started_at: SimTime::from_secs_f64(f64::MAX),
                ..RunStats::default()
            },
        })
        .collect();
    // Fold the per-shard observability output like the stats: registries
    // merge (counters add, gauges max, histograms bucket-wise), recorders
    // keep the globally slowest K and the aborted pool, shard-labelled
    // per-shard op counters record the split.
    let registry = MetricsRegistry::new();
    let mut recorder = FlightRecorder::new(obs.keep_slowest as usize, obs.abort_cap as usize);
    for (i, outcome) in outcomes.iter().enumerate() {
        if obs.metrics {
            registry.merge_from(&outcome.registry);
            registry
                .counter(&series_name(
                    "harmony_shard_operations_total",
                    &[("shard", &i.to_string())],
                ))
                .set_total(outcome.stats.operations);
        }
        if obs.tracing_enabled() {
            recorder.merge_from(&outcome.recorder);
        }
    }

    for outcome in &outcomes {
        stats.absorb(&outcome.stats);
        for (level, count) in &outcome.read_level_histogram {
            *read_level_histogram.entry(*level).or_insert(0) += count;
        }
        totals.reads_submitted += outcome.totals.reads_submitted;
        totals.writes_submitted += outcome.totals.writes_submitted;
        totals.reads_completed += outcome.totals.reads_completed;
        totals.writes_completed += outcome.totals.writes_completed;
        totals.stale_reads += outcome.totals.stale_reads;
        totals.repairs_issued += outcome.totals.repairs_issued;
        totals.ops_aborted += outcome.totals.ops_aborted;
        totals.protocol_drops += outcome.totals.protocol_drops;
        for (i, pr) in outcome.phase_results.iter().enumerate() {
            if let Some(slot) = phase_results.get_mut(i) {
                slot.stats.absorb(&pr.stats);
            }
        }
    }
    // Shards that never closed a phase (deadline) leave empty slots; drop
    // phases nobody completed so the result mirrors the classic runner.
    phase_results.retain(|pr| pr.stats.operations > 0);

    if obs.metrics {
        // Coordinator-side series: the single real controller's decision
        // outcomes and the merged monitor view.
        controller.export_metrics(&registry);
    }
    let report = ObsReport {
        registry,
        recorder,
        audit: controller.audit_log().to_vec(),
    };

    let result = ExperimentResult {
        policy: controller.policy_name(),
        workload: spec.workload.name.clone(),
        profile: profile.name.clone(),
        stats,
        phase_results,
        decisions: controller.decisions().to_vec(),
        read_level_histogram,
        cluster_totals: totals,
        hot_set: controller.hot_set().to_vec(),
        // Every shard applies the identical schedule to an identical
        // membership; shard 0's counters are the cluster's.
        fault_counters: outcomes
            .first()
            .map(|o| o.fault_counters)
            .unwrap_or_default(),
        // Cross-shard divergence is not sampled (each shard only sees its
        // own stripe); the classic runner carries the self-healing metric.
        divergence_timeline: Vec::new(),
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadSpec;
    use harmony_adaptive::policy::HarmonyPolicy;
    use harmony_sim::profiles;

    fn spec(threads: usize, ops: u64, records: u64) -> ExperimentSpec {
        let mut workload = WorkloadSpec::workload_a(records);
        workload.field_count = 2;
        workload.field_size = 16;
        ExperimentSpec {
            workload,
            phases: vec![Phase::new(threads, ops)],
            seed: 20120920,
            dual_read_measurement: false,
            hot_key_prefix: 8,
            max_virtual_secs: 600.0,
        }
    }

    fn run(shards: usize) -> ExperimentResult {
        run_sharded_experiment(
            &profiles::grid5000_with_nodes(6),
            StoreConfig {
                replication_factor: 3,
                ..StoreConfig::default()
            },
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
            spec(8, 12_000, 500),
            FaultSchedule::empty(),
            shards,
        )
    }

    #[test]
    fn sharded_run_completes_the_requested_operations() {
        let r = run(4);
        assert!(r.stats.operations >= 12_000);
        assert!(r.stats.reads > 0 && r.stats.writes > 0);
        assert!(r.throughput() > 0.0);
        assert!(!r.decisions.is_empty());
        assert_eq!(r.cluster_totals.protocol_drops, 0);
        assert_eq!(r.stats.aborted_ops, 0);
    }

    #[test]
    fn shard_reports_merge_into_one_coherent_view() {
        let r = run(3);
        // The merged probe fed the controller real traffic: the decision
        // timeline carries non-zero rates, and the totals reconcile with the
        // per-shard sums the stats took the other way around.
        assert!(r.decisions.iter().any(|d| d.read_rate > 0.0));
        assert_eq!(r.stats.reads, r.cluster_totals.reads_completed);
        assert_eq!(r.stats.writes, r.cluster_totals.writes_completed);
        let histogram_reads: u64 = r.read_level_histogram.values().sum();
        assert_eq!(histogram_reads, r.stats.reads);
    }

    #[test]
    fn split_spec_conserves_threads_and_operations() {
        let base = spec(24, 12_000, 500);
        for shards in [2usize, 3, 4, 5] {
            let split: Vec<ExperimentSpec> =
                (0..shards).map(|i| split_spec(&base, i, shards)).collect();
            let threads: usize = split.iter().map(|s| s.phases[0].threads).sum();
            let ops: u64 = split.iter().map(|s| s.phases[0].operations).sum();
            assert_eq!(threads, 24);
            assert_eq!(ops, 12_000);
            assert!(split.iter().all(|s| s.phases[0].threads >= 1));
        }
    }

    #[test]
    fn sharded_obs_merges_per_shard_series_without_perturbing_the_run() {
        let run_obs = |obs: ObsConfig| {
            run_sharded_experiment_with_obs(
                &profiles::grid5000_with_nodes(6),
                StoreConfig {
                    replication_factor: 3,
                    ..StoreConfig::default()
                },
                ControllerConfig::default(),
                Box::new(HarmonyPolicy::new(3, 0.2)),
                spec(8, 12_000, 500),
                FaultSchedule::empty(),
                3,
                obs,
            )
        };
        let plain = run(3);
        let (result, report) = run_obs(ObsConfig::enabled());
        // Per-shard tracing and end-of-run scrapes leave the run untouched.
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&result).unwrap(),
            "enabled observability must not perturb the sharded run"
        );
        let snap = report.registry.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .value
        };
        // Counters fold across shards exactly like the stats merge.
        assert_eq!(
            counter("harmony_reads_completed_total"),
            result.cluster_totals.reads_completed
        );
        assert_eq!(
            counter("harmony_client_operations_total"),
            result.stats.operations
        );
        // The per-shard split is visible as labelled series and re-sums.
        let shard_sum: u64 = (0..3)
            .map(|i| counter(&format!("harmony_shard_operations_total{{shard=\"{i}\"}}")))
            .sum();
        assert_eq!(shard_sum, result.stats.operations);
        // Client latency histograms folded bucket-wise across shards.
        let read_hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "harmony_client_read_latency_us")
            .expect("merged read-latency histogram");
        assert_eq!(read_hist.summary.count, result.stats.reads);
        // The merged recorder re-ranked the per-shard slowest traces, and
        // the coordinator-side audit covers the real controller's decisions.
        assert!(!report.recorder.is_empty());
        assert_eq!(report.audit.len(), result.decisions.len());
    }

    #[test]
    fn merged_probe_uses_the_freshest_membership_view() {
        // Shard 0 reported before a decommission (8 live, epoch 3); shard 1
        // reported after it (7 live, epoch 4). The merged view must
        // normalise by the *post-change* membership, whichever shard slot
        // it came from.
        let stale = ShardReport {
            at: SimTime::from_secs_f64(1.0),
            finished: false,
            total_reads: 10,
            total_writes: 10,
            probe_latency_ms: 1.0,
            node_count: 8,
            live_nodes: 8,
            fault_epoch: 3,
            mutation_backlog_ms: 0.0,
            replica_backlogs: vec![0.0; 8],
            telemetry: Vec::new(),
            sketch: SpaceSavingSketch::new(4),
            hot_backlogs: HashMap::new(),
        };
        let fresh = ShardReport {
            live_nodes: 7,
            fault_epoch: 4,
            ..ShardReport {
                at: SimTime::from_secs_f64(1.0),
                finished: false,
                total_reads: 10,
                total_writes: 10,
                probe_latency_ms: 1.0,
                node_count: 8,
                live_nodes: 8,
                fault_epoch: 3,
                mutation_backlog_ms: 0.0,
                replica_backlogs: vec![0.0; 8],
                telemetry: Vec::new(),
                sketch: SpaceSavingSketch::new(4),
                hot_backlogs: HashMap::new(),
            }
        };
        let reports = vec![Some(fresh), Some(stale)];
        let probe = MergedProbe {
            reports: &reports,
            shards: 2,
            node_concurrency: 2,
        };
        assert_eq!(probe.live_node_count(), 7, "freshest epoch wins");
        assert_eq!(probe.fault_epoch(), 4);
        assert_eq!(probe.node_count(), 8);
        assert_eq!(probe.write_stage_concurrency(), 4);
    }
}

//! The experiment runner: closed-loop client sessions driving the replicated
//! store under a YCSB-style workload, with a consistency policy in the loop.
//!
//! This is the analogue of the paper's modified YCSB Cassandra client (§V.A):
//! before every read the client asks the adaptive-consistency module which
//! consistency level to use; writes are issued at level ONE. Client threads
//! are closed-loop — each session has exactly one operation in flight and
//! issues the next one as soon as the previous completes — which reproduces
//! the thread-count sweeps of Figures 4-6.

use crate::distributions::{record_key, KeyChooser};
use crate::stats::RunStats;
use crate::workloads::{Operation, WorkloadSpec};
use harmony_adaptive::controller::{AdaptiveController, DecisionRecord, HotKeyDecision};
use harmony_adaptive::policy::ConsistencyPolicy;
use harmony_chaos::{FaultCounters, FaultEvent, FaultSchedule};
use harmony_obs::{MetricsRegistry, ObsConfig, ObsReport, SpanKind};
use harmony_sim::clock::SimTime;
use harmony_sim::engine::Simulation;
use harmony_sim::profiles::ClusterProfile;
use harmony_sim::rng::RngFactory;
use harmony_store::cluster::{Cluster, ClusterTotals, Completion};
use harmony_store::config::StoreConfig;
use harmony_store::consistency::ConsistencyLevel;
use harmony_store::keys::KeyId;
use harmony_store::messages::{OpId, OpKind, StoreEvent};
use harmony_store::shard::ShardPartition;
use harmony_store::types::{Mutation, Timestamp};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// The runner's simulation event type.
#[derive(Debug, Clone, PartialEq)]
pub enum RunnerEvent {
    /// An event of the underlying store.
    Store(StoreEvent),
    /// A periodic monitoring/adaptation tick.
    MonitorTick,
    /// A scheduled fault fires (chaos mode only: an empty fault schedule
    /// never enqueues one of these, keeping fault-free runs byte-identical).
    Fault(FaultEvent),
    /// A pending client retry's backoff expires (retry policy only: a
    /// disabled policy never enqueues one, keeping plain runs byte-identical).
    Retry(u64),
    /// A hedging deadline: if the referenced read is still unanswered, race a
    /// duplicate against it (hedging only; never enqueued when disabled).
    HedgeCheck(u64),
    /// A periodic anti-entropy repair round (only scheduled when the store
    /// config arms `anti_entropy_interval_secs`).
    AntiEntropyTick,
}

/// How long an operation may stay unanswered under an active fault schedule
/// before the chaos-mode reaper aborts it (virtual time). A partition or a
/// crash landing between fan-out and reply can strand an operation no
/// schedule-time reachability check can predict; one virtual second is two
/// orders of magnitude above the worst saturated op latency in the scaled
/// runs, so the reaper only ever fires on truly stranded work.
pub const CHAOS_OP_TIMEOUT: SimTime = SimTime::from_secs(1);

impl From<StoreEvent> for RunnerEvent {
    fn from(e: StoreEvent) -> Self {
        RunnerEvent::Store(e)
    }
}

/// Client-side retry and hedging policy: what a session does when the store
/// aborts its operation (fault-stranded work) or a read dawdles. Retries back
/// off exponentially from `base_backoff_ms`, doubling per attempt and
/// clamping at `max_backoff_ms`, so a persistent outage cannot turn the
/// closed loop into a retry storm. The default policy is fully disabled and
/// provably free: no event is ever enqueued, and runs are byte-identical to
/// a runner without the feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per logical operation, the original included
    /// (`1` = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry (milliseconds).
    pub base_backoff_ms: f64,
    /// Backoff ceiling (milliseconds); the exponential doubling clamps here.
    pub max_backoff_ms: f64,
    /// Hedge reads: when a read is still unanswered after this long, race a
    /// duplicate at the same level and take whichever answers first
    /// (`0.0` disables hedging).
    pub hedge_after_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 1.0,
            max_backoff_ms: 64.0,
            hedge_after_ms: 0.0,
        }
    }
}

impl RetryPolicy {
    /// Whether any part of the policy is active.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1 || self.hedge_after_ms > 0.0
    }

    /// The backoff before retry number `attempt` (1-based): exponential
    /// doubling from the base, clamped to the ceiling.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        let exp = 2f64.powi(attempt.saturating_sub(1).min(30) as i32);
        SimTime::from_millis_f64((self.base_backoff_ms * exp).min(self.max_backoff_ms))
    }

    /// Validates the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry policy needs at least one attempt".into());
        }
        if self.base_backoff_ms <= 0.0 || !self.base_backoff_ms.is_finite() {
            return Err("retry base backoff must be positive and finite".into());
        }
        if self.max_backoff_ms < self.base_backoff_ms || !self.max_backoff_ms.is_finite() {
            return Err("retry backoff ceiling must be finite and >= the base".into());
        }
        if !self.hedge_after_ms.is_finite() || self.hedge_after_ms < 0.0 {
            return Err("hedge delay must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// What a retry re-issues: enough to rebuild the exact operation without
/// touching the workload RNG stream (a retried write reuses its recorded
/// field index, so enabling retries never perturbs the op sequence drawn by
/// other sessions).
#[derive(Debug, Clone, Copy)]
enum RetryAction {
    Read {
        key: KeyId,
        level: ConsistencyLevel,
    },
    Write {
        key: KeyId,
        field: usize,
        level: ConsistencyLevel,
    },
}

/// Per-operation retry context, tracked only while the policy is enabled.
#[derive(Debug, Clone, Copy)]
struct RetryCtx {
    /// Which attempt this in-flight operation is (1 = the original).
    attempt: u32,
    action: RetryAction,
}

/// One phase of an experiment: a number of concurrent client sessions and the
/// number of operations to complete before moving to the next phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Concurrent closed-loop client sessions ("client threads").
    pub threads: usize,
    /// Operations to complete in this phase.
    pub operations: u64,
}

impl Phase {
    /// Creates a phase.
    pub fn new(threads: usize, operations: u64) -> Self {
        Phase {
            threads,
            operations,
        }
    }
}

/// An experiment specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// The workload (operation mix, key distribution, record population).
    pub workload: WorkloadSpec,
    /// The thread-count phases, executed in order.
    pub phases: Vec<Phase>,
    /// Experiment seed (drives every random decision deterministically).
    pub seed: u64,
    /// Enable the paper's dual-read staleness measurement (§V.F): every read
    /// is followed by a verification read at level ALL and the returned
    /// timestamps are compared. This perturbs latency and throughput, exactly
    /// as the paper cautions.
    pub dual_read_measurement: bool,
    /// Record indices below this count are reported as the workload's *hot
    /// keys*: their reads and stale reads are tallied separately
    /// (`hot_reads`/`hot_stale_reads`), so skewed-workload experiments can
    /// check the stale rate on the keys that actually carry the skew. For the
    /// (unscrambled) Zipfian chooser index 0 is the hottest key, so a small
    /// prefix covers the head of the distribution. Zero disables the tally.
    pub hot_key_prefix: u64,
    /// Safety stop: abort the run if this much virtual time elapses.
    pub max_virtual_secs: f64,
}

impl ExperimentSpec {
    /// A single-phase experiment.
    pub fn single_phase(workload: WorkloadSpec, threads: usize, operations: u64) -> Self {
        ExperimentSpec {
            workload,
            phases: vec![Phase::new(threads, operations)],
            seed: 42,
            dual_read_measurement: false,
            hot_key_prefix: 0,
            max_virtual_secs: 3_600.0,
        }
    }

    /// Total operations across all phases.
    pub fn total_operations(&self) -> u64 {
        self.phases.iter().map(|p| p.operations).sum()
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<(), String> {
        self.workload.validate()?;
        if self.phases.is_empty() {
            return Err("experiment needs at least one phase".into());
        }
        if self.phases.iter().any(|p| p.threads == 0) {
            return Err("every phase needs at least one client thread".into());
        }
        if self.phases.iter().any(|p| p.operations == 0) {
            return Err("every phase needs at least one operation".into());
        }
        if self.max_virtual_secs <= 0.0 {
            return Err("max_virtual_secs must be positive".into());
        }
        Ok(())
    }
}

/// Per-phase measured output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseResult {
    /// The phase as specified.
    pub phase: Phase,
    /// Statistics restricted to this phase.
    pub stats: RunStats,
}

/// The full result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Name of the policy that drove read consistency (e.g. `"harmony-20"`).
    pub policy: String,
    /// Name of the workload.
    pub workload: String,
    /// Name of the cluster profile.
    pub profile: String,
    /// Whole-run statistics.
    pub stats: RunStats,
    /// Per-phase statistics.
    pub phase_results: Vec<PhaseResult>,
    /// The controller's decision history (estimate timeline of Figure 4).
    pub decisions: Vec<DecisionRecord>,
    /// How many reads ran at each replica count.
    pub read_level_histogram: BTreeMap<usize, u64>,
    /// The store's own cumulative totals.
    pub cluster_totals: ClusterTotals,
    /// The controller's hot set at the end of the run (key-sorted): which
    /// keys were escalated above the default level, and how far. Empty for
    /// global (non-split) controllers and unskewed workloads.
    pub hot_set: Vec<HotKeyDecision>,
    /// How many faults of each kind the run actually applied (all zero for
    /// an empty fault schedule).
    pub fault_counters: FaultCounters,
    /// Replica divergence sampled once per monitoring tick, in chaos mode
    /// only (empty when no fault schedule was armed — the query is skipped
    /// entirely on fault-free runs). Each sample counts the acknowledged
    /// keys on which at least one serving replica still lags the newest
    /// acknowledged write. The self-healing sweeps read the post-heal relax
    /// time off this: when the post-heal count drops back under the pre-cut
    /// steady-state ceiling, the cut's divergence has drained.
    pub divergence_timeline: Vec<DivergenceSample>,
}

/// One chaos-tick divergence sample (see
/// [`ExperimentResult::divergence_timeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DivergenceSample {
    /// Virtual time of the monitoring tick, in seconds.
    pub at_secs: f64,
    /// Acknowledged keys with at least one lagging serving replica.
    pub divergent_keys: u64,
}

impl ExperimentResult {
    /// Throughput over the whole run (operations per second).
    pub fn throughput(&self) -> f64 {
        self.stats.throughput_ops_per_sec()
    }

    /// 99th-percentile read latency in milliseconds.
    pub fn read_p99_ms(&self) -> f64 {
        self.stats.read_latency.percentile_ms(0.99)
    }

    /// Number of stale reads (ground truth unless dual-read measurement was
    /// enabled, in which case the dual-read count is also populated).
    pub fn stale_reads(&self) -> u64 {
        self.stats.stale_reads
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    /// A workload read or write.
    Normal,
    /// The read half of a read-modify-write.
    RmwRead,
    /// A dual-read verification read; carries the timestamp returned by the
    /// read being verified.
    Verification(Timestamp),
}

#[derive(Debug, Clone, Copy)]
struct OpMeta {
    session: usize,
    purpose: Purpose,
}

/// Sharded-mode state of one [`Runner`]: the keyspace stripe this event loop
/// owns and the consistency levels the coordinator last broadcast. When
/// present, issue paths consult this table instead of the (placeholder)
/// local controller — the real controller lives on the coordinator and sees
/// the merged cluster view.
pub(crate) struct ShardContext {
    /// This event loop's stripe of the global keyspace.
    pub(crate) partition: ShardPartition,
    /// Records owned locally during the load phase; local ids below this are
    /// load-phase keys with purely arithmetic global ids.
    pub(crate) local_records: usize,
    /// The first global record index this shard's inserts use; the `k`-th
    /// insert names global record `insert_base + k * shards`, keeping insert
    /// names disjoint across shards and owned locally.
    pub(crate) insert_base: u64,
    /// Default read level from the last coordinator directive.
    pub(crate) default_read: ConsistencyLevel,
    /// Write level from the last coordinator directive.
    pub(crate) write: ConsistencyLevel,
    /// Escalated per-key read levels (local ids) from the last directive.
    pub(crate) hot: HashMap<KeyId, ConsistencyLevel>,
}

impl ShardContext {
    /// Translates a *local* interned id to the coordinator's *global* id.
    pub(crate) fn local_to_global_key(&self, id: KeyId) -> KeyId {
        let l = id.index();
        if l < self.local_records {
            self.partition.local_key_to_global(id)
        } else {
            let k = (l - self.local_records) as u64;
            KeyId((self.insert_base + k * self.partition.shards() as u64) as u32)
        }
    }

    /// Translates an owned *global* id back to the local interned id, if the
    /// key exists on this shard (`key_count` = current interner size).
    pub(crate) fn global_to_local_key(&self, id: KeyId, key_count: usize) -> Option<KeyId> {
        let g = id.index();
        if !self.partition.owns_global(g) {
            return None;
        }
        let l = self.partition.global_to_local(g);
        let local = if l < self.local_records {
            l
        } else if g as u64 >= self.insert_base {
            let k = ((g as u64 - self.insert_base) / self.partition.shards() as u64) as usize;
            self.local_records + k
        } else {
            return None;
        };
        (local < key_count).then_some(KeyId(local as u32))
    }
}

/// The experiment runner. Most users call [`run_experiment`] instead of
/// driving this type directly.
pub struct Runner {
    pub(crate) cluster: Cluster,
    pub(crate) sim: Simulation<RunnerEvent>,
    pub(crate) controller: AdaptiveController,
    pub(crate) spec: ExperimentSpec,
    /// The fault schedule to replay (empty = no chaos layer at all).
    pub(crate) faults: FaultSchedule,
    profile_name: String,
    key_chooser: KeyChooser,
    workload_rng: StdRng,
    in_flight: HashMap<OpId, OpMeta>,
    /// Record index -> interned key id: the per-operation key lookup is a
    /// plain array index, no string formatting or hashing.
    record_ids: Vec<KeyId>,
    /// One shared mutation template per field index: every update writes the
    /// same filler payload, so issuing a write is an `Arc` refcount bump
    /// instead of a fresh `BTreeMap` + `String` + `Vec` per operation.
    field_mutations: Vec<Arc<Mutation>>,
    /// The designated hot keys whose reads are tallied separately.
    hot_report_keys: HashSet<KeyId>,
    pub(crate) session_active: Vec<bool>,
    pub(crate) current_phase: usize,
    phase_completed_ops: u64,
    insert_counter: u64,
    /// Sharded-mode stripe + directive state (`None` = classic single loop).
    pub(crate) shard: Option<ShardContext>,
    /// Client retry/hedging policy (default: fully disabled).
    retry: RetryPolicy,
    /// Retry context per in-flight op; only populated while the policy is
    /// enabled, so the disabled path never touches these maps.
    retry_ctx: HashMap<OpId, RetryCtx>,
    /// Backoff-pending retries, keyed by the token in the scheduled event.
    pending_retries: HashMap<u64, (OpMeta, RetryCtx)>,
    /// Armed hedge deadlines: token -> the primary read they watch.
    hedge_checks: HashMap<u64, OpId>,
    /// Both directions of a racing hedged pair; the bool marks the duplicate.
    hedge_partner: HashMap<OpId, (OpId, bool)>,
    /// Monotonic token source for retry/hedge events.
    retry_token: u64,
    /// Observability knobs (default: all off — byte-identical runs).
    pub(crate) obs: ObsConfig,
    // Accumulated output.
    pub(crate) stats: RunStats,
    pub(crate) phase_results: Vec<PhaseResult>,
    pub(crate) phase_stats: RunStats,
    pub(crate) read_level_histogram: BTreeMap<usize, u64>,
}

impl Runner {
    /// Builds a runner: creates the cluster from the profile, bulk-loads the
    /// record population, and prepares the client sessions.
    pub fn new(
        profile: &ClusterProfile,
        store_config: StoreConfig,
        controller: AdaptiveController,
        spec: ExperimentSpec,
    ) -> Self {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
        let factory = RngFactory::new(spec.seed);
        let mut cluster = Cluster::new(
            store_config,
            profile.topology.clone(),
            profile.network.clone(),
            factory,
        );
        // Load phase (YCSB "load"): populate every record on all its replicas.
        // Interning happens here, in record order, so record `i` gets the
        // dense id `KeyId(i)` and the transaction phase never touches a key
        // string again.
        let row_template = Mutation::ycsb_row(spec.workload.field_count, spec.workload.field_size);
        let mut record_ids = Vec::with_capacity(spec.workload.record_count as usize);
        for i in 0..spec.workload.record_count {
            let name = record_key(i);
            cluster.load_direct(&name, &row_template, Timestamp(i + 1));
            record_ids.push(cluster.key_id(&name).expect("just loaded"));
        }
        let hot_report_keys = (0..spec.hot_key_prefix)
            .map(|i| cluster.intern_key(&record_key(i)))
            .collect();
        let field_mutations = (0..spec.workload.field_count)
            .map(|f| {
                Arc::new(Mutation::single(
                    format!("field{f}"),
                    vec![b'u'; spec.workload.field_size],
                ))
            })
            .collect();
        let max_threads = spec.phases.iter().map(|p| p.threads).max().unwrap_or(1);
        let key_chooser = spec.workload.key_chooser();
        Runner {
            cluster,
            sim: Simulation::new(spec.seed),
            controller,
            faults: FaultSchedule::empty(),
            workload_rng: factory.stream("workload"),
            key_chooser,
            profile_name: profile.name.clone(),
            in_flight: HashMap::new(),
            record_ids,
            field_mutations,
            hot_report_keys,
            session_active: vec![false; max_threads],
            current_phase: 0,
            phase_completed_ops: 0,
            insert_counter: 0,
            shard: None,
            retry: RetryPolicy::default(),
            retry_ctx: HashMap::new(),
            pending_retries: HashMap::new(),
            hedge_checks: HashMap::new(),
            hedge_partner: HashMap::new(),
            retry_token: 0,
            obs: ObsConfig::off(),
            stats: RunStats::default(),
            phase_results: Vec::new(),
            phase_stats: RunStats::default(),
            read_level_histogram: BTreeMap::new(),
            spec,
        }
    }

    /// Builds one shard's runner: the same construction as [`Runner::new`]
    /// but loading only the records of `partition`'s stripe, in ascending
    /// global order — so local interned ids stay dense and the local↔global
    /// mapping is pure arithmetic ([`ShardContext`]). The shard's RNG
    /// streams derive from `mix(seed, stripe)` so shards draw independent
    /// (but run-to-run identical) workload sequences, and the passed
    /// `controller` is a placeholder: it fixes the monitoring cadence but
    /// never decides a level — levels arrive by coordinator directive.
    pub(crate) fn new_sharded(
        profile: &ClusterProfile,
        store_config: StoreConfig,
        controller: AdaptiveController,
        spec: ExperimentSpec,
        partition: ShardPartition,
    ) -> Self {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
        let shard_seed = harmony_sim::rng::mix(spec.seed, 0x5348_5244 + partition.index() as u64);
        let factory = RngFactory::new(shard_seed);
        let mut cluster = Cluster::new(
            store_config,
            profile.topology.clone(),
            profile.network.clone(),
            factory,
        );
        let row_template = Mutation::ycsb_row(spec.workload.field_count, spec.workload.field_size);
        let local_records = partition.local_count(spec.workload.record_count as usize);
        let mut record_ids = Vec::with_capacity(local_records);
        for local in 0..local_records {
            let g = partition.local_to_global(local) as u64;
            let name = record_key(g);
            cluster.load_direct(&name, &row_template, Timestamp(g + 1));
            record_ids.push(cluster.key_id(&name).expect("just loaded"));
        }
        let hot_report_keys = (0..spec.hot_key_prefix)
            .filter(|g| partition.owns_global(*g as usize))
            .map(|g| cluster.intern_key(&record_key(g)))
            .collect();
        let field_mutations = (0..spec.workload.field_count)
            .map(|f| {
                Arc::new(Mutation::single(
                    format!("field{f}"),
                    vec![b'u'; spec.workload.field_size],
                ))
            })
            .collect();
        let max_threads = spec.phases.iter().map(|p| p.threads).max().unwrap_or(1);
        let key_chooser = spec.workload.key_chooser();
        let insert_base =
            partition.first_owned_at_or_after(spec.workload.record_count as usize) as u64;
        Runner {
            cluster,
            sim: Simulation::new(shard_seed),
            controller,
            faults: FaultSchedule::empty(),
            workload_rng: factory.stream("workload"),
            key_chooser,
            profile_name: profile.name.clone(),
            in_flight: HashMap::new(),
            record_ids,
            field_mutations,
            hot_report_keys,
            session_active: vec![false; max_threads],
            current_phase: 0,
            phase_completed_ops: 0,
            insert_counter: 0,
            shard: Some(ShardContext {
                partition,
                local_records,
                insert_base,
                default_read: ConsistencyLevel::One,
                write: ConsistencyLevel::One,
                hot: HashMap::new(),
            }),
            retry: RetryPolicy::default(),
            retry_ctx: HashMap::new(),
            pending_retries: HashMap::new(),
            hedge_checks: HashMap::new(),
            hedge_partner: HashMap::new(),
            retry_token: 0,
            obs: ObsConfig::off(),
            stats: RunStats::default(),
            phase_results: Vec::new(),
            phase_stats: RunStats::default(),
            read_level_histogram: BTreeMap::new(),
            spec,
        }
    }

    /// Attaches a fault schedule to replay during the run. An empty schedule
    /// is exactly equivalent to never calling this: no events are enqueued
    /// and no chaos-mode machinery (reaper, masks) perturbs the run.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a client retry/hedging policy. The default (disabled) policy
    /// is exactly equivalent to never calling this.
    ///
    /// # Panics
    /// Panics if the policy is invalid.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        retry
            .validate()
            .unwrap_or_else(|e| panic!("invalid retry policy: {e}"));
        self.retry = retry;
        self
    }

    /// Attaches observability knobs: sampled per-op tracing with the flight
    /// recorder, the controller's decision audit log, and end-of-run metrics
    /// export. The default (all-off) config is exactly equivalent to never
    /// calling this — no trace state is allocated and no decision is audited,
    /// so plain runs stay byte-identical. Collect the output by running the
    /// experiment with [`Runner::run_with_obs`].
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        if obs.tracing_enabled() {
            self.cluster.enable_tracing(
                obs.trace_sample_every,
                obs.keep_slowest as usize,
                obs.abort_cap as usize,
            );
        }
        if obs.decision_audit {
            self.controller.enable_decision_audit();
        }
        self
    }

    pub(crate) fn phase(&self) -> Phase {
        self.spec.phases[self.current_phase.min(self.spec.phases.len() - 1)]
    }

    /// The read level for `key`: the coordinator's last directive in sharded
    /// mode (hot-table hit or broadcast default), the local controller's hot
    /// set otherwise.
    fn read_level(&self, key: KeyId) -> ConsistencyLevel {
        match &self.shard {
            Some(ctx) => ctx.hot.get(&key).copied().unwrap_or(ctx.default_read),
            None => self.controller.read_level_for(key),
        }
    }

    pub(crate) fn issue_next_op(&mut self, session: usize) {
        if session >= self.phase().threads || self.current_phase >= self.spec.phases.len() {
            self.session_active[session] = false;
            return;
        }
        self.session_active[session] = true;
        let op_kind = self.spec.workload.next_operation(&mut self.workload_rng);
        match op_kind {
            Operation::Read => {
                let key = self.chosen_key();
                // Per-operation consultation of the hot set: an escalated key
                // reads at its own level, everything else at the cheap default.
                let level = self.read_level(key);
                let op = self.cluster.submit_read_id(key, level, &mut self.sim);
                self.in_flight.insert(
                    op,
                    OpMeta {
                        session,
                        purpose: Purpose::Normal,
                    },
                );
                self.track_issued(op, RetryAction::Read { key, level });
            }
            Operation::Update => {
                let key = self.chosen_key();
                self.issue_write(session, key, Purpose::Normal);
            }
            Operation::Insert => {
                let global = match &self.shard {
                    // Sharded inserts stride the global index space from this
                    // shard's first owned slot past the load population, so
                    // insert names stay globally unique and locally owned.
                    Some(ctx) => {
                        ctx.insert_base + self.insert_counter * ctx.partition.shards() as u64
                    }
                    None => self.spec.workload.record_count + self.insert_counter,
                };
                let name = record_key(global);
                self.insert_counter += 1;
                let key = self.cluster.intern_key(&name);
                self.issue_write(session, key, Purpose::Normal);
            }
            Operation::ReadModifyWrite => {
                let key = self.chosen_key();
                let level = self.read_level(key);
                let op = self.cluster.submit_read_id(key, level, &mut self.sim);
                self.in_flight.insert(
                    op,
                    OpMeta {
                        session,
                        purpose: Purpose::RmwRead,
                    },
                );
                self.track_issued(op, RetryAction::Read { key, level });
            }
        }
    }

    /// Draws the next record index and maps it to its interned id — the
    /// allocation-free replacement for `record_key(index)` on the op path.
    ///
    /// In sharded mode the *global* key distribution is rejection-sampled
    /// down to this shard's stripe: the chooser keeps its global popularity
    /// profile (a Zipfian rank-`r` key stays exactly as popular relative to
    /// its stripe-mates), every shard draws from its own seeded stream, and
    /// no cross-shard coordination touches the op path.
    fn chosen_key(&mut self) -> KeyId {
        match &self.shard {
            None => {
                let index = self.key_chooser.next_index(&mut self.workload_rng);
                self.record_ids[index as usize]
            }
            Some(ctx) => loop {
                let index = self.key_chooser.next_index(&mut self.workload_rng) as usize;
                if ctx.partition.owns_global(index) {
                    break self.record_ids[ctx.partition.global_to_local(index)];
                }
            },
        }
    }

    fn issue_write(&mut self, session: usize, key: KeyId, purpose: Purpose) {
        let field = self
            .workload_rng
            .gen_range(0..self.spec.workload.field_count);
        let mutation = Arc::clone(&self.field_mutations[field]);
        let level = match &self.shard {
            Some(ctx) => ctx.write,
            None => self.controller.current_write_level(),
        };
        let op = self
            .cluster
            .submit_write_id(key, mutation, level, &mut self.sim);
        self.in_flight.insert(op, OpMeta { session, purpose });
        self.track_issued(op, RetryAction::Write { key, field, level });
    }

    /// Registers retry context for a freshly issued operation and arms its
    /// hedge deadline. A no-op while the policy is disabled, so plain runs
    /// never touch the retry maps or enqueue an event.
    fn track_issued(&mut self, op: OpId, action: RetryAction) {
        if !self.retry.enabled() {
            return;
        }
        self.retry_ctx.insert(op, RetryCtx { attempt: 1, action });
        self.arm_hedge(op, action);
    }

    fn arm_hedge(&mut self, op: OpId, action: RetryAction) {
        if self.retry.hedge_after_ms <= 0.0 {
            return;
        }
        // Only reads are hedged: a racing duplicate write would double-apply.
        let RetryAction::Read { .. } = action else {
            return;
        };
        self.retry_token += 1;
        let token = self.retry_token;
        self.hedge_checks.insert(token, op);
        self.sim.schedule_in(
            SimTime::from_millis_f64(self.retry.hedge_after_ms),
            RunnerEvent::HedgeCheck(token),
        );
    }

    /// A hedge deadline fired: if the watched read is still unanswered and
    /// not already racing a twin, issue the duplicate at the same level.
    fn maybe_hedge(&mut self, primary: OpId) {
        if self.hedge_partner.contains_key(&primary) {
            return;
        }
        let Some(&meta) = self.in_flight.get(&primary) else {
            return;
        };
        let Some(&ctx) = self.retry_ctx.get(&primary) else {
            return;
        };
        let RetryAction::Read { key, level } = ctx.action else {
            return;
        };
        let dup = self.cluster.submit_read_id(key, level, &mut self.sim);
        let now = self.sim.now();
        self.cluster.trace_note(dup, now, SpanKind::Hedge, || {
            format!("hedge duplicate of op{}", primary.0)
        });
        self.in_flight.insert(dup, meta);
        self.retry_ctx.insert(dup, ctx);
        self.hedge_partner.insert(primary, (dup, false));
        self.hedge_partner.insert(dup, (primary, true));
        self.stats.hedged_reads += 1;
        self.phase_stats.hedged_reads += 1;
    }

    /// A retry backoff expired: re-issue the recorded operation. The write
    /// path reuses the recorded field index, so retries never consume the
    /// workload RNG and cannot perturb what other sessions draw.
    fn reissue(&mut self, meta: OpMeta, ctx: RetryCtx) {
        let op = match ctx.action {
            RetryAction::Read { key, level } => {
                self.cluster.submit_read_id(key, level, &mut self.sim)
            }
            RetryAction::Write { key, field, level } => {
                let mutation = Arc::clone(&self.field_mutations[field]);
                self.cluster
                    .submit_write_id(key, mutation, level, &mut self.sim)
            }
        };
        let now = self.sim.now();
        self.cluster.trace_note(op, now, SpanKind::Retry, || {
            format!("retry attempt {} after backoff", ctx.attempt)
        });
        self.in_flight.insert(op, meta);
        self.retry_ctx.insert(op, ctx);
        self.arm_hedge(op, ctx.action);
    }

    fn record_completion(&mut self, completion: &Completion, meta: OpMeta) -> bool {
        // Returns true if this completion counts towards the phase's target.
        // Aborted completions never reach this point — `on_completion` routes
        // them to the retry policy (or the abort tally) first.
        match meta.purpose {
            Purpose::Verification(original_ts) => {
                if completion.returned_timestamp != original_ts {
                    self.stats.stale_reads_dual_read += 1;
                    self.phase_stats.stale_reads_dual_read += 1;
                }
                false
            }
            Purpose::Normal | Purpose::RmwRead => {
                match completion.kind {
                    OpKind::Read => {
                        self.stats.read_latency.record(completion.latency());
                        self.phase_stats.read_latency.record(completion.latency());
                        self.stats.reads += 1;
                        self.phase_stats.reads += 1;
                        let hot = self.hot_report_keys.contains(&completion.key);
                        if hot {
                            self.stats.hot_reads += 1;
                            self.phase_stats.hot_reads += 1;
                        }
                        if completion.stale {
                            self.stats.stale_reads += 1;
                            self.phase_stats.stale_reads += 1;
                            if hot {
                                self.stats.hot_stale_reads += 1;
                                self.phase_stats.hot_stale_reads += 1;
                            }
                        }
                        *self
                            .read_level_histogram
                            .entry(completion.replicas_contacted)
                            .or_insert(0) += 1;
                    }
                    OpKind::Write => {
                        self.stats.write_latency.record(completion.latency());
                        self.phase_stats.write_latency.record(completion.latency());
                        self.stats.writes += 1;
                        self.phase_stats.writes += 1;
                    }
                }
                self.stats.operations += 1;
                self.phase_stats.operations += 1;
                true
            }
        }
    }

    pub(crate) fn on_completion(&mut self, completion: Completion) {
        let Some(meta) = self.in_flight.remove(&completion.op) else {
            // The losing leg of a settled hedged pair: already accounted.
            return;
        };
        let ctx = self.retry_ctx.remove(&completion.op);

        if completion.aborted {
            // One leg of a live hedged pair died (e.g. the reaper expired
            // it): the twin is still racing and settles the logical op.
            if let Some((partner, _)) = self.hedge_partner.remove(&completion.op) {
                self.hedge_partner.remove(&partner);
                if self.in_flight.contains_key(&partner) {
                    return;
                }
            }
            // Retry policy: convert the abort into a backed-off re-issue
            // while attempts remain; the session sleeps through the backoff.
            if let Some(c) = ctx {
                if c.attempt < self.retry.max_attempts {
                    self.stats.retries += 1;
                    self.phase_stats.retries += 1;
                    self.retry_token += 1;
                    let token = self.retry_token;
                    self.pending_retries.insert(
                        token,
                        (
                            meta,
                            RetryCtx {
                                attempt: c.attempt + 1,
                                action: c.action,
                            },
                        ),
                    );
                    self.sim
                        .schedule_in(self.retry.backoff(c.attempt), RunnerEvent::Retry(token));
                    return;
                }
            }
            // A fault killed the operation (and any attempts are exhausted):
            // it is neither a read nor a write and does not advance the
            // phase — the session simply moves on with its next operation,
            // like a client driver timing out.
            self.stats.aborted_ops += 1;
            self.phase_stats.aborted_ops += 1;
            self.advance_phase_if_needed();
            self.issue_next_op(meta.session);
            return;
        }

        // First answer of a hedged pair wins: forget the twin — its eventual
        // completion drops at the in-flight lookup above.
        if let Some((partner, is_dup)) = self.hedge_partner.remove(&completion.op) {
            self.hedge_partner.remove(&partner);
            if self.in_flight.remove(&partner).is_some() {
                self.retry_ctx.remove(&partner);
                if is_dup {
                    self.stats.hedge_wins += 1;
                    self.phase_stats.hedge_wins += 1;
                }
            }
        }

        let counted = self.record_completion(&completion, meta);
        if counted {
            self.phase_completed_ops += 1;
        }
        // Decide what the session does next.
        match meta.purpose {
            Purpose::RmwRead => {
                // Write back the same key (`KeyId` is `Copy` — no clone).
                self.issue_write(meta.session, completion.key, Purpose::Normal);
            }
            Purpose::Normal
                if completion.kind == OpKind::Read && self.spec.dual_read_measurement =>
            {
                // Paper §V.F: verify with a second read at the strongest level.
                let op = self.cluster.submit_read_id(
                    completion.key,
                    ConsistencyLevel::All,
                    &mut self.sim,
                );
                self.in_flight.insert(
                    op,
                    OpMeta {
                        session: meta.session,
                        purpose: Purpose::Verification(completion.returned_timestamp),
                    },
                );
            }
            _ => {
                self.advance_phase_if_needed();
                self.issue_next_op(meta.session);
            }
        }
    }

    pub(crate) fn advance_phase_if_needed(&mut self) {
        if self.current_phase >= self.spec.phases.len() {
            return;
        }
        if self.phase_completed_ops >= self.phase().operations {
            // Close the phase.
            let mut finished = std::mem::take(&mut self.phase_stats);
            finished.ended_at = self.sim.now();
            self.phase_results.push(PhaseResult {
                phase: self.phase(),
                stats: finished,
            });
            self.current_phase += 1;
            self.phase_completed_ops = 0;
            self.phase_stats = RunStats {
                started_at: self.sim.now(),
                ..RunStats::default()
            };
            if self.current_phase < self.spec.phases.len() {
                // Wake sessions that the new (possibly larger) thread count allows.
                let threads = self.phase().threads;
                for s in 0..threads.min(self.session_active.len()) {
                    if !self.session_active[s] {
                        self.issue_next_op(s);
                    }
                }
            }
        }
    }

    /// Runs the experiment to completion and returns its result.
    pub fn run(mut self) -> ExperimentResult {
        self.execute()
    }

    /// Runs the experiment and additionally returns the observability
    /// report: the metrics registry (populated collect-on-scrape at the end
    /// of the run), the flight recorder's retained traces, and the decision
    /// audit log. With an all-off [`ObsConfig`] the result is identical to
    /// [`Runner::run`] and the report is empty.
    pub fn run_with_obs(mut self) -> (ExperimentResult, ObsReport) {
        let result = self.execute();
        let report = self.obs_report(&result);
        (result, report)
    }

    /// Assembles the observability report after a finished run: scrapes the
    /// cluster, controller and client-side stats into a fresh registry and
    /// detaches the flight recorder.
    fn obs_report(&mut self, result: &ExperimentResult) -> ObsReport {
        let registry = MetricsRegistry::new();
        if self.obs.metrics {
            self.cluster.export_metrics(&registry);
            self.controller.export_metrics(&registry);
            registry
                .histogram("harmony_client_read_latency_us")
                .merge_from(&result.stats.read_latency);
            registry
                .histogram("harmony_client_write_latency_us")
                .merge_from(&result.stats.write_latency);
            for (name, value) in [
                ("harmony_client_operations_total", result.stats.operations),
                ("harmony_client_stale_reads_total", result.stats.stale_reads),
                ("harmony_client_aborted_ops_total", result.stats.aborted_ops),
                ("harmony_client_retries_total", result.stats.retries),
                (
                    "harmony_client_hedged_reads_total",
                    result.stats.hedged_reads,
                ),
                ("harmony_client_hedge_wins_total", result.stats.hedge_wins),
            ] {
                registry.counter(name).set_total(value);
            }
            registry
                .gauge("harmony_client_throughput_ops_per_sec")
                .set(result.stats.throughput_ops_per_sec());
        }
        let recorder = self
            .cluster
            .take_obs()
            .map(|o| o.recorder)
            .unwrap_or_default();
        ObsReport {
            registry,
            recorder,
            audit: self.controller.audit_log().to_vec(),
        }
    }

    fn execute(&mut self) -> ExperimentResult {
        let deadline = SimTime::from_secs_f64(self.spec.max_virtual_secs);
        self.stats.started_at = self.sim.now();
        self.phase_stats.started_at = self.sim.now();

        // Initial controller tick so the first reads use a level based on an
        // (idle) observation, then keep ticking periodically.
        self.controller.tick(self.sim.now(), &self.cluster);
        let interval = self.controller.interval();
        self.sim.schedule_in(interval, RunnerEvent::MonitorTick);

        // Anti-entropy: when the store config arms an interval, schedule the
        // periodic repair round. The default interval of 0.0 schedules
        // nothing, so repair-free runs are byte-identical.
        let ae_interval = SimTime::from_secs_f64(self.cluster.config().anti_entropy_interval_secs);
        if ae_interval > SimTime::ZERO {
            self.sim
                .schedule_in(ae_interval, RunnerEvent::AntiEntropyTick);
        }

        // Chaos mode: enqueue the fault schedule as first-class events. An
        // empty schedule enqueues nothing and disarms the reaper, so the
        // event sequence of a fault-free run is untouched.
        let chaos = !self.faults.is_empty();
        if chaos {
            let scheduled: Vec<_> = self.faults.events().to_vec();
            for fault in scheduled {
                self.sim
                    .schedule_at(fault.at, RunnerEvent::Fault(fault.fault));
            }
        }

        // Start the first phase's sessions.
        for s in 0..self.phase().threads.min(self.session_active.len()) {
            self.issue_next_op(s);
        }

        // Divergence timeline, sampled on chaos monitor ticks: how many
        // acknowledged keys still have a lagging serving replica. A
        // read-only digest query — it enqueues nothing and draws no
        // randomness, so tracking it cannot perturb the run.
        let mut divergence_timeline: Vec<DivergenceSample> = Vec::new();

        while self.current_phase < self.spec.phases.len() && self.sim.now() < deadline {
            let Some((_, event)) = self.sim.next() else {
                break;
            };
            match event {
                RunnerEvent::MonitorTick => {
                    self.controller.tick(self.sim.now(), &self.cluster);
                    self.sim.schedule_in(interval, RunnerEvent::MonitorTick);
                    if chaos {
                        // Reap operations stranded by races no schedule-time
                        // check can close (e.g. a partition installed while
                        // replies were in flight); their sessions move on.
                        self.cluster
                            .expire_stalled_ops(CHAOS_OP_TIMEOUT, &mut self.sim);
                        divergence_timeline.push(DivergenceSample {
                            at_secs: self.sim.now().as_secs_f64(),
                            divergent_keys: self.cluster.divergent_keys() as u64,
                        });
                    }
                }
                RunnerEvent::Fault(fault) => {
                    self.cluster.apply_fault(&fault, &mut self.sim);
                }
                RunnerEvent::Retry(token) => {
                    if let Some((meta, ctx)) = self.pending_retries.remove(&token) {
                        self.reissue(meta, ctx);
                    }
                }
                RunnerEvent::HedgeCheck(token) => {
                    if let Some(primary) = self.hedge_checks.remove(&token) {
                        self.maybe_hedge(primary);
                    }
                }
                RunnerEvent::AntiEntropyTick => {
                    self.cluster.run_anti_entropy_round(&mut self.sim);
                    self.sim
                        .schedule_in(ae_interval, RunnerEvent::AntiEntropyTick);
                }
                RunnerEvent::Store(store_event) => {
                    if let Some(completion) = self.cluster.handle(store_event, &mut self.sim) {
                        self.on_completion(completion);
                    }
                }
            }
        }
        self.stats.ended_at = self.sim.now();

        ExperimentResult {
            policy: self.controller.policy_name(),
            workload: self.spec.workload.name.clone(),
            profile: self.profile_name.clone(),
            stats: std::mem::take(&mut self.stats),
            phase_results: std::mem::take(&mut self.phase_results),
            decisions: self.controller.decisions().to_vec(),
            read_level_histogram: std::mem::take(&mut self.read_level_histogram),
            cluster_totals: self.cluster.totals(),
            hot_set: self.controller.hot_set().to_vec(),
            fault_counters: self.cluster.fault_state().counters(),
            divergence_timeline,
        }
    }
}

/// Builds and runs one experiment: cluster from `profile`, YCSB-style load
/// phase, then the transaction phases of `spec` under `policy`.
pub fn run_experiment(
    profile: &ClusterProfile,
    store_config: StoreConfig,
    controller_config: harmony_adaptive::config::ControllerConfig,
    policy: Box<dyn ConsistencyPolicy>,
    spec: ExperimentSpec,
) -> ExperimentResult {
    run_experiment_with_faults(
        profile,
        store_config,
        controller_config,
        policy,
        spec,
        FaultSchedule::empty(),
    )
}

/// [`run_experiment`] with a fault schedule replayed during the transaction
/// phases. An empty schedule is byte-identical to [`run_experiment`].
pub fn run_experiment_with_faults(
    profile: &ClusterProfile,
    store_config: StoreConfig,
    controller_config: harmony_adaptive::config::ControllerConfig,
    policy: Box<dyn ConsistencyPolicy>,
    spec: ExperimentSpec,
    faults: FaultSchedule,
) -> ExperimentResult {
    let controller =
        AdaptiveController::new(controller_config, store_config.replication_factor, policy);
    Runner::new(profile, store_config, controller, spec)
        .with_faults(faults)
        .run()
}

/// [`run_experiment_with_faults`] with a client retry/hedging policy. The
/// default (disabled) policy is byte-identical to
/// [`run_experiment_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn run_experiment_with_retry(
    profile: &ClusterProfile,
    store_config: StoreConfig,
    controller_config: harmony_adaptive::config::ControllerConfig,
    policy: Box<dyn ConsistencyPolicy>,
    spec: ExperimentSpec,
    faults: FaultSchedule,
    retry: RetryPolicy,
) -> ExperimentResult {
    let controller =
        AdaptiveController::new(controller_config, store_config.replication_factor, policy);
    Runner::new(profile, store_config, controller, spec)
        .with_faults(faults)
        .with_retry(retry)
        .run()
}

/// [`run_experiment_with_faults`] with observability attached: returns the
/// usual result plus the run's [`ObsReport`] (metrics snapshot, flight
/// recorder traces, decision audit log). An all-off [`ObsConfig`] yields a
/// result byte-identical to [`run_experiment_with_faults`] and an empty
/// report.
#[allow(clippy::too_many_arguments)]
pub fn run_experiment_with_obs(
    profile: &ClusterProfile,
    store_config: StoreConfig,
    controller_config: harmony_adaptive::config::ControllerConfig,
    policy: Box<dyn ConsistencyPolicy>,
    spec: ExperimentSpec,
    faults: FaultSchedule,
    obs: ObsConfig,
) -> (ExperimentResult, ObsReport) {
    let controller =
        AdaptiveController::new(controller_config, store_config.replication_factor, policy);
    Runner::new(profile, store_config, controller, spec)
        .with_faults(faults)
        .with_obs(obs)
        .run_with_obs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_adaptive::config::ControllerConfig;
    use harmony_adaptive::policy::{HarmonyPolicy, StaticPolicy};
    use harmony_sim::profiles;

    fn small_spec(threads: usize, ops: u64) -> ExperimentSpec {
        let mut workload = WorkloadSpec::workload_a(500);
        workload.field_count = 2;
        workload.field_size = 16;
        ExperimentSpec {
            workload,
            phases: vec![Phase::new(threads, ops)],
            seed: 7,
            dual_read_measurement: false,
            hot_key_prefix: 0,
            max_virtual_secs: 600.0,
        }
    }

    fn small_store_config() -> StoreConfig {
        StoreConfig {
            replication_factor: 3,
            ..StoreConfig::default()
        }
    }

    fn run_with(policy: Box<dyn ConsistencyPolicy>, spec: ExperimentSpec) -> ExperimentResult {
        let profile = profiles::grid5000_with_nodes(6);
        run_experiment(
            &profile,
            small_store_config(),
            ControllerConfig::default(),
            policy,
            spec,
        )
    }

    #[test]
    fn completes_requested_operations() {
        let result = run_with(Box::new(StaticPolicy::Eventual), small_spec(8, 2_000));
        assert!(result.stats.operations >= 2_000);
        assert_eq!(result.policy, "eventual");
        assert_eq!(result.workload, "workload-a");
        assert!(result.stats.duration_secs() > 0.0);
        assert!(result.throughput() > 0.0);
        assert!(result.stats.reads > 0 && result.stats.writes > 0);
        assert_eq!(result.phase_results.len(), 1);
    }

    #[test]
    fn eventual_reads_use_one_replica_and_strong_uses_all() {
        let eventual = run_with(Box::new(StaticPolicy::Eventual), small_spec(4, 1_000));
        assert_eq!(eventual.read_level_histogram.keys().copied().max(), Some(1));

        let strong = run_with(Box::new(StaticPolicy::Strong), small_spec(4, 1_000));
        assert_eq!(strong.read_level_histogram.keys().copied().min(), Some(3));
        // Strong consistency never returns stale data.
        assert_eq!(strong.stats.stale_reads, 0);
    }

    #[test]
    fn strong_is_slower_but_never_stale() {
        let eventual = run_with(Box::new(StaticPolicy::Eventual), small_spec(16, 3_000));
        let strong = run_with(Box::new(StaticPolicy::Strong), small_spec(16, 3_000));
        assert!(strong.read_p99_ms() >= eventual.read_p99_ms());
        assert!(strong.throughput() <= eventual.throughput());
        assert_eq!(strong.stats.stale_reads, 0);
    }

    #[test]
    fn harmony_staleness_is_bounded_between_baselines() {
        let spec = small_spec(16, 3_000);
        let eventual = run_with(Box::new(StaticPolicy::Eventual), spec.clone());
        let harmony = run_with(Box::new(HarmonyPolicy::new(3, 0.2)), spec.clone());
        let strong = run_with(Box::new(StaticPolicy::Strong), spec);
        assert!(harmony.stats.stale_reads <= eventual.stats.stale_reads);
        assert!(strong.stats.stale_reads <= harmony.stats.stale_reads);
        // Harmony adapts: its decision history contains estimates.
        assert!(!harmony.decisions.is_empty());
        assert!(harmony.decisions.iter().any(|d| d.estimate.is_some()));
    }

    #[test]
    fn multi_phase_run_produces_per_phase_results() {
        let mut spec = small_spec(8, 500);
        spec.phases = vec![Phase::new(8, 500), Phase::new(2, 500), Phase::new(16, 500)];
        let result = run_with(Box::new(StaticPolicy::Eventual), spec);
        assert_eq!(result.phase_results.len(), 3);
        assert!(result.stats.operations >= 1_500);
        for pr in &result.phase_results {
            assert!(pr.stats.operations >= pr.phase.operations);
            assert!(pr.stats.ended_at >= pr.stats.started_at);
        }
    }

    #[test]
    fn dual_read_measurement_populates_second_counter() {
        let mut spec = small_spec(8, 1_500);
        spec.dual_read_measurement = true;
        let result = run_with(Box::new(StaticPolicy::Eventual), spec);
        // The verification reads do not count towards the workload operations.
        assert!(result.stats.operations >= 1_500);
        // Ground truth and dual-read counts are both tracked; the dual-read
        // count may legitimately differ (the verification read races with
        // propagation), but both must be bounded by the number of reads.
        assert!(result.stats.stale_reads <= result.stats.reads);
        assert!(result.stats.stale_reads_dual_read <= result.stats.reads);
    }

    #[test]
    fn more_threads_increase_throughput_until_saturation() {
        let low = run_with(Box::new(StaticPolicy::Eventual), small_spec(1, 1_000));
        let high = run_with(Box::new(StaticPolicy::Eventual), small_spec(32, 4_000));
        assert!(
            high.throughput() > low.throughput() * 2.0,
            "32 threads ({:.0} ops/s) should significantly out-run 1 thread ({:.0} ops/s)",
            high.throughput(),
            low.throughput()
        );
    }

    #[test]
    #[should_panic(expected = "invalid experiment spec")]
    fn invalid_spec_panics() {
        let mut spec = small_spec(0, 100);
        spec.phases = vec![Phase::new(0, 100)];
        let profile = profiles::grid5000_with_nodes(4);
        let controller = AdaptiveController::new(
            ControllerConfig::default(),
            3,
            Box::new(StaticPolicy::Eventual),
        );
        let _ = Runner::new(&profile, small_store_config(), controller, spec);
    }

    #[test]
    fn hot_key_prefix_tallies_hot_reads_separately() {
        let mut spec = small_spec(8, 2_000);
        spec.hot_key_prefix = 10;
        let result = run_with(Box::new(StaticPolicy::Eventual), spec);
        // Workload A is Zipfian: the 10 hottest keys draw a large share of
        // the reads, and the tallies are consistent with the aggregates.
        assert!(result.stats.hot_reads > 0);
        assert!(result.stats.hot_reads <= result.stats.reads);
        assert!(result.stats.hot_stale_reads <= result.stats.stale_reads);
        assert!(result.stats.hot_stale_reads <= result.stats.hot_reads);
        assert!(
            result.stats.hot_reads as f64 / result.stats.reads as f64 > 0.2,
            "zipfian head should carry a large read share, got {}/{}",
            result.stats.hot_reads,
            result.stats.reads
        );
    }

    #[test]
    fn split_controller_populates_the_hot_set_under_zipfian_load() {
        // Saturated write stage (single service slot, slow mutations) so the
        // hot keys of the Zipfian stream build real per-key backlogs; a
        // calibrated differential propagation window so the *residual*
        // (cold-tail) estimate stays cheap — the regime the split exists for.
        use harmony_model::staleness::PropagationModel;
        let mut controller_config = ControllerConfig::default();
        controller_config.monitor.interval_secs = 0.05;
        controller_config.monitor.estimator =
            harmony_monitor::collector::EstimatorKind::SlidingWindow(0.25);
        controller_config.propagation = PropagationModel::differential(0.02, 0.005);
        controller_config.queueing = harmony_model::queueing::QueueingModel {
            divergence_growth: 4.0,
            ..harmony_model::queueing::QueueingModel::differential(1e-4)
        };
        controller_config.per_key.enabled = true;
        let store = StoreConfig {
            replication_factor: 3,
            node_concurrency: 1,
            write_service_ms: 1.0,
            read_service_ms: 0.25,
            ..StoreConfig::default()
        };
        let mut spec = small_spec(32, 6_000);
        spec.hot_key_prefix = 10;
        let profile = profiles::grid5000_with_nodes(6);
        let result = run_experiment(
            &profile,
            store,
            controller_config,
            Box::new(HarmonyPolicy::new(3, 0.4)),
            spec,
        );
        assert!(
            result.decisions.iter().any(|d| d.hot_keys > 0),
            "deep per-key backlogs under zipfian saturation must escalate hot keys"
        );
        // The reported hot set is key-sorted and within the replication
        // factor; the deep-backlog head must actually be escalated above ONE
        // (keys whose individual estimate fits the tolerance may stay at 1).
        assert!(result.hot_set.windows(2).all(|w| w[0].key < w[1].key));
        assert!(result.hot_set.iter().all(|h| (1..=3).contains(&h.replicas)));
        assert!(
            result.hot_set.iter().any(|h| h.replicas > 1),
            "no hot key escalated above ONE: {:?}",
            result.hot_set
        );
        // Escalations actually reached the read path: some reads ran above ONE
        // even though the default level stayed cheap on most ticks.
        assert!(result.read_level_histogram.len() > 1);
    }

    #[test]
    fn crash_schedule_completes_the_run_and_counts_faults() {
        use harmony_sim::topology::NodeId;
        let spec = small_spec(8, 4_000);
        let profile = profiles::grid5000_with_nodes(6);
        // Crash one node early, restart it later; the closed-loop sessions
        // must keep completing operations throughout.
        let faults = FaultSchedule::empty()
            .crash_at(0.05, NodeId(1))
            .restart_at(0.4, NodeId(1));
        let result = run_experiment_with_faults(
            &profile,
            small_store_config(),
            ControllerConfig::default(),
            Box::new(StaticPolicy::Eventual),
            spec,
            faults,
        );
        assert!(result.stats.operations >= 4_000);
        assert_eq!(result.fault_counters.crashes, 1);
        assert_eq!(result.fault_counters.restarts, 1);
        assert!(result.stats.duration_secs() > 0.4, "run spans the schedule");
    }

    #[test]
    fn empty_fault_schedule_is_byte_identical_to_run_experiment() {
        let spec = small_spec(8, 2_000);
        let profile = profiles::grid5000_with_nodes(6);
        let plain = run_experiment(
            &profile,
            small_store_config(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
            spec.clone(),
        );
        let chaos_empty = run_experiment_with_faults(
            &profile,
            small_store_config(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
            spec,
            FaultSchedule::empty(),
        );
        assert_eq!(plain.decisions, chaos_empty.decisions);
        assert_eq!(plain.read_level_histogram, chaos_empty.read_level_histogram);
        assert_eq!(plain.stats.operations, chaos_empty.stats.operations);
        assert_eq!(plain.stats.stale_reads, chaos_empty.stats.stale_reads);
        assert_eq!(plain.cluster_totals, chaos_empty.cluster_totals);
        assert_eq!(chaos_empty.fault_counters.total(), 0);
        assert_eq!(chaos_empty.stats.aborted_ops, 0);
    }

    #[test]
    fn retry_backoff_doubles_and_clamps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 2.0,
            max_backoff_ms: 10.0,
            hedge_after_ms: 0.0,
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.backoff(1), SimTime::from_millis_f64(2.0));
        assert_eq!(p.backoff(2), SimTime::from_millis_f64(4.0));
        assert_eq!(p.backoff(3), SimTime::from_millis_f64(8.0));
        assert_eq!(p.backoff(4), SimTime::from_millis_f64(10.0), "clamped");
        assert_eq!(p.backoff(40), SimTime::from_millis_f64(10.0));
        assert!(!RetryPolicy::default().enabled());
        for bad in [
            RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                base_backoff_ms: 0.0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                max_backoff_ms: 0.5,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                hedge_after_ms: f64::NAN,
                ..RetryPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn disabled_retry_policy_is_byte_identical() {
        let spec = small_spec(8, 2_000);
        let profile = profiles::grid5000_with_nodes(6);
        let plain = run_experiment(
            &profile,
            small_store_config(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
            spec.clone(),
        );
        let with_knob = run_experiment_with_retry(
            &profile,
            small_store_config(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
            spec,
            FaultSchedule::empty(),
            RetryPolicy::default(),
        );
        assert_eq!(plain.decisions, with_knob.decisions);
        assert_eq!(plain.read_level_histogram, with_knob.read_level_histogram);
        assert_eq!(plain.stats.operations, with_knob.stats.operations);
        assert_eq!(plain.cluster_totals, with_knob.cluster_totals);
        assert_eq!(with_knob.stats.retries, 0);
        assert_eq!(with_knob.stats.hedged_reads, 0);
        assert_eq!(with_knob.stats.hedge_wins, 0);
    }

    /// The partition-then-heal chaos schedule strands operations (the reaper
    /// aborts them); retries convert those aborts into eventual successes
    /// without double-counting any operation, and the whole retrying run is
    /// deterministic per seed.
    #[test]
    fn retries_convert_aborts_without_double_counting() {
        use harmony_sim::topology::NodeId;
        let profile = profiles::grid5000_with_nodes(6);
        // Isolating a minority pair makes coordinators 0/1 unable to reach
        // *any* replica of the ~20% of keys placed entirely in the majority:
        // those operations abort as unavailable. A retried attempt picks the
        // next round-robin coordinator — usually on the majority side — so
        // client-side retries genuinely convert these aborts mid-partition.
        let schedule = || {
            FaultSchedule::empty()
                .partition_at(0.05, vec![vec![NodeId(0), NodeId(1)]])
                .heal_at(0.6)
        };
        let retry = RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 0.5,
            max_backoff_ms: 8.0,
            hedge_after_ms: 0.0,
        };
        let run_once = |retry_policy: RetryPolicy| {
            run_experiment_with_retry(
                &profile,
                small_store_config(),
                ControllerConfig::default(),
                Box::new(StaticPolicy::Strong),
                small_spec(8, 4_000),
                schedule(),
                retry_policy,
            )
        };
        let baseline = run_once(RetryPolicy::default());
        assert!(
            baseline.stats.aborted_ops > 0,
            "the partition schedule must strand operations for this test to bite \
             (duration {:.3}s, counters {:?}, ops {})",
            baseline.stats.duration_secs(),
            baseline.fault_counters,
            baseline.stats.operations,
        );
        let retried = run_once(retry);
        assert!(retried.stats.retries > 0, "retries must actually fire");
        assert!(
            retried.stats.aborted_ops < baseline.stats.aborted_ops,
            "retries must convert aborts: {} with vs {} without",
            retried.stats.aborted_ops,
            baseline.stats.aborted_ops
        );
        // No double counting: the retrying run completes exactly the same
        // number of workload operations, and every counted operation is a
        // read or a write exactly once.
        assert_eq!(retried.stats.operations, baseline.stats.operations);
        assert_eq!(
            retried.stats.reads + retried.stats.writes,
            retried.stats.operations
        );
        // Determinism: the same seed reproduces the retrying run exactly.
        let again = run_once(retry);
        assert_eq!(again.stats.operations, retried.stats.operations);
        assert_eq!(again.stats.retries, retried.stats.retries);
        assert_eq!(again.stats.aborted_ops, retried.stats.aborted_ops);
        assert_eq!(again.stats.stale_reads, retried.stats.stale_reads);
        assert_eq!(again.cluster_totals, retried.cluster_totals);
        assert_eq!(again.read_level_histogram, retried.read_level_histogram);
        assert_eq!(
            again.stats.read_latency.summary(),
            retried.stats.read_latency.summary()
        );
    }

    /// Hedged reads race a duplicate against slow primaries: duplicates are
    /// issued, first answer wins, nothing is counted twice, and the hedging
    /// run is deterministic per seed.
    #[test]
    fn hedged_reads_race_duplicates_without_double_counting() {
        let profile = profiles::grid5000_with_nodes(6);
        let hedging = RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 1.0,
            max_backoff_ms: 64.0,
            hedge_after_ms: 0.3,
        };
        let run_once = || {
            run_experiment_with_retry(
                &profile,
                small_store_config(),
                ControllerConfig::default(),
                Box::new(StaticPolicy::Eventual),
                small_spec(8, 2_000),
                FaultSchedule::empty(),
                hedging,
            )
        };
        let hedged = run_once();
        assert!(hedged.stats.hedged_reads > 0, "hedges must actually fire");
        assert!(hedged.stats.hedge_wins <= hedged.stats.hedged_reads);
        assert_eq!(
            hedged.stats.reads + hedged.stats.writes,
            hedged.stats.operations
        );
        // The hedged run completes the same workload as the plain one.
        let plain = run_with(Box::new(StaticPolicy::Eventual), small_spec(8, 2_000));
        assert_eq!(hedged.stats.operations, plain.stats.operations);
        // Determinism per seed.
        let again = run_once();
        assert_eq!(again.stats.hedged_reads, hedged.stats.hedged_reads);
        assert_eq!(again.stats.hedge_wins, hedged.stats.hedge_wins);
        assert_eq!(again.stats.operations, hedged.stats.operations);
        assert_eq!(again.cluster_totals, hedged.cluster_totals);
    }

    #[test]
    fn workload_b_produces_fewer_writes_than_a() {
        let mut spec_b = small_spec(8, 2_000);
        spec_b.workload = {
            let mut w = WorkloadSpec::workload_b(500);
            w.field_count = 2;
            w.field_size = 16;
            w
        };
        let a = run_with(Box::new(StaticPolicy::Eventual), small_spec(8, 2_000));
        let b = run_with(Box::new(StaticPolicy::Eventual), spec_b);
        let a_write_share = a.stats.writes as f64 / a.stats.operations as f64;
        let b_write_share = b.stats.writes as f64 / b.stats.operations as f64;
        assert!(b_write_share < a_write_share / 3.0);
    }

    fn run_obs(obs: ObsConfig) -> (ExperimentResult, ObsReport) {
        run_experiment_with_obs(
            &profiles::grid5000_with_nodes(6),
            small_store_config(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
            small_spec(8, 2_000),
            FaultSchedule::empty(),
            obs,
        )
    }

    #[test]
    fn obs_off_is_byte_identical_to_plain_run_with_empty_report() {
        let plain = run_with(Box::new(HarmonyPolicy::new(3, 0.2)), small_spec(8, 2_000));
        let (result, report) = run_obs(ObsConfig::off());
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&result).unwrap(),
            "an all-off obs config must not change the run at all"
        );
        assert_eq!(report.prometheus_text(), "");
        assert_eq!(report.traces_json(), "[]");
        assert!(report.audit.is_empty());
    }

    #[test]
    fn obs_enabled_observes_without_perturbing_the_run() {
        let plain = run_with(Box::new(HarmonyPolicy::new(3, 0.2)), small_spec(8, 2_000));
        let (result, report) = run_obs(ObsConfig::enabled());
        // Tracing samples by op-id modulo and metrics collect on scrape, so
        // even a fully enabled run is byte-identical to the plain one.
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&result).unwrap(),
            "enabled observability must not perturb the simulation"
        );
        // The registry carries protocol, controller and client series.
        let snap = report.registry.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .value
        };
        assert_eq!(
            counter("harmony_reads_completed_total"),
            result.cluster_totals.reads_completed
        );
        assert_eq!(
            counter("harmony_client_operations_total"),
            result.stats.operations
        );
        assert_eq!(
            counter("harmony_decisions_total"),
            result.decisions.len() as u64
        );
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "harmony_client_read_latency_us" && h.summary.count > 0));
        let text = report.prometheus_text();
        assert!(text.contains("# TYPE harmony_reads_completed_total counter"));
        // The flight recorder retained sampled traces with causal timelines.
        let traces: Vec<_> = report.recorder.traces().collect();
        assert!(
            !traces.is_empty(),
            "sampling 1/64 of 2000+ ops retains traces"
        );
        for t in &traces {
            assert!(t.events.len() >= 3, "trace has a causal timeline: {t:?}");
            assert!(!t.render().is_empty());
        }
        // Every decision is audited, and the audit aligns with the decisions.
        assert_eq!(report.audit.len(), result.decisions.len());
        assert!(report
            .audit
            .iter()
            .zip(result.decisions.iter())
            .all(|(a, d)| a.replicas_in_read == d.replicas_in_read as u64));
    }

    #[test]
    fn obs_traces_span_fault_epochs_and_audit_links_escalations() {
        let profile = profiles::grid5000_with_nodes(6);
        use harmony_sim::topology::NodeId;
        let faults = FaultSchedule::empty()
            .crash_at(0.05, NodeId(1))
            .restart_at(0.4, NodeId(1));
        let (result, report) = run_experiment_with_obs(
            &profile,
            small_store_config(),
            ControllerConfig::default(),
            Box::new(HarmonyPolicy::new(3, 0.2)),
            small_spec(16, 20_000),
            faults,
            ObsConfig {
                trace_sample_every: 4,
                ..ObsConfig::enabled()
            },
        );
        assert!(result.fault_counters.crashes > 0);
        // At least one retained trace observed the fault epoch advancing
        // between submit and completion.
        assert!(
            !report.fault_spanning_traces().is_empty(),
            "a crash mid-run must be visible in some sampled trace"
        );
        // The audit can explain every decision with its inputs.
        assert!(!report.audit.is_empty());
        for a in &report.audit {
            assert!(!a.explain().is_empty());
            assert!(a.live_nodes <= 6);
        }
    }
}

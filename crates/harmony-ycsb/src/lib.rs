//! # harmony-ycsb
//!
//! A YCSB-style workload harness for the Harmony reproduction: key-popularity
//! distributions, the core workload mixes (the paper uses workloads A and B),
//! closed-loop client sessions that consult a consistency policy before every
//! read, latency/throughput statistics, and the two staleness-measurement
//! mechanisms (simulator ground truth, and the paper's dual-read method).
//!
//! The main entry point is [`runner::run_experiment`], which assembles the
//! cluster from a [`harmony_sim::profiles::ClusterProfile`], performs the
//! load phase, runs the transaction phases under the given policy, and
//! returns an [`runner::ExperimentResult`] with everything the paper's
//! figures plot: 99th-percentile read latency, throughput, stale-read counts
//! and the stale-read-estimate timeline.
//!
//! ## Example
//!
//! ```
//! use harmony_ycsb::prelude::*;
//! use harmony_adaptive::policy::HarmonyPolicy;
//! use harmony_adaptive::config::ControllerConfig;
//! use harmony_sim::profiles;
//! use harmony_store::config::StoreConfig;
//!
//! let profile = profiles::grid5000_with_nodes(6);
//! let mut workload = WorkloadSpec::workload_a(200);
//! workload.field_count = 2;
//! workload.field_size = 16;
//! let spec = ExperimentSpec::single_phase(workload, 4, 500);
//! let store = StoreConfig { replication_factor: 3, ..StoreConfig::default() };
//! let result = run_experiment(
//!     &profile,
//!     store,
//!     ControllerConfig::default(),
//!     Box::new(HarmonyPolicy::new(3, 0.2)),
//!     spec,
//! );
//! assert!(result.stats.operations >= 500);
//! ```

pub mod distributions;
pub mod runner;
pub mod sharded;
pub mod stats;
pub mod workloads;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::distributions::{record_key, KeyChooser};
    pub use crate::runner::{
        run_experiment, run_experiment_with_faults, run_experiment_with_obs,
        run_experiment_with_retry, ExperimentResult, ExperimentSpec, Phase, PhaseResult,
        RetryPolicy, Runner, RunnerEvent, CHAOS_OP_TIMEOUT,
    };
    pub use crate::sharded::{run_sharded_experiment, run_sharded_experiment_with_obs};
    pub use crate::stats::{LatencyHistogram, LatencySummary, RunStats};
    pub use crate::workloads::{Operation, RequestDistribution, WorkloadSpec};
    pub use harmony_chaos::{
        FaultCounters, FaultEvent, FaultSchedule, FaultState, RandomFaultConfig, ScheduledFault,
    };
    pub use harmony_obs::{MetricsRegistry, ObsConfig, ObsReport};
}

pub use prelude::*;

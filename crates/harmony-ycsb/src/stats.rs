//! Latency and throughput statistics.
//!
//! The paper reports 99th-percentile read latency (Figure 5a/5b), overall
//! throughput (Figure 5c/5d) and the number of stale reads (Figure 6).
//! [`LatencyHistogram`] uses logarithmic bucketing (1 microsecond resolution
//! at the bottom, ~1% relative resolution above) so percentile queries are
//! cheap even for millions of samples.

use harmony_sim::clock::SimTime;
use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power of two (controls relative error).
const SUB_BUCKETS: usize = 64;

/// A log-bucketed latency histogram over microsecond values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64 * SUB_BUCKETS],
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    fn bucket_index(us: f64) -> usize {
        let v = us.max(0.0) as u64;
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize; // floor(log2 v), >= 6
        let shift = exp - (SUB_BUCKETS.trailing_zeros() as usize);
        let sub = (v >> shift) as usize - SUB_BUCKETS; // 0..SUB_BUCKETS
        let idx = (shift + 1) * SUB_BUCKETS + sub;
        idx.min(64 * SUB_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> f64 {
        if index < SUB_BUCKETS {
            return index as f64;
        }
        let shift = index / SUB_BUCKETS - 1;
        let sub = index % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) << shift) as f64
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: SimTime) {
        let us = latency.as_micros_f64();
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64 / 1e3
        }
    }

    /// Minimum observed latency in milliseconds.
    pub fn min_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us / 1e3
        }
    }

    /// Maximum observed latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_us / 1e3
    }

    /// The `q`-quantile (q in `[0, 1]`) in milliseconds, approximated to the
    /// histogram's bucket resolution.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i) / 1e3;
            }
        }
        self.max_ms()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        if other.count > 0 {
            self.min_us = self.min_us.min(other.min_us);
            self.max_us = self.max_us.max(other.max_us);
        }
    }

    /// A compact summary of this histogram.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ms: self.mean_ms(),
            min_ms: self.min_ms(),
            max_ms: self.max_ms(),
            p50_ms: self.percentile_ms(0.50),
            p95_ms: self.percentile_ms(0.95),
            p99_ms: self.percentile_ms(0.99),
        }
    }
}

/// A compact latency summary (what experiment reports carry around).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Mean (ms).
    pub mean_ms: f64,
    /// Minimum (ms).
    pub min_ms: f64,
    /// Maximum (ms).
    pub max_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms) — the metric of the paper's Figure 5(a)/(b).
    pub p99_ms: f64,
}

/// Aggregate statistics of one experiment run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Read-latency histogram.
    pub read_latency: LatencyHistogram,
    /// Write-latency histogram.
    pub write_latency: LatencyHistogram,
    /// Total operations completed.
    pub operations: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Stale reads observed via the simulator's ground truth.
    pub stale_reads: u64,
    /// Stale reads observed via the paper's dual-read measurement (only
    /// populated when that mode is enabled).
    pub stale_reads_dual_read: u64,
    /// Reads of the workload's designated hot keys (only populated when the
    /// experiment spec marks a hot-key prefix for reporting).
    pub hot_reads: u64,
    /// Stale reads among the hot-key reads (ground truth).
    pub hot_stale_reads: u64,
    /// Operations aborted by injected faults (unavailable replica sets,
    /// coordinator crashes, stall timeouts). Zero on fault-free runs. With a
    /// retry policy active, only operations abandoned after exhausting their
    /// attempts are counted here — converted aborts land in `retries`.
    pub aborted_ops: u64,
    /// Client retry attempts issued after aborted operations (always zero
    /// without an active retry policy).
    pub retries: u64,
    /// Hedged duplicate reads raced against slow primaries (always zero
    /// without an active hedging policy).
    pub hedged_reads: u64,
    /// Hedged reads where the duplicate answered before the primary.
    pub hedge_wins: u64,
    /// Virtual time at which the measured phase started.
    pub started_at: SimTime,
    /// Virtual time at which the measured phase ended.
    pub ended_at: SimTime,
}

impl RunStats {
    /// Wall-clock (virtual) duration of the run in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.ended_at.saturating_sub(self.started_at).as_secs_f64()
    }

    /// Overall throughput in operations per second.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        let d = self.duration_secs();
        if d <= 0.0 {
            0.0
        } else {
            self.operations as f64 / d
        }
    }

    /// Fraction of reads that were stale (ground truth).
    pub fn stale_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.stale_reads as f64 / self.reads as f64
        }
    }

    /// Fraction of hot-key reads that were stale (ground truth); zero when no
    /// hot-key prefix was designated or no hot key was read.
    pub fn hot_stale_fraction(&self) -> f64 {
        if self.hot_reads == 0 {
            0.0
        } else {
            self.hot_stale_reads as f64 / self.hot_reads as f64
        }
    }

    /// Merges another run's statistics into this one (the sharded runtime
    /// folds per-shard stats into one cluster result): histograms merge,
    /// counters add, and the time span becomes the union of both spans — so
    /// aggregate throughput is total operations over the longest shard's
    /// virtual duration, exactly what a cluster-wide observer would measure.
    pub fn absorb(&mut self, other: &RunStats) {
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.operations += other.operations;
        self.reads += other.reads;
        self.writes += other.writes;
        self.stale_reads += other.stale_reads;
        self.stale_reads_dual_read += other.stale_reads_dual_read;
        self.hot_reads += other.hot_reads;
        self.hot_stale_reads += other.hot_stale_reads;
        self.aborted_ops += other.aborted_ops;
        self.retries += other.retries;
        self.hedged_reads += other.hedged_reads;
        self.hedge_wins += other.hedge_wins;
        self.started_at = self.started_at.min(other.started_at);
        self.ended_at = self.ended_at.max(other.ended_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.percentile_ms(0.99), 0.0);
        assert_eq!(h.min_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_millis(5));
        assert_eq!(h.count(), 1);
        assert!((h.mean_ms() - 5.0).abs() < 1e-9);
        assert!((h.percentile_ms(0.5) - 5.0).abs() / 5.0 < 0.02);
        assert!((h.percentile_ms(0.99) - 5.0).abs() / 5.0 < 0.02);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 100)); // 0.1 .. 100 ms
        }
        let p50 = h.percentile_ms(0.50);
        let p99 = h.percentile_ms(0.99);
        assert!((p50 - 50.0).abs() / 50.0 < 0.03, "p50={p50}");
        assert!((p99 - 99.0).abs() / 99.0 < 0.03, "p99={p99}");
        assert!(h.min_ms() <= 0.11 && h.max_ms() >= 99.0);
        assert!(h.percentile_ms(1.0) >= p99);
        assert!(h.percentile_ms(0.0) <= p50);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let value_ms = 37.123;
        for _ in 0..100 {
            h.record(SimTime::from_millis_f64(value_ms));
        }
        let p = h.percentile_ms(0.5);
        assert!((p - value_ms).abs() / value_ms < 0.02, "p={p}");
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimTime::from_millis(1));
        b.record(SimTime::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_ms() >= 99.0);
        assert!(a.min_ms() <= 1.01);
        // Merging an empty histogram changes nothing.
        let before = a.summary();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.summary(), before);
    }

    #[test]
    fn summary_is_consistent() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(SimTime::from_millis(i));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        assert!(s.min_ms <= s.p50_ms && s.p99_ms <= s.max_ms);
        assert!(s.mean_ms > 0.0);
    }

    #[test]
    fn run_stats_throughput_and_staleness() {
        let mut s = RunStats {
            operations: 10_000,
            reads: 6_000,
            writes: 4_000,
            stale_reads: 600,
            started_at: SimTime::from_secs(10),
            ended_at: SimTime::from_secs(20),
            ..RunStats::default()
        };
        assert!((s.duration_secs() - 10.0).abs() < 1e-12);
        assert!((s.throughput_ops_per_sec() - 1000.0).abs() < 1e-9);
        assert!((s.stale_fraction() - 0.1).abs() < 1e-12);
        s.hot_reads = 1_000;
        s.hot_stale_reads = 250;
        assert!((s.hot_stale_fraction() - 0.25).abs() < 1e-12);
        s.hot_reads = 0;
        assert_eq!(s.hot_stale_fraction(), 0.0);
        s.reads = 0;
        assert_eq!(s.stale_fraction(), 0.0);
        s.ended_at = s.started_at;
        assert_eq!(s.throughput_ops_per_sec(), 0.0);
    }

    #[test]
    fn bucket_round_trip_is_monotone() {
        let mut prev = -1.0;
        for us in [0.0, 1.0, 10.0, 63.0, 64.0, 100.0, 1000.0, 65_536.0, 1e7] {
            let idx = LatencyHistogram::bucket_index(us);
            let v = LatencyHistogram::bucket_value(idx);
            assert!(v >= prev, "us={us} v={v} prev={prev}");
            assert!(
                v <= us + 1.0,
                "bucket value {v} should not exceed input {us}"
            );
            prev = v;
        }
    }
}

//! Latency and throughput statistics.
//!
//! The paper reports 99th-percentile read latency (Figure 5a/5b), overall
//! throughput (Figure 5c/5d) and the number of stale reads (Figure 6).
//! The log-bucketed [`LatencyHistogram`] now lives in `harmony-obs` (the
//! metrics registry and the sharded runtime share it); this module
//! re-exports it so existing `harmony_ycsb::stats::LatencyHistogram` users
//! keep working unchanged.

use harmony_sim::clock::SimTime;
use serde::{Deserialize, Serialize};

pub use harmony_obs::hist::{LatencyHistogram, LatencySummary};

/// Aggregate statistics of one experiment run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Read-latency histogram.
    pub read_latency: LatencyHistogram,
    /// Write-latency histogram.
    pub write_latency: LatencyHistogram,
    /// Total operations completed.
    pub operations: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Stale reads observed via the simulator's ground truth.
    pub stale_reads: u64,
    /// Stale reads observed via the paper's dual-read measurement (only
    /// populated when that mode is enabled).
    pub stale_reads_dual_read: u64,
    /// Reads of the workload's designated hot keys (only populated when the
    /// experiment spec marks a hot-key prefix for reporting).
    pub hot_reads: u64,
    /// Stale reads among the hot-key reads (ground truth).
    pub hot_stale_reads: u64,
    /// Operations aborted by injected faults (unavailable replica sets,
    /// coordinator crashes, stall timeouts). Zero on fault-free runs. With a
    /// retry policy active, only operations abandoned after exhausting their
    /// attempts are counted here — converted aborts land in `retries`.
    pub aborted_ops: u64,
    /// Client retry attempts issued after aborted operations (always zero
    /// without an active retry policy).
    pub retries: u64,
    /// Hedged duplicate reads raced against slow primaries (always zero
    /// without an active hedging policy).
    pub hedged_reads: u64,
    /// Hedged reads where the duplicate answered before the primary.
    pub hedge_wins: u64,
    /// Virtual time at which the measured phase started.
    pub started_at: SimTime,
    /// Virtual time at which the measured phase ended.
    pub ended_at: SimTime,
}

impl RunStats {
    /// Wall-clock (virtual) duration of the run in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.ended_at.saturating_sub(self.started_at).as_secs_f64()
    }

    /// Overall throughput in operations per second.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        let d = self.duration_secs();
        if d <= 0.0 {
            0.0
        } else {
            self.operations as f64 / d
        }
    }

    /// Fraction of reads that were stale (ground truth).
    pub fn stale_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.stale_reads as f64 / self.reads as f64
        }
    }

    /// Fraction of hot-key reads that were stale (ground truth); zero when no
    /// hot-key prefix was designated or no hot key was read.
    pub fn hot_stale_fraction(&self) -> f64 {
        if self.hot_reads == 0 {
            0.0
        } else {
            self.hot_stale_reads as f64 / self.hot_reads as f64
        }
    }

    /// Merges another run's statistics into this one (the sharded runtime
    /// folds per-shard stats into one cluster result): histograms merge,
    /// counters add, and the time span becomes the union of both spans — so
    /// aggregate throughput is total operations over the longest shard's
    /// virtual duration, exactly what a cluster-wide observer would measure.
    pub fn absorb(&mut self, other: &RunStats) {
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.operations += other.operations;
        self.reads += other.reads;
        self.writes += other.writes;
        self.stale_reads += other.stale_reads;
        self.stale_reads_dual_read += other.stale_reads_dual_read;
        self.hot_reads += other.hot_reads;
        self.hot_stale_reads += other.hot_stale_reads;
        self.aborted_ops += other.aborted_ops;
        self.retries += other.retries;
        self.hedged_reads += other.hedged_reads;
        self.hedge_wins += other.hedge_wins;
        self.started_at = self.started_at.min(other.started_at);
        self.ended_at = self.ended_at.max(other.ended_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The histogram moved to `harmony-obs`; this re-export smoke test (and
    /// the full histogram suite over there) keeps the old call sites honest.
    #[test]
    fn reexported_histogram_still_works() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_millis(5));
        assert_eq!(h.count(), 1);
        assert!((h.mean_ms() - 5.0).abs() < 1e-9);
        assert!((h.percentile_ms(0.99) - 5.0).abs() / 5.0 < 0.02);
        let s = h.summary();
        assert_eq!(s.count, 1);
    }

    #[test]
    fn run_stats_throughput_and_staleness() {
        let mut s = RunStats {
            operations: 10_000,
            reads: 6_000,
            writes: 4_000,
            stale_reads: 600,
            started_at: SimTime::from_secs(10),
            ended_at: SimTime::from_secs(20),
            ..RunStats::default()
        };
        assert!((s.duration_secs() - 10.0).abs() < 1e-12);
        assert!((s.throughput_ops_per_sec() - 1000.0).abs() < 1e-9);
        assert!((s.stale_fraction() - 0.1).abs() < 1e-12);
        s.hot_reads = 1_000;
        s.hot_stale_reads = 250;
        assert!((s.hot_stale_fraction() - 0.25).abs() < 1e-12);
        s.hot_reads = 0;
        assert_eq!(s.hot_stale_fraction(), 0.0);
        s.reads = 0;
        assert_eq!(s.stale_fraction(), 0.0);
        s.ended_at = s.started_at;
        assert_eq!(s.throughput_ops_per_sec(), 0.0);
    }

    #[test]
    fn absorb_folds_shard_stats() {
        let mut a = RunStats {
            operations: 10,
            reads: 6,
            writes: 4,
            started_at: SimTime::from_secs(1),
            ended_at: SimTime::from_secs(5),
            ..RunStats::default()
        };
        a.read_latency.record(SimTime::from_millis(2));
        let mut b = RunStats {
            operations: 20,
            reads: 12,
            writes: 8,
            stale_reads: 1,
            started_at: SimTime::from_secs(2),
            ended_at: SimTime::from_secs(9),
            ..RunStats::default()
        };
        b.read_latency.record(SimTime::from_millis(7));
        a.absorb(&b);
        assert_eq!(a.operations, 30);
        assert_eq!(a.read_latency.count(), 2);
        assert_eq!(a.started_at, SimTime::from_secs(1));
        assert_eq!(a.ended_at, SimTime::from_secs(9));
        assert!((a.duration_secs() - 8.0).abs() < 1e-12);
    }
}

//! # harmony-check
//!
//! Bounded model checking for the Harmony reproduction.
//!
//! The seeded Poisson chaos runs in `harmony-chaos` show that *some*
//! schedules preserve the paper's safety promises. This crate upgrades that
//! to a bounded correctness claim: it drives the typed-event protocol core
//! ([`harmony_store::machine::HarmonyMachine`]) through **every** message
//! delivery order, crash placement and partition placement up to a
//! configurable depth (DFS with
//! visited-state deduplication), plus a seeded random-walk mode for schedules
//! deeper than the exhaustive bound, and asserts after every explored
//! schedule that
//!
//! 1. **no acknowledged write is ever lost** — after quiesce (heal, restart,
//!    drain) some live node holds every acked timestamp (durability) and
//!    every serving replica of the key has converged to it (convergence —
//!    this is the invariant that catches a dropped hinted handoff);
//! 2. **the staleness estimate respects the configured tolerance on
//!    quiesce** — with the write pipeline drained, the analytic stale-read
//!    probability collapses under the application's tolerance;
//! 3. **client accounting balances** — every submitted operation is either
//!    completed or aborted, never silently dropped.
//!
//! ## How exploration controls the protocol
//!
//! The checker implements [`harmony_sim::context::EventCtx`] with a plain
//! pending list and a **frozen clock**: emitted delays are discarded and
//! `now` is always zero. Delivery order is chosen by the explorer, not by
//! timestamps — which is exactly the adversarial-network abstraction
//! (latencies are arbitrary, so any delivery order is fair game). Freezing
//! the clock also makes write timestamps small dense counters and every
//! `submitted_at` zero, so structurally equal states hash equally and the
//! visited-state set prunes aggressively. The cluster's RNG is excluded from
//! state fingerprints: with background read repair pinned to probability 0
//! or 1 by every checker scenario, RNG draws only label events with
//! latencies the checker ignores.
//!
//! Violating schedules serialise to JSON ([`trace::ScheduleTrace`]) and are
//! replayed deterministically by the regression corpus in
//! `tests/explored_schedules.rs`.

pub mod explorer;
pub mod invariants;
pub mod scenario;
pub mod trace;

pub use explorer::{CheckerCtx, ExploreConfig, ExploreStats, FoundViolation};
pub use invariants::Violation;
pub use scenario::Scenario;
pub use trace::{pretty_print, ScheduleTrace, TraceStep};

//! The bounded schedule explorer: exhaustive DFS over delivery orders,
//! crash placements and partition placements, plus a seeded random-walk
//! mode for deeper schedules.

use harmony_chaos::FaultEvent;
use harmony_sim::clock::SimTime;
use harmony_sim::context::EventCtx;
use harmony_sim::topology::NodeId;
use harmony_store::cluster::fnv1a;
use harmony_store::machine::{HarmonyMachine, MachineEvent, OnEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::invariants::{self, Violation};
use crate::scenario::Scenario;
use crate::trace::{ScheduleTrace, TraceStep};

/// The checker's event context: a plain pending list under a frozen clock.
///
/// `emit` discards the delay and appends to `pending`; `now` is always zero.
/// Delivery order is whatever the explorer picks — the adversarial-network
/// abstraction where every latency assignment, and therefore every delivery
/// order, is possible. Freezing the clock makes timestamps dense counters
/// and submission times all-zero, so structurally equivalent states reached
/// through different interleavings produce identical fingerprints.
#[derive(Debug, Clone, Default)]
pub struct CheckerCtx {
    /// Events emitted but not yet delivered, in emission order.
    pub pending: Vec<MachineEvent>,
}

impl CheckerCtx {
    /// An empty context.
    pub fn new() -> Self {
        CheckerCtx::default()
    }

    /// Delivers the pending event at `index` to the machine (followups the
    /// machine emits are appended to `pending`).
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn deliver(&mut self, index: usize, machine: &mut HarmonyMachine) {
        let event = self.pending.remove(index);
        machine.on_event(event, self);
    }
}

impl EventCtx<MachineEvent> for CheckerCtx {
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }

    fn emit(&mut self, _delay: SimTime, event: MachineEvent) {
        self.pending.push(event);
    }
}

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum schedule depth (delivery choices + fault choices per branch).
    pub max_depth: usize,
    /// Safety cap on distinct visited states; exploration truncates (and
    /// says so in the stats) rather than running away.
    pub max_states: u64,
    /// Cap on recorded violating schedules (every violation is *counted*,
    /// but only this many carry a full replayable trace).
    pub max_recorded_violations: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 12,
            max_states: 2_000_000,
            max_recorded_violations: 16,
        }
    }
}

/// A violation together with the schedule that produced it — serialisable,
/// so found counterexamples can join the regression corpus.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FoundViolation {
    /// What broke.
    pub violation: Violation,
    /// The replayable schedule that broke it.
    pub trace: ScheduleTrace,
}

/// Exploration statistics — the checker's output.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExploreStats {
    /// Distinct states visited (fingerprint-deduplicated).
    pub states_explored: u64,
    /// Schedules driven to quiesce and invariant-checked.
    pub schedules_completed: u64,
    /// Branches pruned because an equal-or-better-explored state was seen.
    pub dedup_hits: u64,
    /// Total violations observed (including ones past the recording cap).
    pub violation_count: u64,
    /// Recorded violating schedules (up to the configured cap).
    pub violations: Vec<FoundViolation>,
    /// True if the state-count safety cap truncated exploration — the
    /// exhaustiveness claim only holds when this is false.
    pub truncated: bool,
}

impl ExploreStats {
    fn new() -> Self {
        ExploreStats {
            states_explored: 0,
            schedules_completed: 0,
            dedup_hits: 0,
            violation_count: 0,
            violations: Vec::new(),
            truncated: false,
        }
    }
}

/// Fingerprint of a checker configuration: machine state + pending events +
/// remaining fault budgets (crashes and partitions). Equal fingerprints ⇒
/// identical reachable behaviour (see the RNG/clock discussion in the crate
/// docs).
///
/// The pending list is fingerprinted as a sorted multiset: the explorer can
/// pick any index, so two states whose pending lists differ only in order
/// reach exactly the same successors — position is labelling, not state.
fn fingerprint(
    machine: &HarmonyMachine,
    ctx: &CheckerCtx,
    crashes_left: usize,
    partitions_left: usize,
) -> u64 {
    let mut s = machine.state_digest_string();
    let mut pending: Vec<String> = ctx.pending.iter().map(|ev| format!("{ev:?}")).collect();
    pending.sort_unstable();
    let _ = write!(
        s,
        "pending={pending:?};crashes_left={crashes_left};partitions_left={partitions_left};"
    );
    fnv1a(s.as_bytes())
}

/// Runs the quiesce procedure in place: cancel periodic timers, heal any
/// partition, restart every crashed member, then drain the pending list in
/// FIFO order until empty. After this the cluster is stable — nothing is in
/// flight, nothing is queued — and the quiesced invariants must hold.
pub fn quiesce(machine: &mut HarmonyMachine, ctx: &mut CheckerCtx) {
    machine.cancel_all_timers();
    machine.on_event(MachineEvent::Fault(FaultEvent::HealPartition), ctx);
    let n = machine.cluster().node_count();
    for i in 0..n {
        let node = NodeId(i as u32);
        let faults = machine.cluster().fault_state();
        if faults.is_member(node) && !faults.is_alive(node) {
            machine.on_event(MachineEvent::Fault(FaultEvent::RestartNode { node }), ctx);
        }
    }
    // FIFO drain: deterministic, and terminating because every protocol
    // event generates a bounded number of followups and all timers are
    // cancelled. The cap turns a non-termination bug into a loud failure.
    let mut steps = 0usize;
    while !ctx.pending.is_empty() {
        ctx.deliver(0, machine);
        steps += 1;
        assert!(
            steps < 1_000_000,
            "quiesce drain did not terminate — protocol emits unbounded followups"
        );
    }
}

/// Clones the branch state, quiesces the clone, and checks invariants.
fn complete_schedule(
    machine: &HarmonyMachine,
    ctx: &CheckerCtx,
    steps: &[TraceStep],
    scenario: &Scenario,
    config: &ExploreConfig,
    stats: &mut ExploreStats,
) {
    let mut m = machine.clone();
    let mut c = ctx.clone();
    quiesce(&mut m, &mut c);
    stats.schedules_completed += 1;
    for violation in invariants::check_quiesced(&m, scenario) {
        stats.violation_count += 1;
        if stats.violations.len() < config.max_recorded_violations {
            stats.violations.push(FoundViolation {
                violation,
                trace: ScheduleTrace {
                    name: format!("violation-{}", stats.violation_count),
                    description: "explorer-found violating schedule".to_string(),
                    scenario: scenario.name.clone(),
                    steps: steps.to_vec(),
                },
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    machine: &HarmonyMachine,
    ctx: &CheckerCtx,
    crashes_left: usize,
    partitions_left: usize,
    depth_left: usize,
    steps: &mut Vec<TraceStep>,
    seen: &mut HashMap<u64, usize>,
    scenario: &Scenario,
    config: &ExploreConfig,
    stats: &mut ExploreStats,
) {
    if stats.truncated {
        return;
    }
    // A schedule ends when nothing is pending (the protocol ran to
    // completion under this ordering) or the depth budget is spent (the
    // remainder is completed deterministically by the quiesce drain).
    if ctx.pending.is_empty() || depth_left == 0 {
        complete_schedule(machine, ctx, steps, scenario, config, stats);
        return;
    }
    let fp = fingerprint(machine, ctx, crashes_left, partitions_left);
    match seen.get(&fp).copied() {
        // Already explored from here with at least this much budget left —
        // nothing new can be reached. (Keying the fingerprint map on the
        // *maximum* remaining budget keeps the pruning sound: a revisit with
        // MORE budget re-explores.)
        Some(d) if d >= depth_left => {
            stats.dedup_hits += 1;
            return;
        }
        Some(_) => {
            seen.insert(fp, depth_left);
        }
        None => {
            seen.insert(fp, depth_left);
            stats.states_explored += 1;
            if stats.states_explored >= config.max_states {
                stats.truncated = true;
                return;
            }
        }
    }
    // Choice 1..n: deliver any pending event next. Identical pending events
    // are interchangeable (delivering either yields the same successor), so
    // only the first of each duplicate group branches — a symmetry reduction
    // on top of the fingerprint dedup.
    let labels: Vec<String> = ctx.pending.iter().map(|ev| format!("{ev:?}")).collect();
    for i in 0..ctx.pending.len() {
        if labels[..i].contains(&labels[i]) {
            continue;
        }
        let mut m = machine.clone();
        let mut c = ctx.clone();
        c.deliver(i, &mut m);
        m.drain_completions();
        steps.push(TraceStep::Deliver { index: i });
        dfs(
            &m,
            &c,
            crashes_left,
            partitions_left,
            depth_left - 1,
            steps,
            seen,
            scenario,
            config,
            stats,
        );
        steps.pop();
    }
    // Choice n+1..: crash any currently-serving node (if budget remains).
    if crashes_left > 0 {
        for i in 0..machine.cluster().node_count() {
            let node = NodeId(i as u32);
            if !machine.cluster().fault_state().is_serving(node) {
                continue;
            }
            let mut m = machine.clone();
            let mut c = ctx.clone();
            let fault = FaultEvent::CrashNode { node };
            m.on_event(MachineEvent::Fault(fault.clone()), &mut c);
            m.drain_completions();
            steps.push(TraceStep::Fault { fault });
            dfs(
                &m,
                &c,
                crashes_left - 1,
                partitions_left,
                depth_left - 1,
                steps,
                seen,
                scenario,
                config,
                stats,
            );
            steps.pop();
        }
    }
    // Choice ..: isolate any currently-serving node behind a partition (if
    // budget remains and no partition is already active — the fault state
    // holds one partition at a time, so stacking placements would just
    // overwrite). Unlisted nodes form the implicit other side of the cut;
    // the quiesce procedure heals before invariants run.
    if partitions_left > 0 && !machine.cluster().fault_state().partitioned() {
        for i in 0..machine.cluster().node_count() {
            let node = NodeId(i as u32);
            if !machine.cluster().fault_state().is_serving(node) {
                continue;
            }
            let mut m = machine.clone();
            let mut c = ctx.clone();
            let fault = FaultEvent::Partition {
                groups: vec![vec![node]],
            };
            m.on_event(MachineEvent::Fault(fault.clone()), &mut c);
            m.drain_completions();
            steps.push(TraceStep::Fault { fault });
            dfs(
                &m,
                &c,
                crashes_left,
                partitions_left - 1,
                depth_left - 1,
                steps,
                seen,
                scenario,
                config,
                stats,
            );
            steps.pop();
        }
    }
}

/// Exhaustively explores every delivery order, crash placement and
/// partition placement of `scenario` up to `config.max_depth`, checking the
/// quiesced invariants at the end of every schedule. `mutate` runs once against the freshly built
/// machine before exploration — the hook the mutation tests use to break
/// the protocol on purpose (pass `|_| {}` for the real protocol).
pub fn explore_with(
    scenario: &Scenario,
    config: &ExploreConfig,
    mutate: impl FnOnce(&mut HarmonyMachine),
) -> ExploreStats {
    let (mut machine, ctx, _keys) = scenario.build();
    mutate(&mut machine);
    let mut stats = ExploreStats::new();
    let mut seen = HashMap::new();
    let mut steps = Vec::new();
    dfs(
        &machine,
        &ctx,
        scenario.max_crashes,
        scenario.max_partitions,
        config.max_depth,
        &mut steps,
        &mut seen,
        scenario,
        config,
        &mut stats,
    );
    stats
}

/// [`explore_with`] on the unmodified protocol.
pub fn explore(scenario: &Scenario, config: &ExploreConfig) -> ExploreStats {
    explore_with(scenario, config, |_| {})
}

/// Seeded random-walk mode: `walks` schedules of up to `depth` uniformly
/// random choices each (deliveries and, while the respective budgets
/// remain, crashes and partition placements), every one driven to quiesce
/// and invariant-checked. Reaches depths the
/// exhaustive bound cannot; same seed ⇒ byte-identical stats. States are
/// fingerprinted for the `states_explored` count but walks are never pruned.
pub fn random_walk(
    scenario: &Scenario,
    walks: u64,
    depth: usize,
    seed: u64,
    config: &ExploreConfig,
) -> ExploreStats {
    let mut stats = ExploreStats::new();
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..walks {
        let (mut machine, mut ctx, _keys) = scenario.build();
        let mut crashes_left = scenario.max_crashes;
        let mut partitions_left = scenario.max_partitions;
        let mut steps = Vec::new();
        for _ in 0..depth {
            if ctx.pending.is_empty() {
                break;
            }
            let serving = || {
                (0..machine.cluster().node_count())
                    .filter(|&i| machine.cluster().fault_state().is_serving(NodeId(i as u32)))
                    .collect::<Vec<_>>()
            };
            let crash_choices = if crashes_left > 0 {
                serving()
            } else {
                Vec::new()
            };
            let partition_choices =
                if partitions_left > 0 && !machine.cluster().fault_state().partitioned() {
                    serving()
                } else {
                    Vec::new()
                };
            let total = ctx.pending.len() + crash_choices.len() + partition_choices.len();
            let choice = rng.gen_range(0..total);
            if choice < ctx.pending.len() {
                ctx.deliver(choice, &mut machine);
                steps.push(TraceStep::Deliver { index: choice });
            } else if choice < ctx.pending.len() + crash_choices.len() {
                let node = NodeId(crash_choices[choice - ctx.pending.len()] as u32);
                let fault = FaultEvent::CrashNode { node };
                machine.on_event(MachineEvent::Fault(fault.clone()), &mut ctx);
                steps.push(TraceStep::Fault { fault });
                crashes_left -= 1;
            } else {
                let i = choice - ctx.pending.len() - crash_choices.len();
                let node = NodeId(partition_choices[i] as u32);
                let fault = FaultEvent::Partition {
                    groups: vec![vec![node]],
                };
                machine.on_event(MachineEvent::Fault(fault.clone()), &mut ctx);
                steps.push(TraceStep::Fault { fault });
                partitions_left -= 1;
            }
            machine.drain_completions();
            let fp = fingerprint(&machine, &ctx, crashes_left, partitions_left);
            if seen.insert(fp, 0).is_none() {
                stats.states_explored += 1;
            } else {
                stats.dedup_hits += 1;
            }
        }
        complete_schedule(&machine, &ctx, &steps, scenario, config, &mut stats);
    }
    stats
}

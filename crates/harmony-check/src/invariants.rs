//! The quiesced-state invariants every explored schedule must satisfy.
//!
//! All checks run *after* [`crate::explorer::quiesce`]: partitions healed,
//! crashed members restarted, every pending event drained. A violation at
//! that point is unambiguous — there is no in-flight message left that could
//! still repair it.

use harmony_model::staleness::StaleReadModel;
use harmony_store::machine::HarmonyMachine;
use harmony_store::prelude::*;
use serde::{Deserialize, Serialize};

use crate::scenario::{Scenario, ScenarioOp};

/// One broken invariant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant broke (`"durability"`, `"convergence"`,
    /// `"accounting"`, `"staleness"`).
    pub rule: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(rule: &str, detail: String) -> Self {
        Violation {
            rule: rule.to_string(),
            detail,
        }
    }
}

/// Checks every invariant against a quiesced machine, returning all
/// violations found (empty ⇒ the schedule is safe).
pub fn check_quiesced(machine: &HarmonyMachine, scenario: &Scenario) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_accounting(machine, &mut violations);
    check_acked_writes(machine, scenario, &mut violations);
    check_staleness(machine, scenario, &mut violations);
    violations
}

/// **Accounting**: every submitted operation is either completed or aborted
/// — nothing is silently dropped — and nothing is still unresolved after the
/// drain.
fn check_accounting(machine: &HarmonyMachine, violations: &mut Vec<Violation>) {
    let totals = machine.cluster().totals();
    let submitted = totals.reads_submitted + totals.writes_submitted;
    let resolved = totals.reads_completed + totals.writes_completed + totals.ops_aborted;
    if submitted != resolved {
        violations.push(Violation::new(
            "accounting",
            format!(
                "submitted {submitted} ops but resolved {resolved} \
                 (reads {}+{} writes {}+{} aborted {})",
                totals.reads_submitted,
                totals.reads_completed,
                totals.writes_submitted,
                totals.writes_completed,
                totals.ops_aborted
            ),
        ));
    }
    let unresolved = machine.cluster().unresolved_ops();
    if unresolved != 0 {
        violations.push(Violation::new(
            "accounting",
            format!("{unresolved} operations still unresolved after quiesce drain"),
        ));
    }
}

/// **Durability + convergence**: for every key, the highest timestamp ever
/// acknowledged to a client must survive quiesce.
///
/// - *durability*: at least one member node holds the key at (or past) the
///   acked timestamp — the write exists somewhere;
/// - *convergence*: **every** serving replica of the key has caught up to it
///   — with partitions healed, crashes restarted and all hints drained, any
///   replica still behind means anti-entropy lost data (this is the
///   invariant that catches a dropped hinted handoff).
fn check_acked_writes(
    machine: &HarmonyMachine,
    scenario: &Scenario,
    violations: &mut Vec<Violation>,
) {
    let cluster = machine.cluster();
    for name in scenario.key_names() {
        let Some(key) = cluster.key_id(name) else {
            continue;
        };
        let acked = cluster.latest_acked_ts(key);
        if acked == Timestamp::ZERO {
            continue; // nothing was ever acknowledged for this key
        }
        let replicas = cluster.replicas_for(name);
        let durable = replicas.iter().any(|&node| {
            cluster.fault_state().is_member(node)
                && cluster.node(node).digest(key).is_some_and(|ts| ts >= acked)
        });
        if !durable {
            violations.push(Violation::new(
                "durability",
                format!(
                    "key {name:?}: acked timestamp {acked:?} held by no member replica \
                     (replicas {replicas:?})"
                ),
            ));
        }
        for &node in &replicas {
            if !cluster.fault_state().is_serving(node) {
                continue;
            }
            let held = cluster.node(node).digest(key);
            if held.is_none_or(|ts| ts < acked) {
                violations.push(Violation::new(
                    "convergence",
                    format!(
                        "key {name:?}: serving replica {node:?} holds {held:?}, behind \
                         acked timestamp {acked:?} after quiesce"
                    ),
                ));
            }
        }
    }
}

/// **Staleness**: with the write pipeline fully drained, the propagation
/// window `Tp` is zero, and the paper's closed-form stale-read probability at
/// the scenario's operation mix must collapse under the configured
/// tolerance. This pins the estimator's boundary behaviour on every explored
/// schedule — a quiesced cluster that still predicts stale reads would send
/// Harmony's consistency controller into a needless escalation spiral.
fn check_staleness(machine: &HarmonyMachine, scenario: &Scenario, violations: &mut Vec<Violation>) {
    let model = StaleReadModel::new(scenario.replication_factor);
    // Nominal per-second rates from the scenario mix over a 1-second window;
    // the magnitude is irrelevant at Tp = 0 (probability is exactly 0) but
    // keeps the check honest if quiesce ever leaves work in flight.
    let reads = scenario
        .ops
        .iter()
        .filter(|op| matches!(op, ScenarioOp::Read { .. }))
        .count() as f64;
    let writes = scenario.ops.len() as f64 - reads;
    let tp_secs = if machine.cluster().unresolved_ops() == 0 {
        0.0
    } else {
        f64::INFINITY
    };
    let p = model.stale_probability_saturating(reads, writes, tp_secs);
    if p > scenario.stale_tolerance {
        violations.push(Violation::new(
            "staleness",
            format!(
                "quiesced stale-read probability {p} exceeds tolerance {} \
                 (reads {reads}/s writes {writes}/s Tp {tp_secs}s)",
                scenario.stale_tolerance
            ),
        ));
    }
}

//! `harmony-check` — bounded model checker CLI.
//!
//! Exhaustively explores every message delivery order and crash placement of
//! a registered scenario up to a depth bound (plus an optional seeded
//! random-walk pass for deeper schedules), checks the quiesced invariants
//! after every schedule, and reports explored-state counts and wall-clock.
//!
//! Exit status: 0 if every explored schedule satisfied every invariant,
//! 1 if any violation was found, 2 on usage errors.
//!
//! ```text
//! harmony-check --quick                  # CI smoke: depth 12, <60s
//! harmony-check --depth 14 --walks 500   # nightly: deeper bound + walks
//! harmony-check --scenario three_node_write_read --depth 10
//! ```

use harmony_check::{explorer, scenario, ExploreConfig, ExploreStats};
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

/// The `--out` JSON report.
#[derive(Serialize)]
struct Report {
    scenario: String,
    depth: usize,
    exhaustive: ExploreStats,
    walks: Option<ExploreStats>,
}

struct Args {
    scenario: String,
    depth: usize,
    max_states: u64,
    walks: u64,
    walk_depth: usize,
    seed: u64,
    out: Option<String>,
}

const USAGE: &str = "\
usage: harmony-check [options]
  --quick              CI preset: three_node_two_write at depth 12, no walks
  --scenario NAME      scenario to check (default three_node_two_write)
  --depth N            exhaustive exploration depth bound (default 12)
  --max-states N       safety cap on distinct states (default 2000000)
  --walks N            random walks to run after the exhaustive pass (default 0)
  --walk-depth N       depth of each random walk (default 3x --depth)
  --seed N             random-walk seed (default 20120920)
  --out PATH           write the full JSON report here
  --list               list registered scenarios
  --help               this text";

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        scenario: "three_node_two_write".to_string(),
        depth: 12,
        max_states: 2_000_000,
        walks: 0,
        walk_depth: 0,
        seed: 20120920,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--quick" => {
                args.scenario = "three_node_two_write".to_string();
                args.depth = 12;
                args.walks = 0;
            }
            "--scenario" => args.scenario = value("--scenario")?,
            "--depth" => args.depth = parse_num(&value("--depth")?)? as usize,
            "--max-states" => args.max_states = parse_num(&value("--max-states")?)?,
            "--walks" => args.walks = parse_num(&value("--walks")?)?,
            "--walk-depth" => args.walk_depth = parse_num(&value("--walk-depth")?)? as usize,
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--out" => args.out = Some(value("--out")?),
            "--list" => {
                for name in [
                    "three_node_two_write",
                    "three_node_write_read",
                    "three_node_partition_write",
                ] {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if args.walk_depth == 0 {
        args.walk_depth = args.depth * 3;
    }
    Ok(Some(args))
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.replace('_', "")
        .parse()
        .map_err(|_| format!("not a number: {s:?}"))
}

fn report_pass(label: &str, stats: &ExploreStats, secs: f64) {
    println!(
        "[{label}] states explored: {}  schedules checked: {}  dedup hits: {}  \
         violations: {}  wall-clock: {secs:.2}s{}",
        stats.states_explored,
        stats.schedules_completed,
        stats.dedup_hits,
        stats.violation_count,
        if stats.truncated {
            "  (TRUNCATED at state cap — bound NOT exhaustive)"
        } else {
            ""
        }
    );
    for found in &stats.violations {
        println!(
            "[{label}] VIOLATION {}: {}",
            found.violation.rule, found.violation.detail
        );
        // Human-readable timeline first (one line per event: logical time,
        // node, event kind), then the raw replayable JSON for the corpus.
        match harmony_check::pretty_print(&found.trace) {
            Ok(timeline) => {
                for line in timeline.lines() {
                    println!("[{label}]   {line}");
                }
            }
            Err(err) => println!("[{label}]   (cannot pretty-print: {err})"),
        }
        println!(
            "[{label}]   schedule: {}",
            serde_json::to_string(&found.trace).expect("trace serialises")
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(scenario) = scenario::by_name(&args.scenario) else {
        eprintln!("unknown scenario {:?} (try --list)", args.scenario);
        return ExitCode::from(2);
    };
    println!(
        "scenario {} ({} nodes, RF {}, {} ops, <= {} crash(es) and {} partition(s)/schedule)",
        scenario.name,
        scenario.nodes,
        scenario.replication_factor,
        scenario.ops.len(),
        scenario.max_crashes,
        scenario.max_partitions
    );

    let config = ExploreConfig {
        max_depth: args.depth,
        max_states: args.max_states,
        ..ExploreConfig::default()
    };
    let started = Instant::now();
    let exhaustive = explorer::explore(&scenario, &config);
    let exhaustive_secs = started.elapsed().as_secs_f64();
    report_pass(
        &format!("exhaustive depth {}", args.depth),
        &exhaustive,
        exhaustive_secs,
    );

    let walk = if args.walks > 0 {
        let started = Instant::now();
        let stats =
            explorer::random_walk(&scenario, args.walks, args.walk_depth, args.seed, &config);
        let secs = started.elapsed().as_secs_f64();
        report_pass(
            &format!(
                "random-walk {}x depth {} seed {}",
                args.walks, args.walk_depth, args.seed
            ),
            &stats,
            secs,
        );
        Some(stats)
    } else {
        None
    };

    let total_violations =
        exhaustive.violation_count + walk.as_ref().map_or(0, |w| w.violation_count);
    if let Some(path) = &args.out {
        let report = serde_json::to_string_pretty(&Report {
            scenario: scenario.name.clone(),
            depth: args.depth,
            exhaustive: exhaustive.clone(),
            walks: walk.clone(),
        })
        .expect("report serialises");
        if let Err(err) = std::fs::write(path, report) {
            eprintln!("cannot write {path:?}: {err}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }

    if total_violations > 0 {
        println!("FAIL: {total_violations} violating schedule(s)");
        ExitCode::FAILURE
    } else {
        println!(
            "OK: no acknowledged write lost, staleness within tolerance on every explored schedule"
        );
        ExitCode::SUCCESS
    }
}

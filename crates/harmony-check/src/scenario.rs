//! Checkable scenarios: small, fully-specified cluster setups plus the
//! client operations submitted before exploration starts.
//!
//! Scenarios are deliberately tiny — model checking pays exponentially for
//! every extra in-flight message — and deliberately deterministic:
//! background read repair is pinned to probability 0 so the cluster RNG can
//! be excluded from state fingerprints (see the crate docs).

use harmony_sim::latency::Latency;
use harmony_sim::rng::RngFactory;
use harmony_sim::topology::{NetworkModel, Topology};
use harmony_store::machine::HarmonyMachine;
use harmony_store::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::explorer::CheckerCtx;

/// One client operation submitted before exploration starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioOp {
    /// A client write of a one-field mutation (the value encodes the op's
    /// position so divergent replicas are visibly divergent).
    Write {
        /// Key name.
        key: String,
        /// Consistency level.
        consistency: ConsistencyLevel,
    },
    /// A client read.
    Read {
        /// Key name.
        key: String,
        /// Consistency level.
        consistency: ConsistencyLevel,
    },
}

/// A fully-specified checkable scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Registry name — traces reference scenarios by this.
    pub name: String,
    /// Seed for the cluster RNG streams (latency/service sampling only).
    pub seed: u64,
    /// Nodes, as one single-DC rack.
    pub nodes: usize,
    /// Replication factor.
    pub replication_factor: usize,
    /// Operations submitted up front; their initial `Deliver` events form
    /// the root pending set the explorer reorders.
    pub ops: Vec<ScenarioOp>,
    /// How many crash placements a single schedule may contain.
    pub max_crashes: usize,
    /// How many partition placements a single schedule may contain. Each
    /// placement isolates one serving node from the rest of the cluster;
    /// the quiesce procedure heals before invariants are checked, so a
    /// partition tests whether in-flight state stranded behind the cut is
    /// recovered, not whether the cut itself is survivable.
    pub max_partitions: usize,
    /// Stale-read tolerance the quiesced staleness estimate must respect.
    pub stale_tolerance: f64,
}

impl Scenario {
    /// The distinct key names this scenario touches, in first-use order.
    pub fn key_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for op in &self.ops {
            let (ScenarioOp::Write { key, .. } | ScenarioOp::Read { key, .. }) = op;
            if !names.contains(&key.as_str()) {
                names.push(key);
            }
        }
        names
    }

    /// Builds the machine and submits every operation, returning the machine,
    /// the context holding the initial pending events, and the interned keys
    /// (parallel to [`Scenario::key_names`]).
    pub fn build(&self) -> (HarmonyMachine, CheckerCtx, Vec<KeyId>) {
        let topology = Topology::single_dc(1, u16::try_from(self.nodes).expect("tiny scenario"));
        // Constant latency: the sampled value never matters (the checker
        // discards delays), but a constant keeps the RNG stream shared with
        // simulation-based drivers of the same scenario.
        let network = NetworkModel::uniform(Latency::constant_ms(0.5));
        let config = StoreConfig {
            replication_factor: self.replication_factor,
            // Pinned to 0 so `gen_bool` is deterministic regardless of RNG
            // state — the precondition for excluding the RNG from state
            // fingerprints (see the crate docs).
            background_read_repair_chance: 0.0,
            ..StoreConfig::default()
        };
        let cluster = Cluster::new(config, topology, network, RngFactory::new(self.seed));
        let mut machine = HarmonyMachine::new(cluster);
        let mut ctx = CheckerCtx::new();
        let keys: Vec<KeyId> = self
            .key_names()
            .iter()
            .map(|name| machine.cluster_mut().intern_key(name))
            .collect();
        let key_id = |name: &str, machine: &HarmonyMachine| {
            machine
                .cluster()
                .key_id(name)
                .expect("scenario key interned above")
        };
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                ScenarioOp::Write { key, consistency } => {
                    let id = key_id(key, &machine);
                    machine.submit_write(
                        id,
                        Arc::new(Mutation::single("f", format!("w{i}").into_bytes())),
                        *consistency,
                        &mut ctx,
                    );
                }
                ScenarioOp::Read { key, consistency } => {
                    let id = key_id(key, &machine);
                    machine.submit_read(id, *consistency, &mut ctx);
                }
            }
        }
        (machine, ctx, keys)
    }
}

/// The acceptance-criteria scenario: 3 nodes, RF = 3, two quorum writes to
/// the same key, at most one crash per schedule. Every delivery order and
/// crash placement is exhaustively enumerable at moderate depth, yet it
/// already contains the full hinted-handoff / ack-durability machinery.
pub fn three_node_two_write() -> Scenario {
    Scenario {
        name: "three_node_two_write".to_string(),
        seed: 20120920,
        nodes: 3,
        replication_factor: 3,
        ops: vec![
            ScenarioOp::Write {
                key: "k".to_string(),
                consistency: ConsistencyLevel::Quorum,
            },
            ScenarioOp::Write {
                key: "k".to_string(),
                consistency: ConsistencyLevel::Quorum,
            },
        ],
        max_crashes: 1,
        max_partitions: 0,
        stale_tolerance: 0.05,
    }
}

/// A write racing a concurrent read at ONE — the paper's Figure 2 staleness
/// window as a checkable scenario (used by deeper random walks).
pub fn three_node_write_read() -> Scenario {
    Scenario {
        name: "three_node_write_read".to_string(),
        seed: 20120920,
        nodes: 3,
        replication_factor: 3,
        ops: vec![
            ScenarioOp::Write {
                key: "k".to_string(),
                consistency: ConsistencyLevel::One,
            },
            ScenarioOp::Read {
                key: "k".to_string(),
                consistency: ConsistencyLevel::One,
            },
            ScenarioOp::Write {
                key: "k".to_string(),
                consistency: ConsistencyLevel::Quorum,
            },
        ],
        max_crashes: 1,
        max_partitions: 0,
        stale_tolerance: 0.05,
    }
}

/// Two writes at ONE racing a network partition: the explorer may cut one
/// node off at any point of the schedule, so a write acked by the isolated
/// side must survive the heal. With hints intact this always converges; the
/// scenario exists to let the checker *construct* partition-induced
/// divergence for protocol mutants (and for the anti-entropy healing proof).
pub fn three_node_partition_write() -> Scenario {
    Scenario {
        name: "three_node_partition_write".to_string(),
        seed: 20120920,
        nodes: 3,
        replication_factor: 3,
        ops: vec![
            ScenarioOp::Write {
                key: "k".to_string(),
                consistency: ConsistencyLevel::One,
            },
            ScenarioOp::Write {
                key: "k".to_string(),
                consistency: ConsistencyLevel::One,
            },
        ],
        max_crashes: 0,
        max_partitions: 1,
        stale_tolerance: 0.05,
    }
}

/// Resolves a scenario by registry name (traces and the CLI reference
/// scenarios this way).
pub fn by_name(name: &str) -> Option<Scenario> {
    match name {
        "three_node_two_write" => Some(three_node_two_write()),
        "three_node_write_read" => Some(three_node_write_read()),
        "three_node_partition_write" => Some(three_node_partition_write()),
        _ => None,
    }
}

//! Replayable schedule traces: counterexample-shaped JSON fixtures.
//!
//! A [`ScheduleTrace`] is a concrete schedule — a scenario name plus the
//! exact sequence of delivery choices and fault injections — serialised to
//! JSON. The explorer records one for every violation it finds, and the
//! regression corpus in `tests/explored_schedules.rs` replays the committed
//! fixtures on every CI run so an invariant once threatened stays pinned.

use harmony_chaos::FaultEvent;
use harmony_sim::topology::NodeId;
use harmony_store::machine::{HarmonyMachine, MachineEvent, OnEvent};
use harmony_store::messages::{Message, StoreEvent};
use serde::{Deserialize, Serialize};

use crate::explorer::{self, CheckerCtx};
use crate::invariants::{self, Violation};
use crate::scenario;

/// One step of a concrete schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceStep {
    /// Deliver the pending event at this index (indices are positions in the
    /// pending list *at that moment*, so replay is exact).
    Deliver {
        /// Index into the pending list.
        index: usize,
    },
    /// Inject a fault.
    Fault {
        /// The fault to inject.
        fault: FaultEvent,
    },
}

/// A named, replayable schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleTrace {
    /// Fixture name.
    pub name: String,
    /// What this schedule exercises and why it is worth pinning.
    pub description: String,
    /// Scenario registry name ([`crate::scenario::by_name`]).
    pub scenario: String,
    /// The schedule itself.
    pub steps: Vec<TraceStep>,
}

/// Replays a trace from the scenario's initial state, quiesces, and checks
/// every invariant. Returns the quiesced machine together with any
/// violations (empty ⇒ the schedule is safe).
///
/// # Errors
/// Fails if the scenario name is unknown or a `Deliver` index is out of
/// bounds for the pending list at that step (a stale fixture).
pub fn replay(trace: &ScheduleTrace) -> Result<(HarmonyMachine, Vec<Violation>), String> {
    let scenario = scenario::by_name(&trace.scenario).ok_or_else(|| {
        format!(
            "trace {:?}: unknown scenario {:?}",
            trace.name, trace.scenario
        )
    })?;
    let (mut machine, mut ctx, _keys) = scenario.build();
    for (step_no, step) in trace.steps.iter().enumerate() {
        match step {
            TraceStep::Deliver { index } => {
                if *index >= ctx.pending.len() {
                    return Err(format!(
                        "trace {:?} step {step_no}: deliver index {index} out of bounds \
                         (pending {})",
                        trace.name,
                        ctx.pending.len()
                    ));
                }
                ctx.deliver(*index, &mut machine);
            }
            TraceStep::Fault { fault } => {
                machine.on_event(MachineEvent::Fault(fault.clone()), &mut ctx);
            }
        }
    }
    explorer::quiesce(&mut machine, &mut ctx);
    let violations = invariants::check_quiesced(&machine, &scenario);
    Ok((machine, violations))
}

/// Renders a counterexample schedule as a human-readable timeline: one line
/// per step — step number (the checker's logical time), the node the event
/// lands on, and the event kind with its protocol detail. The trace is
/// re-replayed to resolve each `Deliver` index into the concrete pending
/// event at that moment, which the raw JSON (`{"Deliver":{"index":3}}`)
/// cannot show.
///
/// # Errors
/// Fails like [`replay`]: unknown scenario or a stale deliver index.
pub fn pretty_print(trace: &ScheduleTrace) -> Result<String, String> {
    use std::fmt::Write as _;

    let scenario = scenario::by_name(&trace.scenario).ok_or_else(|| {
        format!(
            "trace {:?}: unknown scenario {:?}",
            trace.name, trace.scenario
        )
    })?;
    let (mut machine, mut ctx, _keys) = scenario.build();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule {:?} on scenario {:?}:",
        trace.name, trace.scenario
    );
    for (step_no, step) in trace.steps.iter().enumerate() {
        let line = match step {
            TraceStep::Deliver { index } => {
                if *index >= ctx.pending.len() {
                    return Err(format!(
                        "trace {:?} step {step_no}: deliver index {index} out of bounds \
                         (pending {})",
                        trace.name,
                        ctx.pending.len()
                    ));
                }
                let event = ctx.pending[*index].clone();
                let rendered = describe_event(&event);
                ctx.deliver(*index, &mut machine);
                rendered
            }
            TraceStep::Fault { fault } => {
                machine.on_event(MachineEvent::Fault(fault.clone()), &mut ctx);
                format!("{:12} {}", "fault", describe_fault(fault))
            }
        };
        let _ = writeln!(out, "  t={step_no:<3} {line}");
    }
    Ok(out)
}

/// One-line rendering of a machine event: destination node then kind+detail.
fn describe_event(event: &MachineEvent) -> String {
    match event {
        MachineEvent::Store(StoreEvent::Deliver { dest, message }) => {
            format!("node{:<3} deliver  {}", dest.0, describe_message(message))
        }
        MachineEvent::Store(StoreEvent::Process { node, message }) => {
            format!("node{:<3} process  {}", node.0, describe_message(message))
        }
        MachineEvent::Store(StoreEvent::ClientReply { op }) => {
            format!("client  reply    op{}", op.0)
        }
        MachineEvent::Fault(fault) => format!("{:7} fault    {}", "", describe_fault(fault)),
        MachineEvent::Timer(id) => format!("{:7} timer    id {id:?}", ""),
    }
}

fn describe_message(message: &Message) -> String {
    match message {
        Message::ClientRead {
            op,
            key,
            consistency,
        } => format!("ClientRead op{} key{} @{consistency}", op.0, key.0),
        Message::ClientWrite {
            op,
            key,
            consistency,
            ..
        } => format!("ClientWrite op{} key{} @{consistency}", op.0, key.0),
        Message::ReplicaRead {
            op,
            key,
            coordinator,
        } => format!(
            "ReplicaRead op{} key{} (answer to node{})",
            op.0, key.0, coordinator.0
        ),
        Message::ReplicaReadResponse { op, from, row } => format!(
            "ReplicaReadResponse op{} from node{} ({})",
            op.0,
            from.0,
            match row {
                Some(r) => format!("ts {}", r.latest_timestamp().0),
                None => "no copy".to_string(),
            }
        ),
        Message::ReplicaWrite { op, key, .. } => {
            format!("ReplicaWrite op{} key{}", op.0, key.0)
        }
        Message::ReplicaWriteAck { op, from } => {
            format!("ReplicaWriteAck op{} from node{}", op.0, from.0)
        }
        Message::RepairWrite { key, row } => {
            format!("RepairWrite key{} ts {}", key.0, row.latest_timestamp().0)
        }
        Message::AeDigest { from, buckets } => {
            format!("AeDigest from node{} ({} buckets)", from.0, buckets.len())
        }
        Message::AeKeys { from, entries, .. } => format!(
            "AeKeys from node{} ({} stale entries)",
            from.0,
            entries.len()
        ),
        Message::AePull { from, keys } => {
            format!("AePull from node{} ({} keys)", from.0, keys.len())
        }
    }
}

fn describe_fault(fault: &FaultEvent) -> String {
    match fault {
        FaultEvent::CrashNode { node } => format!("crash node{}", node.0),
        FaultEvent::RestartNode { node } => format!("restart node{}", node.0),
        FaultEvent::Partition { groups } => format!(
            "partition {:?}",
            groups
                .iter()
                .map(|g| g.iter().map(|n| n.0).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        ),
        FaultEvent::HealPartition => "heal partition".to_string(),
        other => format!("{other:?}"),
    }
}

/// Drives a scenario step by step while recording the schedule — the tool
/// that authors the seed fixtures. Predicates select events by *shape*
/// (which message, which destination) so the builders stay readable even
/// though the recorded trace is concrete indices.
struct TraceBuilder {
    machine: HarmonyMachine,
    ctx: CheckerCtx,
    steps: Vec<TraceStep>,
}

impl TraceBuilder {
    fn new(scenario_name: &str) -> Self {
        let scenario = scenario::by_name(scenario_name).expect("seed scenario registered");
        let (machine, ctx, _keys) = scenario.build();
        TraceBuilder {
            machine,
            ctx,
            steps: Vec::new(),
        }
    }

    fn find(&self, pred: impl Fn(&MachineEvent) -> bool) -> Option<usize> {
        self.ctx.pending.iter().position(pred)
    }

    fn deliver_at(&mut self, index: usize) {
        self.ctx.deliver(index, &mut self.machine);
        self.steps.push(TraceStep::Deliver { index });
    }

    /// Delivers the first pending event matching `pred`.
    ///
    /// # Panics
    /// Panics if nothing matches — seed builders encode known protocol
    /// shapes, so a miss means the protocol changed and the fixture needs
    /// re-authoring.
    fn deliver_where(&mut self, what: &str, pred: impl Fn(&MachineEvent) -> bool) {
        let index = self
            .find(&pred)
            .unwrap_or_else(|| panic!("no pending event matches {what}: {:?}", self.ctx.pending));
        self.deliver_at(index);
    }

    /// Delivers FIFO until an event matching `pred` is pending (does not
    /// deliver the match itself).
    fn deliver_until(&mut self, what: &str, pred: impl Fn(&MachineEvent) -> bool) {
        let mut budget = 10_000;
        while self.find(&pred).is_none() {
            assert!(
                !self.ctx.pending.is_empty(),
                "pending drained without producing {what}"
            );
            self.deliver_at(0);
            budget -= 1;
            assert!(budget > 0, "no {what} after 10k deliveries");
        }
    }

    fn fault(&mut self, fault: FaultEvent) {
        self.machine
            .on_event(MachineEvent::Fault(fault.clone()), &mut self.ctx);
        self.steps.push(TraceStep::Fault { fault });
    }

    fn finish(self, name: &str, description: &str, scenario: &str) -> ScheduleTrace {
        ScheduleTrace {
            name: name.to_string(),
            description: description.to_string(),
            scenario: scenario.to_string(),
            steps: self.steps,
        }
    }
}

fn is_client_reply(ev: &MachineEvent) -> bool {
    matches!(ev, MachineEvent::Store(StoreEvent::ClientReply { .. }))
}

fn is_replica_write_to(ev: &MachineEvent, node: NodeId) -> bool {
    matches!(
        ev,
        MachineEvent::Store(StoreEvent::Deliver {
            dest,
            message: Message::ReplicaWrite { .. },
        }) if *dest == node
    )
}

/// The destination of the first pending `ClientWrite` delivery — the
/// coordinator the submit routed the operation to.
fn first_write_coordinator(ctx: &CheckerCtx) -> NodeId {
    ctx.pending
        .iter()
        .find_map(|ev| match ev {
            MachineEvent::Store(StoreEvent::Deliver {
                dest,
                message: Message::ClientWrite { .. },
            }) => Some(*dest),
            _ => None,
        })
        .expect("a ClientWrite delivery is pending at scenario start")
}

/// The three hand-written seed schedules, built programmatically against the
/// live protocol (so they track message shapes) and committed as JSON
/// fixtures under `tests/fixtures/schedules/`.
pub fn seed_traces() -> Vec<ScheduleTrace> {
    vec![
        ack_then_coordinator_crash(),
        partition_straddling_write(),
        restart_during_hinted_handoff(),
    ]
}

/// Ack-then-coordinator-crash: run the first quorum write to the client ack,
/// then crash the coordinator that issued it. The acked timestamp must
/// survive the crash — the coordinator's bookkeeping dies with it, the
/// replicas' copies must not.
fn ack_then_coordinator_crash() -> ScheduleTrace {
    let mut b = TraceBuilder::new("three_node_two_write");
    let coordinator = first_write_coordinator(&b.ctx);
    b.deliver_until("a client reply", is_client_reply);
    b.deliver_where("a client reply", is_client_reply);
    b.fault(FaultEvent::CrashNode { node: coordinator });
    b.finish(
        "ack_then_coordinator_crash",
        "first quorum write runs to the client ack, then its coordinator crashes; \
         the acked timestamp must survive on the replicas",
        "three_node_two_write",
    )
}

/// Partition-straddling write: split the coordinator side from a replica
/// minority before anything is delivered, run both writes to whatever
/// completion the partition allows, then heal. No acked write may depend on
/// a message that crossed the cut.
fn partition_straddling_write() -> ScheduleTrace {
    let mut b = TraceBuilder::new("three_node_two_write");
    b.fault(FaultEvent::Partition {
        groups: vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]],
    });
    while !b.ctx.pending.is_empty() {
        b.deliver_at(0);
    }
    b.fault(FaultEvent::HealPartition);
    b.finish(
        "partition_straddling_write",
        "a partition separates replica 2 from the quorum side before any delivery; \
         both writes run under the cut, then it heals; acked writes must not have \
         depended on messages across the cut",
        "three_node_two_write",
    )
}

/// Restart-during-hinted-handoff: crash a replica before the fan-out reaches
/// it so the coordinator stores hints, restart it mid-schedule, and
/// interleave the hint replay with the second write's traffic. The restarted
/// replica must converge to every acked timestamp.
fn restart_during_hinted_handoff() -> ScheduleTrace {
    let mut b = TraceBuilder::new("three_node_two_write");
    let victim = NodeId(2);
    b.fault(FaultEvent::CrashNode { node: victim });
    // Run the first write to its ack with the victim down — its replica
    // write is hinted at the coordinator instead of delivered.
    b.deliver_until("a client reply", is_client_reply);
    b.deliver_where("a client reply", is_client_reply);
    b.fault(FaultEvent::RestartNode { node: victim });
    // Interleave: push the second write forward first, then let the replayed
    // hint (a ReplicaWrite to the victim) land late, then a few LIFO steps
    // to scramble the remaining order. Quiesce drains the rest on replay.
    if b.find(|ev| is_replica_write_to(ev, victim)).is_some() {
        b.deliver_until("a second client reply", is_client_reply);
        b.deliver_where("the replayed hint", |ev| is_replica_write_to(ev, victim));
    }
    for _ in 0..4 {
        if b.ctx.pending.is_empty() {
            break;
        }
        let last = b.ctx.pending.len() - 1;
        b.deliver_at(last);
    }
    b.finish(
        "restart_during_hinted_handoff",
        "replica 2 crashes before the first write's fan-out reaches it, restarts \
         after the ack, and the replayed hint interleaves with the second write; \
         the restarted replica must converge to every acked timestamp",
        "three_node_two_write",
    )
}

//! Integration tests for the bounded schedule explorer.
//!
//! The exhaustive depth here is smaller than the CLI's `--quick` preset
//! (depth 12, run in release mode by CI's sweep-smoke job) because these
//! tests run unoptimised; the reductions and invariants exercised are
//! identical.

use harmony_check::explorer::{self, ExploreConfig};
use harmony_check::scenario;
use harmony_check::trace;

fn config(depth: usize) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        ..ExploreConfig::default()
    }
}

/// The real protocol survives every delivery order and crash placement of
/// the acceptance scenario at a debug-friendly bound: no acked write lost,
/// no accounting drift, staleness within tolerance on every schedule.
#[test]
fn exhaustive_exploration_finds_no_violations() {
    let stats = explorer::explore(&scenario::three_node_two_write(), &config(8));
    assert!(
        stats.violations.is_empty(),
        "explored schedules violated invariants: {:?}",
        stats.violations
    );
    assert_eq!(stats.violation_count, 0);
    assert!(!stats.truncated, "state cap must not truncate the bound");
    // Depth 8 visits tens of thousands of distinct states; a collapse in
    // this floor means exploration silently stopped branching.
    assert!(
        stats.states_explored > 10_000,
        "suspiciously few states: {}",
        stats.states_explored
    );
    assert!(
        stats.schedules_completed > 50_000,
        "suspiciously few schedules: {}",
        stats.schedules_completed
    );
    // The sorted-multiset fingerprint must actually merge commuting
    // interleavings, or the CLI's depth-12 bound stops being reachable.
    assert!(
        stats.dedup_hits > 1_000,
        "dedup is not collapsing interleavings: {}",
        stats.dedup_hits
    );
}

/// An intentionally buggy protocol mutant — hinted handoff silently dropped
/// — is caught by the checker: some schedule crashes a replica while a write
/// is in flight, the hint that should cover the gap never replays, and the
/// restarted replica stays behind the acked timestamp (a convergence
/// violation).
#[test]
fn dropped_hinted_handoff_mutant_is_caught() {
    let stats = explorer::explore_with(&scenario::three_node_two_write(), &config(6), |machine| {
        machine.cluster_mut().set_hinted_handoff_enabled(false);
    });
    assert!(
        stats.violation_count > 0,
        "the dropped-hint mutant must violate some schedule"
    );
    assert!(
        stats
            .violations
            .iter()
            .any(|f| f.violation.rule == "convergence"),
        "expected a convergence violation, got: {:?}",
        stats.violations
    );
    // Every recorded violation carries a non-empty replayable schedule.
    for found in &stats.violations {
        assert!(!found.trace.steps.is_empty());
        assert_eq!(found.trace.scenario, "three_node_two_write");
    }
}

/// The same mutant passes the same bound with zero crashes allowed: hints
/// only matter once a replica dies, so the checker's crash placement — not
/// some unrelated schedule quirk — is what exposes the bug.
#[test]
fn mutant_is_benign_without_crashes() {
    let mut scenario = scenario::three_node_two_write();
    scenario.max_crashes = 0;
    let stats = explorer::explore_with(&scenario, &config(6), |machine| {
        machine.cluster_mut().set_hinted_handoff_enabled(false);
    });
    assert_eq!(
        stats.violation_count, 0,
        "without crashes the dropped-hint mutant should be invisible: {:?}",
        stats.violations
    );
}

/// Random walks are deterministic per seed (byte-identical stats) and cover
/// schedules deeper than the exhaustive bound.
#[test]
fn random_walks_are_deterministic_per_seed() {
    let scenario = scenario::three_node_write_read();
    let a = explorer::random_walk(&scenario, 50, 30, 7, &config(8));
    let b = explorer::random_walk(&scenario, 50, 30, 7, &config(8));
    assert_eq!(a, b, "same seed must reproduce the same walks");
    assert_eq!(a.schedules_completed, 50);
    assert!(
        a.violations.is_empty(),
        "walks violated: {:?}",
        a.violations
    );
    let c = explorer::random_walk(&scenario, 50, 30, 8, &config(8));
    assert_ne!(
        a.states_explored, c.states_explored,
        "different seeds should explore different walks"
    );
}

/// The committed seed fixtures stay in sync with the programmatic builders:
/// regenerate with `REGEN_FIXTURES=1 cargo test -p harmony-check`.
#[test]
fn seed_fixtures_match_builders() {
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/schedules");
    let traces = trace::seed_traces();
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        for t in &traces {
            let path = dir.join(format!("{}.json", t.name));
            let json = serde_json::to_string_pretty(t).expect("trace serialises");
            std::fs::write(&path, json + "\n").expect("write fixture");
        }
        return;
    }
    for t in &traces {
        let path = dir.join(format!("{}.json", t.name));
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "fixture {path:?} unreadable ({e}); run REGEN_FIXTURES=1 cargo test -p harmony-check"
            )
        });
        let committed: harmony_check::ScheduleTrace =
            serde_json::from_str(&json).expect("fixture parses");
        assert_eq!(
            &committed, t,
            "fixture {:?} drifted from its builder; regenerate with REGEN_FIXTURES=1",
            t.name
        );
    }
}

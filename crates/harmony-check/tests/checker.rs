//! Integration tests for the bounded schedule explorer.
//!
//! The exhaustive depth here is smaller than the CLI's `--quick` preset
//! (depth 12, run in release mode by CI's sweep-smoke job) because these
//! tests run unoptimised; the reductions and invariants exercised are
//! identical.

use harmony_chaos::FaultEvent;
use harmony_check::explorer::{self, ExploreConfig};
use harmony_check::trace::TraceStep;
use harmony_check::{invariants, scenario, trace};
use harmony_sim::clock::SimTime;
use harmony_sim::topology::NodeId;
use harmony_store::machine::{MachineEvent, OnEvent};

fn config(depth: usize) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        ..ExploreConfig::default()
    }
}

/// The real protocol survives every delivery order and crash placement of
/// the acceptance scenario at a debug-friendly bound: no acked write lost,
/// no accounting drift, staleness within tolerance on every schedule.
#[test]
fn exhaustive_exploration_finds_no_violations() {
    let stats = explorer::explore(&scenario::three_node_two_write(), &config(8));
    assert!(
        stats.violations.is_empty(),
        "explored schedules violated invariants: {:?}",
        stats.violations
    );
    assert_eq!(stats.violation_count, 0);
    assert!(!stats.truncated, "state cap must not truncate the bound");
    // Depth 8 visits tens of thousands of distinct states; a collapse in
    // this floor means exploration silently stopped branching.
    assert!(
        stats.states_explored > 10_000,
        "suspiciously few states: {}",
        stats.states_explored
    );
    assert!(
        stats.schedules_completed > 50_000,
        "suspiciously few schedules: {}",
        stats.schedules_completed
    );
    // The sorted-multiset fingerprint must actually merge commuting
    // interleavings, or the CLI's depth-12 bound stops being reachable.
    assert!(
        stats.dedup_hits > 1_000,
        "dedup is not collapsing interleavings: {}",
        stats.dedup_hits
    );
}

/// An intentionally buggy protocol mutant — hinted handoff silently dropped
/// — is caught by the checker: some schedule crashes a replica while a write
/// is in flight, the hint that should cover the gap never replays, and the
/// restarted replica stays behind the acked timestamp (a convergence
/// violation).
#[test]
fn dropped_hinted_handoff_mutant_is_caught() {
    let stats = explorer::explore_with(&scenario::three_node_two_write(), &config(6), |machine| {
        machine.cluster_mut().set_hinted_handoff_enabled(false);
    });
    assert!(
        stats.violation_count > 0,
        "the dropped-hint mutant must violate some schedule"
    );
    assert!(
        stats
            .violations
            .iter()
            .any(|f| f.violation.rule == "convergence"),
        "expected a convergence violation, got: {:?}",
        stats.violations
    );
    // Every recorded violation carries a non-empty replayable schedule.
    for found in &stats.violations {
        assert!(!found.trace.steps.is_empty());
        assert_eq!(found.trace.scenario, "three_node_two_write");
    }
}

/// The same mutant passes the same bound with zero crashes allowed: hints
/// only matter once a replica dies, so the checker's crash placement — not
/// some unrelated schedule quirk — is what exposes the bug.
#[test]
fn mutant_is_benign_without_crashes() {
    let mut scenario = scenario::three_node_two_write();
    scenario.max_crashes = 0;
    let stats = explorer::explore_with(&scenario, &config(6), |machine| {
        machine.cluster_mut().set_hinted_handoff_enabled(false);
    });
    assert_eq!(
        stats.violation_count, 0,
        "without crashes the dropped-hint mutant should be invisible: {:?}",
        stats.violations
    );
}

/// Random walks are deterministic per seed (byte-identical stats) and cover
/// schedules deeper than the exhaustive bound.
#[test]
fn random_walks_are_deterministic_per_seed() {
    let scenario = scenario::three_node_write_read();
    let a = explorer::random_walk(&scenario, 50, 30, 7, &config(8));
    let b = explorer::random_walk(&scenario, 50, 30, 7, &config(8));
    assert_eq!(a, b, "same seed must reproduce the same walks");
    assert_eq!(a.schedules_completed, 50);
    assert!(
        a.violations.is_empty(),
        "walks violated: {:?}",
        a.violations
    );
    let c = explorer::random_walk(&scenario, 50, 30, 8, &config(8));
    assert_ne!(
        a.states_explored, c.states_explored,
        "different seeds should explore different walks"
    );
}

/// Partition placements are first-class explorer choices: the real protocol
/// survives every delivery order and partition placement of the partition
/// scenario, and granting the budget genuinely branches the search (more
/// distinct states than the same scenario with the budget zeroed).
#[test]
fn partition_placements_survive_exhaustive_exploration() {
    let with = explorer::explore(&scenario::three_node_partition_write(), &config(6));
    assert_eq!(
        with.violation_count, 0,
        "partition schedules violated invariants: {:?}",
        with.violations
    );
    assert!(!with.truncated);
    let mut zeroed = scenario::three_node_partition_write();
    zeroed.max_partitions = 0;
    let base = explorer::explore(&zeroed, &config(6));
    assert!(
        with.states_explored > base.states_explored,
        "partition budget must add branches: {} with vs {} without",
        with.states_explored,
        base.states_explored
    );
}

/// With hinted handoff disabled, the checker *constructs* partition-induced
/// divergence: some schedule cuts a replica off mid-write, the covering hint
/// is never stored, and the healed replica stays behind the acked timestamp.
/// The recorded trace must contain the partition fault (it is the exposing
/// choice), and zeroing the partition budget makes the same mutant invisible
/// — the scenario allows no crashes, so partitions are the only fault.
#[test]
fn partition_placement_exposes_dropped_hint_divergence() {
    let stats = explorer::explore_with(
        &scenario::three_node_partition_write(),
        &config(6),
        |machine| {
            machine.cluster_mut().set_hinted_handoff_enabled(false);
        },
    );
    assert!(
        stats.violation_count > 0,
        "the dropped-hint mutant must diverge under some partition schedule"
    );
    assert!(
        stats
            .violations
            .iter()
            .any(|f| f.violation.rule == "convergence"),
        "expected a convergence violation, got: {:?}",
        stats.violations
    );
    assert!(
        stats
            .violations
            .iter()
            .any(|f| f.trace.steps.iter().any(|s| matches!(
                s,
                TraceStep::Fault {
                    fault: FaultEvent::Partition { .. }
                }
            ))),
        "a recorded trace must carry the partition placement that exposed it"
    );
    let mut zeroed = scenario::three_node_partition_write();
    zeroed.max_partitions = 0;
    let base = explorer::explore_with(&zeroed, &config(6), |machine| {
        machine.cluster_mut().set_hinted_handoff_enabled(false);
    });
    assert_eq!(
        base.violation_count, 0,
        "without partition placements the mutant should be invisible: {:?}",
        base.violations
    );
}

/// Anti-entropy heals a partition-induced divergence the checker constructs:
/// cut a replica off, run the scenario's writes with hinted handoff disabled
/// so the divergence survives the heal, then drive the anti-entropy timer
/// through the checker context. One digest round per node converges every
/// serving replica — with **zero** read traffic — and the quiesced
/// invariants (including convergence) pass afterwards.
#[test]
fn anti_entropy_heals_checker_constructed_partition_divergence() {
    let scenario = scenario::three_node_partition_write();
    let (mut machine, mut ctx, _keys) = scenario.build();
    machine.cluster_mut().set_hinted_handoff_enabled(false);

    // The checker's partition choice: isolate one replica, then run the
    // whole schedule (FIFO is one of the orders the explorer enumerates).
    machine.on_event(
        MachineEvent::Fault(FaultEvent::Partition {
            groups: vec![vec![NodeId(2)]],
        }),
        &mut ctx,
    );
    while !ctx.pending.is_empty() {
        ctx.deliver(0, &mut machine);
    }
    machine.drain_completions();

    // Heal. With hints disabled nothing replays: the divergence persists.
    machine.on_event(MachineEvent::Fault(FaultEvent::HealPartition), &mut ctx);
    while !ctx.pending.is_empty() {
        ctx.deliver(0, &mut machine);
    }
    assert!(
        !machine.cluster_mut().all_replicas_converged(),
        "the partition must have produced divergence for anti-entropy to heal"
    );

    let before = machine.cluster().totals();

    // Drive the anti-entropy timer: each wake-up runs one repair round and
    // re-arms; deliver the round's message traffic before the next wake-up.
    machine.arm_anti_entropy(SimTime::from_secs_f64(10.0), &mut ctx);
    for _ in 0..=machine.cluster().node_count() {
        let timer = ctx
            .pending
            .iter()
            .position(|e| matches!(e, MachineEvent::Timer(_)))
            .expect("anti-entropy timer stays armed");
        ctx.deliver(timer, &mut machine);
        while let Some(i) = ctx
            .pending
            .iter()
            .position(|e| !matches!(e, MachineEvent::Timer(_)))
        {
            ctx.deliver(i, &mut machine);
        }
    }
    machine.cancel_all_timers();
    while !ctx.pending.is_empty() {
        ctx.deliver(0, &mut machine);
    }
    machine.drain_completions();

    assert!(
        machine.cluster_mut().all_replicas_converged(),
        "anti-entropy must converge every serving replica"
    );
    let after = machine.cluster().totals();
    assert!(
        after.ae_rows_streamed >= 1,
        "repair must have streamed rows"
    );
    // Zero read traffic: repair went through digests and the write stage,
    // never through the read path.
    assert_eq!(after.reads_submitted, before.reads_submitted);
    assert_eq!(after.repairs_issued, before.repairs_issued);
    assert_eq!(
        invariants::check_quiesced(&machine, &scenario),
        vec![],
        "quiesced invariants must pass after the anti-entropy heal"
    );
}

/// The pretty-printer resolves a schedule's opaque deliver indices into a
/// readable timeline: one line per step with logical time, node, and event
/// kind — the form the CLI prints under a violation.
#[test]
fn pretty_print_renders_one_line_per_step() {
    for t in trace::seed_traces() {
        let rendered = trace::pretty_print(&t).expect("seed traces replay");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(
            lines.len(),
            t.steps.len() + 1,
            "header plus one line per step:\n{rendered}"
        );
        assert!(lines[0].contains(&t.name));
        for (i, line) in lines[1..].iter().enumerate() {
            assert!(
                line.trim_start().starts_with(&format!("t={i}")),
                "step lines carry their logical time:\n{rendered}"
            );
        }
    }
    // The crash seed names its fault and its protocol events.
    let crash = &trace::seed_traces()[0];
    let rendered = trace::pretty_print(crash).expect("replays");
    assert!(rendered.contains("crash node"), "{rendered}");
    assert!(rendered.contains("ClientWrite"), "{rendered}");
    assert!(rendered.contains("reply"), "{rendered}");
    // Unknown scenarios fail like replay(), not panic.
    let mut broken = crash.clone();
    broken.scenario = "no_such_scenario".into();
    assert!(trace::pretty_print(&broken).is_err());
}

/// The committed seed fixtures stay in sync with the programmatic builders:
/// regenerate with `REGEN_FIXTURES=1 cargo test -p harmony-check`.
#[test]
fn seed_fixtures_match_builders() {
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/schedules");
    let traces = trace::seed_traces();
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        for t in &traces {
            let path = dir.join(format!("{}.json", t.name));
            let json = serde_json::to_string_pretty(t).expect("trace serialises");
            std::fs::write(&path, json + "\n").expect("write fixture");
        }
        return;
    }
    for t in &traces {
        let path = dir.join(format!("{}.json", t.name));
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "fixture {path:?} unreadable ({e}); run REGEN_FIXTURES=1 cargo test -p harmony-check"
            )
        });
        let committed: harmony_check::ScheduleTrace =
            serde_json::from_str(&json).expect("fixture parses");
        assert_eq!(
            &committed, t,
            "fixture {:?} drifted from its builder; regenerate with REGEN_FIXTURES=1",
            t.name
        );
    }
}

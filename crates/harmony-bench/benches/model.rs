//! Criterion microbenchmarks for the estimation model: the closed-form
//! probability (Eq. 6), the replica-count computation (Eq. 8), and the
//! numerical evaluation of the pre-simplification series (Eq. 2) used to
//! validate the closed form (DESIGN.md ablation "closed vs numeric").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harmony_model::decision::decide;
use harmony_model::staleness::{PropagationModel, StaleReadModel};

fn bench_closed_form(c: &mut Criterion) {
    let model = StaleReadModel::new(5);
    c.bench_function("model/stale_probability_closed_form", |b| {
        b.iter(|| {
            model.stale_probability(black_box(2_000.0), black_box(1_500.0), black_box(0.0015))
        })
    });
}

fn bench_required_replicas(c: &mut Criterion) {
    let model = StaleReadModel::new(5);
    c.bench_function("model/required_replicas", |b| {
        b.iter(|| {
            model.required_replicas(
                black_box(0.2),
                black_box(2_000.0),
                black_box(1_500.0),
                black_box(0.0015),
            )
        })
    });
}

fn bench_decision(c: &mut Criterion) {
    let model = StaleReadModel::new(5);
    c.bench_function("model/decision_scheme", |b| {
        b.iter(|| {
            decide(
                &model,
                black_box(0.2),
                black_box(2_000.0),
                black_box(1_500.0),
                black_box(0.0015),
            )
        })
    });
}

fn bench_numeric_series(c: &mut Criterion) {
    let model = StaleReadModel::new(5);
    c.bench_function("model/stale_probability_numeric_series", |b| {
        b.iter(|| {
            model.stale_probability_numeric(
                black_box(200.0),
                black_box(100.0),
                black_box(0.0005),
                black_box(30),
            )
        })
    });
}

fn bench_propagation_model(c: &mut Criterion) {
    let p = PropagationModel::default();
    c.bench_function("model/propagation_time", |b| {
        b.iter(|| p.propagation_time_secs(black_box(1.2), black_box(1024.0)))
    });
}

criterion_group!(
    benches,
    bench_closed_form,
    bench_required_replicas,
    bench_decision,
    bench_numeric_series,
    bench_propagation_model
);
criterion_main!(benches);

//! Criterion microbenchmarks for the workload generator: key-popularity
//! distributions and operation-mix sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harmony_ycsb::distributions::KeyChooser;
use harmony_ycsb::workloads::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_key_choosers(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    let n = 1_000_000;
    for (name, chooser) in [
        ("uniform", KeyChooser::uniform(n)),
        ("zipfian", KeyChooser::zipfian(n)),
        ("scrambled_zipfian", KeyChooser::scrambled_zipfian(n)),
        ("latest", KeyChooser::latest(n)),
        ("hotspot", KeyChooser::hotspot(n, 0.2, 0.8)),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(chooser.next_index(&mut rng)))
        });
    }
    group.finish();
}

fn bench_operation_mix(c: &mut Criterion) {
    let workload = WorkloadSpec::workload_a(1_000_000);
    c.bench_function("workload/next_operation", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(workload.next_operation(&mut rng)))
    });
}

fn bench_zipfian_construction(c: &mut Criterion) {
    c.bench_function("distributions/zipfian_construction_100k_items", |b| {
        b.iter(|| black_box(KeyChooser::zipfian(100_000)))
    });
}

criterion_group!(
    benches,
    bench_key_choosers,
    bench_operation_mix,
    bench_zipfian_construction
);
criterion_main!(benches);

//! Criterion microbenchmarks for the token ring and replica placement:
//! key hashing, primary lookup, and replica-set computation under both
//! placement strategies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harmony_sim::topology::Topology;
use harmony_store::hashring::{key_token, HashRing};
use harmony_store::placement::ReplicationStrategy;

fn bench_key_token(c: &mut Criterion) {
    c.bench_function("ring/key_token", |b| {
        b.iter(|| key_token(black_box("user1234567")))
    });
}

fn bench_primary_lookup(c: &mut Criterion) {
    let ring = HashRing::new(20, 32);
    c.bench_function("ring/primary_for_key", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ring.primary_for_key(black_box(&format!("user{i}")))
        })
    });
}

fn bench_preference_list(c: &mut Criterion) {
    let ring = HashRing::new(20, 32);
    c.bench_function("ring/preference_list_rf5", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ring.preference_list(black_box(&format!("user{i}")), 5)
        })
    });
}

fn bench_placement_strategies(c: &mut Criterion) {
    let ring = HashRing::new(20, 32);
    let topology = Topology::single_dc(2, 10);
    let mut group = c.benchmark_group("placement");
    group.bench_function("simple_rf5", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ReplicationStrategy::Simple.replicas_for(
                &ring,
                &topology,
                black_box(&format!("user{i}")),
                5,
            )
        })
    });
    group.bench_function("network_topology_rf5", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ReplicationStrategy::NetworkTopology.replicas_for(
                &ring,
                &topology,
                black_box(&format!("user{i}")),
                5,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_key_token,
    bench_primary_lookup,
    bench_preference_list,
    bench_placement_strategies
);
criterion_main!(benches);

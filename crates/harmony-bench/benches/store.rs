//! Criterion microbenchmarks for the per-node storage engine: mutation
//! apply, point reads across memtable + SSTables, flush and compaction.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use harmony_store::engine::{EngineConfig, StorageEngine};
use harmony_store::keys::KeyId;
use harmony_store::types::{Mutation, Timestamp};

fn loaded_engine(keys: u64, flushed: bool) -> StorageEngine {
    let mut engine = StorageEngine::new(EngineConfig {
        memtable_flush_rows: usize::MAX,
        compaction_threshold: usize::MAX,
    });
    for i in 0..keys {
        engine.apply(
            KeyId(i as u32),
            &Mutation::ycsb_row(10, 100),
            Timestamp(i + 1),
        );
    }
    if flushed {
        engine.flush();
    }
    engine
}

fn bench_apply(c: &mut Criterion) {
    c.bench_function("engine/apply_single_column", |b| {
        let mut engine = StorageEngine::with_defaults();
        let mutation = Mutation::single("field0", vec![b'x'; 100]);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            engine.apply(black_box(KeyId(42)), &mutation, Timestamp(ts));
        })
    });
}

fn bench_get_memtable(c: &mut Criterion) {
    let mut engine = loaded_engine(10_000, false);
    c.bench_function("engine/get_from_memtable_10k_keys", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            black_box(engine.get(KeyId(i as u32)))
        })
    });
}

fn bench_get_sstable(c: &mut Criterion) {
    let mut engine = loaded_engine(10_000, true);
    c.bench_function("engine/get_from_sstable_10k_keys", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            black_box(engine.get(KeyId(i as u32)))
        })
    });
}

fn bench_flush(c: &mut Criterion) {
    c.bench_function("engine/flush_5k_rows", |b| {
        b.iter_batched(
            || loaded_engine(5_000, false),
            |mut engine| engine.flush(),
            BatchSize::LargeInput,
        )
    });
}

fn bench_compaction(c: &mut Criterion) {
    c.bench_function("engine/compact_4_sstables", |b| {
        b.iter_batched(
            || {
                let mut engine = StorageEngine::new(EngineConfig {
                    memtable_flush_rows: usize::MAX,
                    compaction_threshold: usize::MAX,
                });
                for round in 0..4u64 {
                    for i in 0..1_000u64 {
                        engine.apply(
                            KeyId(i as u32),
                            &Mutation::single("field0", vec![b'x'; 100]),
                            Timestamp(round * 10_000 + i),
                        );
                    }
                    engine.flush();
                }
                engine
            },
            |mut engine| engine.compact(),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_apply,
    bench_get_memtable,
    bench_get_sstable,
    bench_flush,
    bench_compaction
);
criterion_main!(benches);

//! Criterion end-to-end benchmarks: a small workload-A run through the full
//! stack (cluster + monitor + controller + clients) for each consistency
//! policy, plus the discrete-event store's raw operation rate.
//!
//! These are deliberately small runs (a few thousand operations) so the
//! benchmark suite completes quickly; the per-figure binaries are the place
//! for paper-scale sweeps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harmony_adaptive::config::ControllerConfig;
use harmony_bench::experiments::{grid5000_experiment_config, PolicySpec};
use harmony_sim::profiles;
use harmony_sim::rng::RngFactory;
use harmony_sim::Simulation;
use harmony_store::cluster::Cluster;
use harmony_store::config::StoreConfig;
use harmony_store::consistency::ConsistencyLevel;
use harmony_store::messages::StoreEvent;
use harmony_store::types::{Mutation, Timestamp};
use harmony_ycsb::runner::{run_experiment, ExperimentSpec, Phase};

fn bench_raw_store_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ops");
    group.sample_size(20);
    group.bench_function("1000_mixed_ops_quorum", |b| {
        b.iter(|| {
            let profile = profiles::grid5000_with_nodes(10);
            let mut cluster = Cluster::new(
                StoreConfig::default(),
                profile.topology.clone(),
                profile.network.clone(),
                RngFactory::new(1),
            );
            let mut sim: Simulation<StoreEvent> = Simulation::new(1);
            for i in 0..100u64 {
                cluster.load_direct(
                    &format!("user{i}"),
                    &Mutation::ycsb_row(4, 64),
                    Timestamp(i + 1),
                );
            }
            for i in 0..500u64 {
                cluster.submit_write(
                    &format!("user{}", i % 100),
                    Mutation::single("field0", vec![b'x'; 64]),
                    ConsistencyLevel::One,
                    &mut sim,
                );
                cluster.submit_read(
                    &format!("user{}", (i * 7) % 100),
                    ConsistencyLevel::Quorum,
                    &mut sim,
                );
            }
            let mut completions = 0u64;
            while let Some((_, ev)) = sim.next() {
                if cluster.handle(ev, &mut sim).is_some() {
                    completions += 1;
                }
            }
            black_box(completions)
        })
    });
    group.finish();
}

fn bench_full_experiment_per_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let mut config = grid5000_experiment_config();
    config.records = 1_000;
    config.min_operations = 3_000;
    config.operations_per_thread = 150;

    for policy in [
        PolicySpec::Eventual,
        PolicySpec::Harmony(0.2),
        PolicySpec::Strong,
    ] {
        group.bench_function(format!("workload_a_20_threads/{}", policy.label()), |b| {
            b.iter(|| {
                let spec = ExperimentSpec {
                    workload: harmony_bench::experiments::scaled_workload_a(config.records),
                    phases: vec![Phase::new(20, config.operations_for(20))],
                    seed: 7,
                    dual_read_measurement: false,
                    hot_key_prefix: 0,
                    max_virtual_secs: 600.0,
                };
                let result = run_experiment(
                    &config.profile,
                    config.store.clone(),
                    ControllerConfig::default(),
                    policy.build(config.store.replication_factor),
                    spec,
                );
                black_box(result.stats.operations)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_raw_store_ops,
    bench_full_experiment_per_policy
);
criterion_main!(benches);

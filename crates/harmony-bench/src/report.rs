//! Plain-text table and JSON output helpers shared by the figure binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count should match the header count.
    pub fn add_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut parts = Vec::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                parts.push(format!("{cell:>w$}", w = w));
            }
            let _ = writeln!(out, "{}", parts.join("  "));
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Writes any serialisable value as pretty JSON to `path`.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Parses `--json <path>` style arguments: returns the path following the
/// flag, if present.
pub fn json_arg(args: &[String]) -> Option<std::path::PathBuf> {
    args.windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| std::path::PathBuf::from(&w[1]))
}

/// Parses `--profile <name>` style arguments, defaulting to `default`.
pub fn profile_arg(args: &[String], default: &str) -> String {
    args.windows(2)
        .find(|w| w[0] == "--profile")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

/// Returns true if the flag is present (e.g. `--quick`, `--dual-read`).
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["threads", "ops/s"]);
        t.add_row(vec!["1".to_string(), "1000".to_string()]);
        t.add_row(vec!["130".to_string(), "25000".to_string()]);
        let rendered = t.render();
        assert!(rendered.contains("threads"));
        assert!(rendered.contains("25000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All lines after the separator have the same width as the header line.
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        assert!(t.render().contains('a'));
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("harmony-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn argument_helpers() {
        let args: Vec<String> = ["--profile", "ec2", "--json", "/tmp/x.json", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(profile_arg(&args, "grid5000"), "ec2");
        assert_eq!(json_arg(&args).unwrap().to_str().unwrap(), "/tmp/x.json");
        assert!(has_flag(&args, "--quick"));
        assert!(!has_flag(&args, "--dual-read"));
        assert_eq!(profile_arg(&[], "grid5000"), "grid5000");
        assert!(json_arg(&[]).is_none());
    }
}

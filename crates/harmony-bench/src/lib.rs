//! # harmony-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Harmony paper's evaluation section (§V), plus Criterion microbenchmarks
//! for the building blocks and ablation studies of the design choices called
//! out in `DESIGN.md`.
//!
//! Each figure has its own binary (`fig4a`, `fig4b`, `fig5_latency`,
//! `fig5_throughput`, `fig6_staleness`, `headline`, `ablations`); every
//! binary prints the series the paper plots as a plain-text table and,
//! with `--json <path>`, also writes a machine-readable copy used to update
//! `EXPERIMENTS.md`.
//!
//! Absolute numbers will not match the paper (its substrate was a physical
//! Cassandra deployment on Grid'5000 and EC2; ours is a calibrated
//! simulator) — the comparison targets are the *shapes*: which policy wins,
//! by roughly what factor, and where the curves cross.

pub mod baseline;
pub mod experiments;
pub mod report;

pub use experiments::{
    ec2_experiment_config, fig5_thread_counts, grid5000_experiment_config, run_policy_sweep,
    scaled_workload_a, scaled_workload_b, ExperimentConfig, PolicySpec, SweepRow,
};
pub use report::{write_json, Table};
